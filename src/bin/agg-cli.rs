//! `agg-cli` — run graph algorithms on the simulated GPU from the shell.
//!
//! ```text
//! agg-cli <bfs|sssp|cc|pagerank> [options]
//!
//! graph source (one of):
//!   --input FILE          DIMACS .gr (weighted) or SNAP edge list
//!   --dataset NAME        synthetic analog: co-road|citeseer|p2p|amazon|google|sns
//!                         [--scale tiny|small|paper] [--seed N]
//!
//! run options:
//!   --src N               traversal source (default 0; ignored by cc/pagerank)
//!   --strategy S          adaptive (default) | a static variant (e.g. U_B_QU)
//!                         | vwarp:<width>:<bitmap|queue> | hybrid:<threshold>
//!   --damping F --epsilon F   pagerank parameters
//!   --trace               print the per-iteration trace
//!   --output FILE         write per-node results as CSV
//! ```
//!
//! Example:
//!
//! ```text
//! agg-cli sssp --dataset amazon --scale tiny --strategy U_T_BM --trace
//! agg-cli bfs --input web.txt --src 42 --output levels.csv
//! ```

use agg::prelude::*;
use std::io::Write as _;
use std::process::exit;

struct Args {
    algo: String,
    input: Option<String>,
    dataset: Option<Dataset>,
    scale: Scale,
    seed: u64,
    src: u32,
    strategy: String,
    damping: f32,
    epsilon: f32,
    trace: bool,
    output: Option<String>,
}

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun with no arguments for usage (see module docs)");
    exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let algo = it.next().unwrap_or_else(|| {
        eprintln!(
            "usage: agg-cli <bfs|sssp|cc|pagerank> [--input FILE | --dataset NAME] \
             [--scale S] [--seed N] [--src N] [--strategy S] [--trace] [--output FILE]"
        );
        exit(2);
    });
    let mut a = Args {
        algo,
        input: None,
        dataset: None,
        scale: Scale::Tiny,
        seed: 42,
        src: 0,
        strategy: "adaptive".into(),
        damping: 0.85,
        epsilon: 1e-4,
        trace: false,
        output: None,
    };
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| usage_and_exit("missing flag value"))
        };
        match flag.as_str() {
            "--input" => a.input = Some(val()),
            "--dataset" => {
                let v = val();
                a.dataset =
                    Some(Dataset::parse(&v).unwrap_or_else(|| usage_and_exit("unknown dataset")));
            }
            "--scale" => {
                a.scale = Scale::parse(&val()).unwrap_or_else(|| usage_and_exit("unknown scale"));
            }
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage_and_exit("bad seed")),
            "--src" => a.src = val().parse().unwrap_or_else(|_| usage_and_exit("bad src")),
            "--strategy" => a.strategy = val(),
            "--damping" => {
                a.damping = val()
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad damping"));
            }
            "--epsilon" => {
                a.epsilon = val()
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad epsilon"));
            }
            "--trace" => a.trace = true,
            "--output" => a.output = Some(val()),
            other => usage_and_exit(&format!("unknown flag '{other}'")),
        }
    }
    a
}

fn load_graph(a: &Args, weighted: bool) -> CsrGraph {
    if let Some(path) = &a.input {
        agg::graph::io::read_graph_file(path)
            .unwrap_or_else(|e| usage_and_exit(&format!("cannot read {path}: {e}")))
    } else if let Some(d) = a.dataset {
        if weighted {
            d.generate_weighted(a.scale, a.seed, 64)
        } else {
            d.generate(a.scale, a.seed)
        }
    } else {
        usage_and_exit("provide --input FILE or --dataset NAME");
    }
}

fn parse_strategy(s: &str) -> Strategy {
    if s.eq_ignore_ascii_case("adaptive") {
        return Strategy::Adaptive;
    }
    if let Some(v) = Variant::parse(s) {
        return Strategy::Static(v);
    }
    if let Some(rest) = s.strip_prefix("vwarp:") {
        let mut parts = rest.split(':');
        let width: u32 = parts
            .next()
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| usage_and_exit("vwarp:<width>:<bitmap|queue>"));
        let workset = match parts.next() {
            Some("bitmap") => WorkSet::Bitmap,
            Some("queue") | None => WorkSet::Queue,
            _ => usage_and_exit("vwarp workset must be bitmap or queue"),
        };
        return Strategy::VirtualWarp { width, workset };
    }
    if let Some(t) = s.strip_prefix("hybrid:") {
        let threshold = t
            .parse()
            .unwrap_or_else(|_| usage_and_exit("hybrid:<threshold>"));
        return Strategy::Hybrid {
            gpu_threshold: threshold,
        };
    }
    usage_and_exit(&format!("unknown strategy '{s}'"));
}

fn main() {
    let a = parse_args();
    let weighted = a.algo == "sssp";
    let graph = load_graph(&a, weighted);
    let stats = GraphStats::compute(&graph);
    eprintln!(
        "graph: {} nodes, {} edges, outdegree min/avg/max = {}/{:.1}/{}",
        stats.nodes, stats.edges, stats.degree.min, stats.degree.avg, stats.degree.max
    );
    if graph.node_count() == 0 {
        eprintln!("empty graph; nothing to do");
        return;
    }
    if a.src as usize >= graph.node_count() {
        usage_and_exit("--src out of range");
    }

    let mut builder = RunOptions::builder()
        .strategy(parse_strategy(&a.strategy))
        .census(CensusMode::Sampled);
    if a.trace {
        builder = builder.trace();
    }
    let options = builder.build();
    let query = match a.algo.as_str() {
        "bfs" => Query::Bfs { src: a.src },
        "sssp" => Query::Sssp { src: a.src },
        "cc" => Query::Cc,
        "pagerank" => Query::PageRank {
            config: PageRankConfig {
                damping: a.damping,
                epsilon: a.epsilon,
            },
        },
        other => usage_and_exit(&format!("unknown algorithm '{other}'")),
    };
    let mut gg = GpuGraph::new(&graph).unwrap_or_else(|e| usage_and_exit(&e.to_string()));
    let report = gg
        .run(query, &options)
        .unwrap_or_else(|e| usage_and_exit(&e.to_string()));

    println!(
        "{}: {} iterations, {} launches, {} switches, {:.3} ms modeled GPU time{}",
        a.algo,
        report.iterations,
        report.launches,
        report.switches,
        report.total_ms(),
        if report.host_ns > 0.0 {
            format!(" ({:.3} ms on the host CPU)", report.host_ns / 1e6)
        } else {
            String::new()
        }
    );
    match a.algo.as_str() {
        "bfs" | "sssp" => {
            let reached = report.values.iter().filter(|&&v| v != INF).count();
            let max = report
                .values
                .iter()
                .filter(|&&v| v != INF)
                .max()
                .copied()
                .unwrap_or(0);
            println!(
                "reached {reached}/{} nodes; max value {max}",
                report.values.len()
            );
        }
        "cc" => {
            let mut labels = report.values.clone();
            labels.sort_unstable();
            labels.dedup();
            println!("{} components", labels.len());
        }
        "pagerank" => {
            let ranks = report.values_as_f32();
            let total: f32 = ranks.iter().sum();
            let best = ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            println!(
                "total mass {total:.1}; top node {} with rank {:.3}",
                best.0, best.1
            );
        }
        _ => unreachable!(),
    }
    if a.trace {
        for t in &report.trace {
            println!(
                "iter {:>4} [{}{}{}] ws={:<9} {:.1} us",
                t.iteration,
                t.variant.name(),
                t.vwarp_width.map(|w| format!(" vw{w}")).unwrap_or_default(),
                if t.on_host { " host" } else { "" },
                t.ws_size
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "?".into()),
                t.iter_ns / 1e3,
            );
        }
    }
    if let Some(path) = &a.output {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage_and_exit(&format!("cannot create {path}: {e}")));
        writeln!(f, "node,value").unwrap();
        if a.algo == "pagerank" {
            for (i, r) in report.values_as_f32().iter().enumerate() {
                writeln!(f, "{i},{r}").unwrap();
            }
        } else {
            for (i, v) in report.values.iter().enumerate() {
                writeln!(f, "{i},{v}").unwrap();
            }
        }
        eprintln!("wrote {path}");
    }
}
