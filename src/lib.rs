#![warn(missing_docs)]

//! Facade crate for the adaptive GPU graph runtime workspace — a Rust
//! reproduction of *"Deploying Graph Algorithms on GPUs: an Adaptive
//! Solution"* (Li & Becchi, IPDPSW 2013).
//!
//! Re-exports the public API of every member crate so downstream users can
//! depend on a single crate:
//!
//! ```
//! use agg::prelude::*;
//!
//! let graph = Dataset::Amazon.generate_weighted(Scale::Tiny, 42, 64);
//! let mut gg = GpuGraph::new(&graph).unwrap();
//! let report = gg.bfs(0).unwrap();
//! assert_eq!(report.values.len(), graph.node_count());
//! ```

pub use agg_core as core;
pub use agg_cpu as cpu;
pub use agg_gpu_sim as gpu_sim;
pub use agg_graph as graph;
pub use agg_kernels as kernels;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use agg_core::{
        AdaptiveConfig, Algo, CensusMode, GpuGraph, PageRankConfig, RunOptions, RunReport, Strategy,
    };
    pub use agg_cpu::{bfs as cpu_bfs, dijkstra as cpu_dijkstra, CpuCostModel};
    pub use agg_gpu_sim::{Device, DeviceConfig};
    pub use agg_graph::{CsrGraph, Dataset, GraphBuilder, GraphStats, Scale, INF};
    pub use agg_kernels::{AlgoOrder, Mapping, Variant, WorkSet};
}
