#![warn(missing_docs)]

//! Facade crate for the adaptive GPU graph runtime workspace — a Rust
//! reproduction of *"Deploying Graph Algorithms on GPUs: an Adaptive
//! Solution"* (Li & Becchi, IPDPSW 2013).
//!
//! Re-exports the public API of every member crate so downstream users can
//! depend on a single crate:
//!
//! ```
//! use agg::prelude::*;
//!
//! let graph = Dataset::Amazon.generate_weighted(Scale::Tiny, 42, 64);
//! let mut gg = GpuGraph::new(&graph).unwrap();
//! let report = gg.run(Query::Bfs { src: 0 }, &RunOptions::default()).unwrap();
//! assert_eq!(report.values.len(), graph.node_count());
//!
//! // Many queries against one resident graph: use a Session.
//! let mut session = Session::new(&graph).unwrap();
//! let batch = session
//!     .run_batch(
//!         &[Query::Bfs { src: 0 }, Query::Sssp { src: 3 }, Query::Cc],
//!         &RunOptions::default(),
//!     )
//!     .unwrap();
//! assert_eq!(batch.queries.len(), 3);
//! ```

pub use agg_core as core;
pub use agg_cpu as cpu;
pub use agg_gpu_sim as gpu_sim;
pub use agg_graph as graph;
pub use agg_kernels as kernels;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use agg_core::{
        AdaptiveConfig, Algo, BatchReport, CensusMode, GpuGraph, PageRankConfig, Query,
        QueryReport, RunOptions, RunOptionsBuilder, RunReport, Session, ShardReport, ShardSlice,
        ShardedGraph, Strategy,
    };
    pub use agg_cpu::{bfs as cpu_bfs, dijkstra as cpu_dijkstra, CpuCostModel};
    pub use agg_gpu_sim::{Device, DeviceConfig, ExecEngine, ExecMode, Interconnect, SimFidelity};
    pub use agg_graph::{
        partition, CsrGraph, Dataset, GraphBuilder, GraphStats, Partition, PartitionStrategy,
        Scale, ShardPlan, INF,
    };
    pub use agg_kernels::{AlgoOrder, Mapping, Variant, WorkSet};
}
