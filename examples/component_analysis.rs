//! Connected-component analysis (extension algorithm): find the islands
//! of a fragmented road network with GPU min-label propagation and
//! compare strategies.
//!
//! ```text
//! cargo run --release --example component_analysis
//! ```

use agg::core::AdaptiveConfig;
use agg::graph::generators::{road_grid, RoadGridConfig};
use agg::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A heavily fragmented road grid: 35% of streets removed, no
    // highways, so the network splinters into many islands.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2013);
    let graph = road_grid(
        &mut rng,
        &RoadGridConfig {
            width: 48,
            height: 48,
            keep_prob: 0.55,
            hubs: 0,
            highways_per_hub: 0,
        },
    )?;
    println!(
        "fragmented road network: {} nodes, {} directed edges",
        graph.node_count(),
        graph.edge_count()
    );

    let mut gg = GpuGraph::new(&graph)?;
    let run = gg.run(Query::Cc, &RunOptions::default())?;

    // Component census from the label array.
    let mut sizes = std::collections::HashMap::new();
    for &label in &run.values {
        *sizes.entry(label).or_insert(0usize) += 1;
    }
    let mut by_size: Vec<usize> = sizes.values().copied().collect();
    by_size.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "{} components; largest {} nodes ({:.1}% of the grid); {} singletons",
        by_size.len(),
        by_size[0],
        100.0 * by_size[0] as f64 / graph.node_count() as f64,
        by_size.iter().filter(|&&s| s == 1).count()
    );
    println!(
        "GPU: {} iterations, {:.2} ms modeled, {} launches",
        run.iterations,
        run.total_ms(),
        run.launches
    );

    // Cross-check against the serial baseline, and compare variants.
    let cpu = agg::cpu::connected_components(&graph, &CpuCostModel::default());
    assert_eq!(cpu.result, run.values);
    println!(
        "verified against CPU label propagation ({:.2} ms modeled)",
        cpu.time_ns / 1e6
    );

    println!("\nper-variant modeled times:");
    for v in Variant::UNORDERED {
        let r = gg.run(Query::Cc, &RunOptions::static_variant(v))?;
        println!(
            "  {}: {:.2} ms in {} iterations",
            v.name(),
            r.total_ms(),
            r.iterations
        );
    }

    // CC starts with every node in the working set, so the decision maker
    // goes straight to a bitmap — show the decision trace.
    let tuning = AdaptiveConfig {
        sampling_period: 1,
        ..AdaptiveConfig::default()
    };
    let r = gg.run(
        Query::Cc,
        &RunOptions::builder().tuning(tuning).trace().build(),
    )?;
    println!("\nadaptive decisions (working set shrinks as labels stabilize):");
    for t in &r.trace {
        println!(
            "  iter {:>2}: {} (ws {:?})",
            t.iteration,
            t.variant.name(),
            t.ws_size
        );
    }
    Ok(())
}
