//! Tuning the adaptive runtime: sweep the T3 threshold and the inspector
//! sampling period on one dataset, and render the decision space — a
//! miniature of the paper's Section VII.B parameter study.
//!
//! ```text
//! cargo run --release --example adaptive_tuning
//! ```

use agg::core::{decision, AdaptiveConfig};
use agg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Dataset::Google.generate_weighted(Scale::Tiny, 5, 64);
    let n = graph.node_count() as u32;
    println!(
        "dataset: Google analog, {} nodes, avg outdegree {:.1}\n",
        n,
        GraphStats::compute(&graph).degree.avg
    );

    println!(
        "{}",
        decision::render_decision_space(&AdaptiveConfig::default(), n)
    );

    let mut gg = GpuGraph::new(&graph)?;

    println!("T3 sweep (adaptive SSSP):");
    for pct in [1u32, 3, 6, 9, 13] {
        let tuning = AdaptiveConfig {
            t3_fraction: pct as f64 / 100.0,
            ..AdaptiveConfig::default()
        };
        let opts = RunOptions::builder().tuning(tuning).build();
        let r = gg.run(Query::Sssp { src: 0 }, &opts)?;
        println!(
            "  T3 = {pct:>2}% of n -> {:.3} ms, {} switches, {} iterations",
            r.total_ms(),
            r.switches,
            r.iterations
        );
    }

    println!("\nsampling-period sweep (inspector overhead vs decision quality):");
    for period in [1u32, 2, 4, 8, 16, 32] {
        let tuning = AdaptiveConfig {
            sampling_period: period,
            ..AdaptiveConfig::default()
        };
        let opts = RunOptions::builder()
            .tuning(tuning)
            .census(CensusMode::Sampled)
            .build();
        let r = gg.run(Query::Sssp { src: 0 }, &opts)?;
        println!("  period {period:>2} -> {:.3} ms", r.total_ms());
    }

    println!("\nscan-based queue generation (Merrill-style ablation):");
    for scan in [false, true] {
        let tuning = AdaptiveConfig {
            scan_queue_gen: scan,
            ..AdaptiveConfig::default()
        };
        let opts = RunOptions::builder().tuning(tuning).build();
        let r = gg.run(Query::Sssp { src: 0 }, &opts)?;
        println!("  scan_queue_gen = {scan:<5} -> {:.3} ms", r.total_ms());
    }
    Ok(())
}
