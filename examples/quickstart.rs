//! Quickstart: build a graph, run adaptive BFS and SSSP, inspect the
//! report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use agg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic Amazon-co-purchase-like graph (70% of nodes have
    // outdegree 10), with random edge weights for SSSP.
    let graph = Dataset::Amazon.generate_weighted(Scale::Tiny, 42, 64);
    println!(
        "graph: {} nodes, {} edges, avg outdegree {:.1}",
        graph.node_count(),
        graph.edge_count(),
        GraphStats::compute(&graph).degree.avg
    );

    // Upload to the simulated Tesla C2070 and run with the adaptive
    // runtime (per-iteration kernel selection).
    let mut gg = GpuGraph::new(&graph)?;
    let bfs = gg.run(Query::Bfs { src: 0 }, &RunOptions::default())?;
    let reached = bfs.values.iter().filter(|&&l| l != INF).count();
    println!(
        "BFS:  reached {} nodes in {} iterations, {} kernel launches, {:.2} ms modeled GPU time, {} variant switches",
        reached, bfs.iterations, bfs.launches, bfs.total_ms(), bfs.switches
    );

    let sssp = gg.run(Query::Sssp { src: 0 }, &RunOptions::default())?;
    let max_dist = sssp.values.iter().filter(|&&d| d != INF).max().unwrap();
    println!(
        "SSSP: max finite distance {} in {} iterations, {:.2} ms modeled GPU time",
        max_dist,
        sssp.iterations,
        sssp.total_ms()
    );

    // Compare against the serial CPU baseline the paper uses.
    let model = CpuCostModel::default();
    let cpu = cpu_bfs(&graph, 0, &model);
    assert_eq!(cpu.result, bfs.values, "GPU and CPU must agree");
    println!(
        "CPU baseline BFS: {:.2} ms modeled -> GPU speedup {:.2}x",
        cpu.time_ns / 1e6,
        cpu.time_ns / bfs.total_ns
    );

    // Serving many queries against one resident graph? Use a Session:
    // the upload is paid once and device state is pooled across queries.
    let mut session = Session::new(&graph)?;
    let batch = session.run_batch(
        &[
            Query::Bfs { src: 0 },
            Query::Sssp { src: 0 },
            Query::Cc,
            Query::pagerank(),
        ],
        &RunOptions::default(),
    )?;
    println!(
        "Session: {} queries in {:.2} ms modeled ({:.0} queries/s, {} pool hits)",
        batch.queries.len(),
        batch.total_ms(),
        batch.queries_per_sec(),
        batch.pool.hits
    );
    Ok(())
}
