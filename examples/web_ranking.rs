//! Web ranking with PageRank-delta (extension algorithm): rank the pages
//! of a synthetic web-link graph on the simulated GPU and compare against
//! the power-iteration oracle.
//!
//! ```text
//! cargo run --release --example web_ranking
//! ```

use agg::core::PageRankConfig;
use agg::cpu::{pagerank_delta, pagerank_power};
use agg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Dataset::Google.generate(Scale::Tiny, 404);
    println!(
        "web graph: {} pages, {} links, avg outdegree {:.1}",
        graph.node_count(),
        graph.edge_count(),
        GraphStats::compute(&graph).degree.avg
    );

    let mut gg = GpuGraph::new(&graph)?;
    let cfg = PageRankConfig {
        damping: 0.85,
        epsilon: 1e-5,
    };
    let run = gg.run(Query::PageRank { config: cfg }, &RunOptions::default())?;
    let ranks = run.values_as_f32();
    println!(
        "GPU PageRank: {} iterations, {:.2} ms modeled, {} launches, {} variant switches",
        run.iterations,
        run.total_ms(),
        run.launches,
        run.switches
    );

    // Top 5 pages.
    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_unstable_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    println!("top pages by rank:");
    for &p in order.iter().take(5) {
        println!(
            "  page {p:>5}: rank {:.3} (in-degree {})",
            ranks[p],
            graph.reverse().out_degree(p as u32)
        );
    }

    // Verify against both serial implementations.
    let cpu = pagerank_delta(&graph, cfg.damping, cfg.epsilon, &CpuCostModel::default());
    let power = pagerank_power(&graph, cfg.damping, 1e-7, 500);
    let max_diff = |a: &[f32], b: &[f32]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    };
    println!(
        "max deviation: vs serial delta {:.2e}, vs power iteration {:.2e}",
        max_diff(&ranks, &cpu.ranks),
        max_diff(&ranks, &power)
    );
    println!(
        "serial delta CPU: {:.2} ms modeled -> GPU speedup {:.2}x",
        cpu.time_ns / 1e6,
        cpu.time_ns / run.total_ns
    );
    assert!(max_diff(&ranks, &power) < 5e-3);
    Ok(())
}
