//! Social-network reachability: "degrees of separation" on an R-MAT
//! social graph (the paper's SNS/LiveJournal analog) — a GPU-friendly
//! workload whose working set explodes after a few hops.
//!
//! ```text
//! cargo run --release --example social_reachability
//! ```

use agg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Dataset::Sns.generate(Scale::Tiny, 99);
    let stats = GraphStats::compute(&graph);
    println!(
        "social graph: {} users, {} follows, avg outdegree {:.1}, max {} (heavy tail)",
        stats.nodes, stats.edges, stats.degree.avg, stats.degree.max
    );

    // Pick the highest-outdegree user as the influencer.
    let influencer = (0..graph.node_count() as u32)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap_or(0);
    println!(
        "influencer: user {influencer} with {} direct follows",
        graph.out_degree(influencer)
    );

    let mut gg = GpuGraph::new(&graph)?;
    let opts = RunOptions::builder()
        .census(CensusMode::Every)
        .trace()
        .build();
    let run = gg.run(Query::Bfs { src: influencer }, &opts)?;

    // Degrees-of-separation histogram.
    let mut by_level = std::collections::BTreeMap::new();
    for &l in run.values.iter().filter(|&&l| l != INF) {
        *by_level.entry(l).or_insert(0usize) += 1;
    }
    println!("degrees of separation from the influencer:");
    let total: usize = by_level.values().sum();
    for (level, count) in &by_level {
        println!(
            "  {level} hops: {:<50} {count} users",
            "#".repeat(50 * count / total)
        );
    }
    let unreached = run.values.iter().filter(|&&l| l == INF).count();
    println!("unreachable users: {unreached}");

    // The frontier explosion the adaptive runtime exploits:
    println!("working-set size per iteration (the paper's Figure 2 dynamic):");
    for t in &run.trace {
        if let Some(ws) = t.ws_size {
            println!("  iter {:>2} [{}]: {ws}", t.iteration, t.variant.name());
        }
    }
    println!(
        "total modeled GPU time: {:.2} ms across {} launches",
        run.total_ms(),
        run.launches
    );

    // Social frontiers explode after one hop — exactly the shape the
    // direction-optimizing (bottom-up) extension targets.
    gg.enable_bottom_up(&graph);
    let dir_opt = gg.run(
        Query::Bfs { src: influencer },
        &RunOptions::builder()
            .strategy(Strategy::DirectionOptimized {
                bottom_up_fraction: 0.05,
            })
            .build(),
    )?;
    assert_eq!(dir_opt.values, run.values);
    println!(
        "direction-optimized BFS: {:.2} ms ({:.2}x, atomics {} -> {})",
        dir_opt.total_ms(),
        run.total_ns / dir_opt.total_ns,
        run.gpu_stats.totals.atomics,
        dir_opt.gpu_stats.totals.atomics
    );
    Ok(())
}
