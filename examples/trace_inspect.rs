//! Telemetry walkthrough: record a per-iteration trace of the adaptive
//! runtime, inspect where the decision maker sat in the Figure 11 space
//! each iteration, measure the inspector's sampling error against an
//! exact census, and break a run's time down by kernel.
//!
//! ```text
//! cargo run --release --example trace_inspect
//! ```

use agg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Dataset::Amazon.generate_weighted(Scale::Small, 2013, 64);
    println!(
        "Amazon analog: {} nodes, {} edges, avg outdegree {:.1}\n",
        graph.node_count(),
        graph.edge_count(),
        graph.edge_count() as f64 / graph.node_count() as f64
    );

    let mut gg = GpuGraph::new(&graph)?;
    // An exact census every iteration: ws_size is then always present, so
    // the est_ws column shows exactly how stale the decision maker's
    // input would have been under sampling.
    let opts = RunOptions::builder()
        .census(CensusMode::Every)
        .trace()
        .build();
    let run = gg.run(Query::Sssp { src: 0 }, &opts)?;

    // --- The per-iteration trace -------------------------------------
    println!("iter  variant  region            ws_exact  ws_est  iter_us  flags");
    for t in &run.trace {
        println!(
            "{:>4}  {:<7}  {:<16}  {:>8}  {:>6}  {:>7.1}  {}{}",
            t.iteration,
            t.variant.name(),
            t.region.name(),
            t.ws_size.map_or("-".to_string(), |w| w.to_string()),
            t.est_ws,
            t.iter_ns / 1e3,
            if t.switched { "switched " } else { "" },
            if t.inspector_ns > 0.0 { "censused" } else { "" },
        );
    }

    // --- Always-on metrics (no trace needed for these) ----------------
    let m = &run.metrics;
    println!("\nrun summary:");
    println!("  iterations        {}", m.iterations);
    println!("  variant switches  {}", m.switches);
    for (variant, count) in m.by_variant() {
        println!("    {:<8} x{count}", variant.name());
    }
    println!(
        "  censuses          {} ws-size + {} degree",
        m.census_launches, m.degree_census_launches
    );
    println!(
        "  inspector share   {:.2}% of iteration time",
        100.0 * m.inspector_ns_total / m.iter_ns_total.max(1.0)
    );
    println!(
        "  time accounting   setup {:.1} us + iterations {:.1} us + teardown {:.1} us = {:.1} us",
        run.setup_ns / 1e3,
        m.iter_ns_total / 1e3,
        run.teardown_ns / 1e3,
        run.total_ns / 1e3
    );

    // --- Per-kernel profile (the simulator's "nvprof") -----------------
    println!("\nper-kernel profile:");
    println!("  kernel                 launches  time_us  compute%  mem%  coalesce  occupancy");
    for p in run.profile.kernels() {
        println!(
            "  {:<22} {:>8}  {:>7.1}  {:>7.1}%  {:>3.0}%  {:>8.2}  {:>9.2}",
            p.kernel,
            p.launches,
            p.time_ns / 1e3,
            100.0 * p.compute_ns / p.time_ns.max(1.0),
            100.0 * p.mem_ns / p.time_ns.max(1.0),
            p.coalescing_efficiency(),
            p.occupancy_fraction,
        );
    }

    // --- Everything above as machine-readable JSON ---------------------
    let json = run.to_json();
    println!(
        "\nserialized telemetry: {} bytes of JSON (see repro --trace-json)",
        json.render().len()
    );
    Ok(())
}
