//! Road-network navigation: single-source shortest paths on a road-grid
//! graph — the paper's GPU-hostile workload (huge diameter, tiny degrees).
//!
//! Shows why the adaptive runtime matters: the working set stays small for
//! hundreds of iterations, so the decision maker keeps selecting
//! block-mapping + queue instead of wasting full-graph bitmap launches.
//!
//! ```text
//! cargo run --release --example road_navigation
//! ```

use agg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Dataset::CoRoad.generate_weighted(Scale::Tiny, 7, 30);
    let stats = GraphStats::compute(&graph);
    println!(
        "road network: {} intersections, {} road segments, avg degree {:.1}, max degree {}",
        stats.nodes, stats.edges, stats.degree.avg, stats.degree.max
    );

    let mut gg = GpuGraph::new(&graph)?;
    let depot: u32 = 0;

    // Adaptive SSSP with a full trace so we can watch the decisions.
    let opts = RunOptions::builder().trace().build();
    let run = gg.run(Query::Sssp { src: depot }, &opts)?;

    let reachable = run.values.iter().filter(|&&d| d != INF).count();
    println!(
        "SSSP from depot {depot}: {} reachable intersections, {} iterations, {:.2} ms modeled",
        reachable,
        run.iterations,
        run.total_ms()
    );

    // Which variants did the decision maker pick, and how often?
    let mut counts = std::collections::BTreeMap::new();
    for t in &run.trace {
        *counts.entry(t.variant.name()).or_insert(0u32) += 1;
    }
    println!(
        "variant usage across iterations: {counts:?} ({} switches)",
        run.switches
    );

    // Travel-time distribution (bucketed).
    let finite: Vec<u32> = run.values.iter().copied().filter(|&d| d != INF).collect();
    let max = *finite.iter().max().unwrap_or(&1);
    let buckets = 8usize;
    let mut hist = vec![0usize; buckets];
    for d in &finite {
        hist[((*d as usize * (buckets - 1)) / max as usize).min(buckets - 1)] += 1;
    }
    println!("travel-cost distribution (0..{max}):");
    for (i, count) in hist.iter().enumerate() {
        println!(
            "  bucket {i}: {:<40} {count}",
            "#".repeat(40 * count / finite.len().max(1))
        );
    }

    // Cross-check against serial Dijkstra.
    let cpu = cpu_dijkstra(&graph, depot, &CpuCostModel::default());
    assert_eq!(cpu.result, run.values);
    println!(
        "verified against serial Dijkstra ({:.2} ms modeled CPU)",
        cpu.time_ns / 1e6
    );
    Ok(())
}
