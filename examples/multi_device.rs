//! Multi-device sharded execution: split one graph across several
//! simulated GPUs, exchange frontiers over a modeled interconnect, and
//! check the answers stay bit-identical to a single device.
//!
//! ```text
//! cargo run --release --example multi_device
//! ```

use agg::graph::generators::{powerlaw, PowerLawConfig};
use agg::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hub-heavy power-law graph — the shape where per-shard adaptive
    // decisions matter, because a degree-balanced split still leaves the
    // shards with very different local densities.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2013);
    let graph = powerlaw(
        &mut rng,
        &PowerLawConfig {
            nodes: 4000,
            alpha: 2.2,
            min_degree: 1,
            max_degree: 256,
            target_avg_degree: 6.0,
            dest_zipf: 1.1,
        },
    )?
    .with_random_weights(&mut rng, 64);
    println!(
        "power-law graph: {} nodes, {} directed edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Single-device reference answers.
    let mut gg = GpuGraph::new(&graph)?;
    let opts = RunOptions::default();
    let single_bfs = gg.run(Query::Bfs { src: 0 }, &opts)?;
    let single_sssp = gg.run(Query::Sssp { src: 0 }, &opts)?;

    // Scale the same queries over 1/2/4/8 devices linked by PCIe. Each
    // shard runs its own adaptive runtime over its owned node range;
    // boundary updates travel between devices once per superstep.
    println!("\nBFS scaling over simulated devices (PCIe interconnect):");
    println!("  shards  total_ms  exchange_ms  supersteps  cut%");
    for shards in [1usize, 2, 4, 8] {
        let mut sg = ShardedGraph::new(&graph, shards)?;
        let r = sg.run(Query::Bfs { src: 0 }, &opts)?;
        assert_eq!(
            r.values, single_bfs.values,
            "sharded BFS must be bit-identical"
        );
        assert_eq!(r.accounting_gap(), 0.0, "time ledger must balance exactly");
        println!(
            "  {:>6}  {:>8.2}  {:>11.2}  {:>10}  {:>4.1}",
            shards,
            r.total_ms(),
            r.exchange_ns / 1e6,
            r.supersteps,
            100.0 * r.cut_fraction
        );
    }

    // Partitioning strategy and interconnect are pluggable: a
    // degree-balanced partition evens out per-device edge work, and
    // NVLink-class bandwidth shrinks the exchange share. Neither is
    // allowed to change a single bit of the answer.
    let mut balanced = ShardedGraph::with_config(
        &graph,
        4,
        PartitionStrategy::DegreeBalanced,
        DeviceConfig::tesla_c2070(),
        Interconnect::nvlink(),
    )?;
    let r = balanced.run(Query::Sssp { src: 0 }, &opts)?;
    assert_eq!(
        r.values, single_sssp.values,
        "sharded SSSP must be bit-identical"
    );
    println!(
        "\nSSSP on 4 degree-balanced shards over NVLink: {:.2} ms total, {:.2} ms exchange \
         ({} rounds, {} bytes moved)",
        r.total_ms(),
        r.exchange_ns / 1e6,
        r.exchange_rounds,
        r.exchange_bytes
    );

    // The per-shard ledger shows where time and traffic went.
    println!("\nper-shard ledger (SSSP, degree-balanced):");
    for s in &r.per_shard {
        println!(
            "  shard {}: {} owned + {} ghosts, {} local edges, {:.2} ms device time, \
             {} pairs sent, {} variant switches",
            s.shard,
            s.owned,
            s.ghosts,
            s.local_edges,
            s.device_ns / 1e6,
            s.pairs_sent,
            s.switches
        );
    }
    println!("\nall sharded runs verified bit-identical to the single device");
    Ok(())
}
