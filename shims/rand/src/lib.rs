//! Offline stand-in for the `rand` crate (API subset of rand 0.8).
//!
//! This workspace builds in environments without a crates.io mirror, so
//! external dependencies are vendored as minimal shims (see
//! `shims/README.md`). This one provides exactly the surface the graph
//! generators and tests use: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] / [`rngs::SmallRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic from a `u64` seed, which is
//! all the synthetic-dataset generators need. It is **not** the same
//! stream as upstream `StdRng` (ChaCha12), so datasets generated before
//! and after the shim swap differ in the concrete edges while keeping
//! identical statistical shape; nothing in the test suite pins exact
//! generated topologies to the upstream stream.

/// A deterministic seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges samplable uniformly (`rng.gen_range(lo..hi)` / `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type over its whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the "small" generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let z: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
            let u: usize = rng.gen_range(0..=0usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
