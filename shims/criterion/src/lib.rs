//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! external dependencies are vendored as minimal shims (see
//! `shims/README.md`). This one keeps the `harness = false` benches
//! compiling and running with the upstream source syntax: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `finish`),
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock: each benchmark runs one warm-up
//! iteration plus `sample_size` timed samples and prints min/mean/max.
//! There is no statistical analysis, outlier rejection, or HTML report —
//! these benches exist as reproduction drivers, and the simulator's own
//! virtual-time model (not host time) is the quantity the paper tables
//! are built from.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each `criterion_group!` target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();
        let full = if self.name.is_empty() {
            name
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        let (min, mean, max) = summarize(&b.samples);
        println!(
            "bench {full:<50} min {:>12} mean {:>12} max {:>12} ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            b.samples.len()
        );
    }

    /// Ends the group (upstream writes reports here; the shim does not).
    pub fn finish(self) {}
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` once per sample after a single warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn summarize(samples: &[Duration]) -> (u128, u128, u128) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    let ns: Vec<u128> = samples.iter().map(|d| d.as_nanos()).collect();
    let min = *ns.iter().min().unwrap();
    let max = *ns.iter().max().unwrap();
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    (min, mean, max)
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group; ignores `--bench`-style CLI args.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(5);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // one warm-up + 5 samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn format_is_humane() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(12_345), "12.345 us");
        assert_eq!(fmt_ns(12_345_678), "12.346 ms");
        assert_eq!(fmt_ns(1_234_567_890), "1.235 s");
    }
}
