//! Offline no-op stand-in for `serde`'s derive macros.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! external dependencies are vendored as minimal shims (see
//! `shims/README.md`). The codebase only ever uses serde via
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations —
//! actual serialization (the telemetry JSON traces) is hand-rolled in
//! `agg_gpu_sim::json`. These derives therefore expand to nothing: the
//! annotated types stay exactly as written and no trait impls are
//! generated.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item, emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item, emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
