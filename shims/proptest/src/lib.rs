//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! external dependencies are vendored as minimal shims (see
//! `shims/README.md`). This one keeps the property tests running with
//! the same source syntax as upstream proptest:
//!
//! - [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   integer and float ranges, tuples, and [`Just`];
//! - [`collection::vec`] and [`any`];
//! - the [`proptest!`] macro (including `#![proptest_config(..)]`),
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream, deliberately accepted: inputs are drawn
//! from a seed derived deterministically from the test's module path and
//! name (every run replays the identical cases — there is no
//! persistence file), and there is **no shrinking**: a failing case
//! panics with its case index, and because generation is deterministic
//! the failure reproduces exactly under `cargo test <name>`.

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::Rng;

/// Runtime knobs for a [`proptest!`] block (upstream-compatible subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone,
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: rand::Standard {}

impl Arbitrary for bool {}
impl Arbitrary for u32 {}
impl Arbitrary for u64 {}
impl Arbitrary for usize {}
impl Arbitrary for f64 {}

/// Strategy over the whole domain of `T` — `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seeding.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Returns the RNG for one case of one test: FNV-1a over the test's
    /// fully qualified name, mixed with the case index. Stable across
    /// runs and across machines.
    pub fn rng_for(test_id: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-able function that replays `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::rng_for(test_id, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Like `assert!`; kept as a distinct name for upstream compatibility.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Like `assert_eq!`; kept as a distinct name for upstream compatibility.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Like `assert_ne!`; kept as a distinct name for upstream compatibility.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// One-stop import mirroring upstream's `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples_compose(x in 1u32..10, pair in (0usize..4, 0.0f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 4 && (0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<bool>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn flat_map_sees_outer_value(len_and_v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n..n + 1).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(len_and_v.0, len_and_v.1.len());
        }
    }

    #[test]
    fn seeding_is_stable_per_test_and_case() {
        use rand::RngCore;
        let a = crate::test_runner::rng_for("m::t", 0).next_u64();
        let b = crate::test_runner::rng_for("m::t", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::rng_for("m::t", 1).next_u64());
        assert_ne!(a, crate::test_runner::rng_for("m::u", 0).next_u64());
    }
}
