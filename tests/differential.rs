//! Workspace-level differential fuzzing suite: the acceptance gate for
//! the whole execution matrix. Every static variant, the adaptive
//! runtime, direction-optimized BFS, shuffled Session batches, and
//! multi-device sharded execution (2 and 4 shards) must
//! agree bit-for-bit with the serial CPU oracles on a corpus spanning
//! all six graph generators — including graphs with duplicate edges,
//! self-loops, isolated nodes, and disconnected components — and the
//! whole sweep must be free of harmful data races.

use agg::prelude::*;
use agg_bench::differential::{case_graph, fuzz, FuzzConfig, GENERATORS};

/// The headline sweep: 200 corpus graphs, every execution configuration,
/// compared against the oracles. Runs at the harness default —
/// fast-functional fidelity — so the race counters stay at zero here;
/// `race_detect_sweep_engages_the_detector` covers the timed+races path.
/// Deterministic in the seed, so a failure here is a failure every time.
#[test]
fn two_hundred_graph_corpus_matches_cpu_oracles() {
    let cfg = FuzzConfig::new(200, 0xA11CE);
    let report = fuzz(&cfg);
    assert!(
        report.is_clean(),
        "{} divergence(s), {} harmful race word(s): {:?}",
        report.divergences.len(),
        report.race_harmful_words,
        report.divergences
    );
    assert_eq!(report.cases, 200);
    // 24 matrix runs per graph plus the sharded sweep (BFS/SSSP/CC at 2
    // and 4 shards each) and the shuffled-batch queries.
    assert!(
        report.runs >= 200 * 24 + 200 * 6,
        "only {} runs",
        report.runs
    );
    assert_eq!(report.sharded_runs, 200 * 6, "sharded sweep incomplete");
    assert_eq!(report.batches, 25, "one shuffled batch every 8th case");
    assert_eq!(
        report.race_launches_checked, 0,
        "functional default must not pay for race logging"
    );
    // The corpus must have exercised every generator.
    let mut seen = [false; 6];
    for case in 0..200 {
        let g = case_graph(cfg.seed, case);
        seen[GENERATORS.iter().position(|&n| n == g.generator).unwrap()] = true;
    }
    assert!(seen.iter().all(|&s| s));
}

/// A smaller sweep with `race_detect` opted in: every launch runs fully
/// timed under the race detector, and the detector must actually engage.
#[test]
fn race_detect_sweep_engages_the_detector() {
    let mut cfg = FuzzConfig::new(12, 0xA11CE);
    cfg.race_detect = true;
    let report = fuzz(&cfg);
    assert!(
        report.is_clean(),
        "{} divergence(s), {} harmful race word(s): {:?}",
        report.divergences.len(),
        report.race_harmful_words,
        report.divergences
    );
    assert!(
        report.race_launches_checked > 0,
        "race detector never engaged"
    );
    assert_eq!(report.race_harmful_words, 0);
}

/// Bottom-up (direction-optimized) BFS on a graph that is explicitly
/// disconnected and has isolated nodes: the bottom-up step scans
/// *unvisited* nodes, so nodes with no in-edges and whole unreachable
/// components must stay at the unreached sentinel, bit-identical to the
/// CPU oracle. A low threshold forces bottom-up steps from the first
/// iteration.
#[test]
fn bottom_up_bfs_matches_oracle_on_disconnected_graph() {
    // Component A: chain 0->1->2->3->4. Component B: cycle 5->6->7->5
    // (unreachable from 0). Nodes 8..=11: fully isolated (no edges at
    // all — the reverse-CSR rows the bottom-up kernel scans are empty).
    let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7), (7, 5)];
    let g = GraphBuilder::from_edges(12, &edges).unwrap();
    let expected = cpu_bfs(&g, 0, &CpuCostModel::default()).result;
    // Sanity: the oracle itself sees the disconnection.
    assert_eq!(expected[4], 4);
    assert!(expected[5] > 4 && expected[8] > 4, "sentinel expected");

    let cfg = DeviceConfig::tesla_c2070().with_fidelity(SimFidelity::TimedWithRaces);
    let mut gg = GpuGraph::with_device(&g, cfg).unwrap();
    gg.enable_bottom_up(&g);
    let opts = RunOptions::builder()
        .strategy(Strategy::DirectionOptimized {
            bottom_up_fraction: 0.05,
        })
        .build();
    let r = gg.run(Query::Bfs { src: 0 }, &opts).unwrap();
    assert_eq!(r.values, expected);
    assert!(
        r.metrics.bottom_up_iterations > 0,
        "threshold never triggered a bottom-up step"
    );
    assert!(
        gg.device().race_summary().is_clean(),
        "harmful races in bottom-up BFS: {:?}",
        gg.device().race_summary().harmful
    );
}

/// The divergence artifact must round-trip the counters CI greps for.
#[test]
fn fuzz_report_artifact_has_ci_keys() {
    let mut cfg = FuzzConfig::new(2, 7);
    cfg.batch_period = 2;
    let report = fuzz(&cfg);
    let s = report.to_json().render();
    for key in [
        "\"cases\":2",
        "\"clean\":true",
        "\"divergences\":[]",
        "\"race_harmful_words\":0",
        "\"race_launches_checked\":",
        "\"batches\":1",
        "\"sharded_runs\":12",
    ] {
        assert!(s.contains(key), "missing {key} in {s}");
    }
}
