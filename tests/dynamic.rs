//! Workspace-level dynamic-graph property suite: the acceptance gate for
//! the batch-dynamic layer. Randomized insert/delete batches — across
//! update sizes and via proptest-generated graphs — must leave every
//! incremental result (the CPU repair oracle and the GPU warm-start
//! path) bit-identical to a from-scratch recompute on the updated
//! graph; any divergence is ddmin-shrunk to a minimal update sequence
//! by the harness before it is reported.

use agg::prelude::{CsrGraph, GraphBuilder, Query, RunOptions};
use agg_bench::dynamic::{dyn_fuzz, DynFuzzConfig};
use agg_core::Session;
use agg_cpu::CpuCostModel;
use agg_dynamic::{
    cpu_apply_plan, plan_repair, random_batch, DynamicGraph, RepairKind, RepairPlan,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn query_for(kind: RepairKind, src: u32) -> Query {
    match kind {
        RepairKind::Bfs => Query::Bfs { src },
        RepairKind::Sssp => Query::Sssp { src },
        RepairKind::Cc => Query::Cc,
    }
}

/// The headline sweep: the dynamic differential harness (cold GPU, CPU
/// incremental oracle, unchanged plans, GPU warm repair — all against
/// the from-scratch CPU recompute) over the shared adversarial corpus,
/// at every update-batch size from singletons to batches larger than
/// many corpus graphs. Deterministic in the seeds, and the sweep as a
/// whole must exercise all three plan arms.
#[test]
fn randomized_update_batches_are_bit_identical_across_sizes() {
    let (mut unchanged, mut incremental, mut recompute) = (0u64, 0u64, 0u64);
    let mut warm_runs = 0u64;
    for (update_size, seed) in [(1usize, 11u64), (2, 22), (4, 33), (8, 44), (16, 55)] {
        let cfg = DynFuzzConfig {
            cases: 6,
            rounds: 3,
            update_size,
            seed,
        };
        let r = dyn_fuzz(&cfg);
        assert!(
            r.is_clean(),
            "update_size {update_size}: {} divergence(s): {:?}",
            r.divergences.len(),
            r.divergences
        );
        assert!(r.rounds_applied > 0, "update_size {update_size}: no batch applied");
        assert!(r.checks > 0);
        unchanged += r.plans_unchanged;
        incremental += r.plans_incremental;
        recompute += r.plans_recompute;
        warm_runs += r.warm_runs;
    }
    assert!(
        unchanged > 0 && incremental > 0 && recompute > 0,
        "plan arms not all exercised: {unchanged} unchanged / {incremental} incremental / \
         {recompute} recompute"
    );
    assert_eq!(warm_runs, incremental, "every incremental plan gets a GPU warm run");
}

/// The divergence artifact must round-trip the counters CI greps for.
#[test]
fn dynamic_report_artifact_has_ci_keys() {
    let r = dyn_fuzz(&DynFuzzConfig::new(3, 5));
    let s = r.to_json().render();
    for key in [
        "\"cases\":3",
        "\"clean\":true",
        "\"divergences\":[]",
        "\"rounds_applied\":",
        "\"plans_incremental\":",
        "\"warm_runs\":",
        "\"compactions\":",
    ] {
        assert!(s.contains(key), "missing {key} in {s}");
    }
}

/// Strategy: a random weighted digraph as (node count, edge triples).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..16), 0..max_m)
            .prop_map(move |edges| GraphBuilder::from_weighted_edges(n, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Three rounds of random mutations on a proptest-generated graph:
    /// for every repairable algorithm, the CPU oracle executing the
    /// planner's decision — and the GPU warm-start path whenever the
    /// plan is incremental — must land exactly on the from-scratch
    /// fixpoint of the updated graph.
    #[test]
    fn incremental_results_match_recompute_on_random_mutations(
        g in arb_graph(30, 90),
        seed in 0u64..1000,
    ) {
        let n = g.node_count() as u32;
        let src = (seed % n as u64) as u32;
        let model = CpuCostModel::default();
        let opts = RunOptions::default();
        let mut rng = StdRng::seed_from_u64(seed);
        // Pre-seeding the delete ledger with the base edges lets the
        // stream remove original edges, not only its own inserts.
        let mut ledger: Vec<(u32, u32)> = g.edges().map(|(s, d, _)| (s, d)).collect();
        let mut dg = DynamicGraph::new(g);
        let mut session = Session::new(dg.snapshot().unwrap()).unwrap();
        let kinds = [RepairKind::Bfs, RepairKind::Sssp, RepairKind::Cc];
        for _round in 0..3 {
            let old: Vec<Vec<u32>> = kinds
                .iter()
                .map(|&k| session.run(query_for(k, src), &opts).unwrap().values)
                .collect();
            let batch = random_batch(&mut rng, n, 5, true, &mut ledger);
            let out = dg.apply(&batch).unwrap();
            if !out.bumped {
                continue;
            }
            let snap = dg.snapshot().unwrap().clone();
            session.reload_graph(&snap).unwrap();
            let (sn, sm) = (snap.node_count(), snap.edge_count());
            for (&kind, old) in kinds.iter().zip(&old) {
                let expected =
                    agg_cpu::recompute(&snap, kind.relax(), src, &model).result;
                let plan = plan_repair(
                    kind,
                    old,
                    &out.added,
                    &out.removed,
                    sn,
                    sm,
                    sm as f64 / sn.max(1) as f64,
                );
                let oracle = cpu_apply_plan(&snap, kind, old, &plan, src, &model);
                prop_assert_eq!(
                    &oracle, &expected,
                    "CPU oracle diverged ({:?}, plan {:?})", kind, plan
                );
                if matches!(plan, RepairPlan::Unchanged) {
                    prop_assert_eq!(old, &expected, "unchanged plan was not exact ({:?})", kind);
                }
                if matches!(plan, RepairPlan::Incremental { .. }) {
                    let warm = session
                        .run_warm(query_for(kind, src), &opts, old, &out.added)
                        .unwrap()
                        .values;
                    prop_assert_eq!(&warm, &expected, "GPU warm repair diverged ({:?})", kind);
                }
            }
        }
    }
}
