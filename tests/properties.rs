//! Property-based tests over the whole stack: random graphs through every
//! kernel variant, format round trips, working-set invariants, and the
//! decision function's totality.

use agg::prelude::{
    AlgoOrder, CsrGraph, GpuGraph, GraphBuilder, Query, RunOptions, Variant, WorkSet, INF,
};
use agg_core::AdaptiveConfig;
use agg_graph::io::{read_dimacs, read_edge_list, write_dimacs, write_edge_list};
use agg_graph::traversal;
use proptest::prelude::*;
use std::io::Cursor;

/// Strategy: a random weighted digraph as (node count, edge triples).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..100), 0..max_m)
            .prop_map(move |edges| GraphBuilder::from_weighted_edges(n, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn bfs_every_variant_matches_the_oracle(g in arb_graph(40, 150), seed in 0u32..1000) {
        let src = seed % g.node_count() as u32;
        let expected = traversal::bfs_levels(&g, src);
        prop_assert!(traversal::is_bfs_levels(&g, src, &expected));
        let mut gg = GpuGraph::new(&g).unwrap();
        for v in Variant::ALL {
            let r = gg.run(Query::Bfs { src }, &RunOptions::static_variant(v)).unwrap();
            prop_assert_eq!(&r.values, &expected, "variant {}", v.name());
        }
    }

    #[test]
    fn sssp_adaptive_and_two_statics_match_dijkstra(g in arb_graph(35, 120), seed in 0u32..1000) {
        let src = seed % g.node_count() as u32;
        let expected = traversal::dijkstra(&g, src);
        prop_assert!(traversal::is_sssp_fixpoint(&g, src, &expected));
        let mut gg = GpuGraph::new(&g).unwrap();
        let adaptive = gg.run(Query::Sssp { src }, &RunOptions::default()).unwrap();
        prop_assert_eq!(&adaptive.values, &expected);
        for name in ["O_B_QU", "U_T_BM"] {
            let v = Variant::parse(name).unwrap();
            let r = gg.run(Query::Sssp { src }, &RunOptions::static_variant(v)).unwrap();
            prop_assert_eq!(&r.values, &expected, "variant {}", name);
        }
    }

    #[test]
    fn dimacs_round_trip_preserves_graphs(g in arb_graph(30, 100)) {
        let mut buf = Vec::new();
        write_dimacs(&mut buf, &g).unwrap();
        let g2 = read_dimacs(Cursor::new(buf)).unwrap();
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = g2.edges().collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(g.node_count(), g2.node_count());
    }

    #[test]
    fn edge_list_round_trip_preserves_graphs(g in arb_graph(30, 100)) {
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = g2.edges().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reverse_is_an_involution(g in arb_graph(30, 100)) {
        let rr = g.reverse().reverse();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = rr.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn decision_is_total_and_unordered(
        ws in 0u32..5_000_000,
        n in 1u32..5_000_000,
        deg in 0.0f64..500.0,
        t3 in 0.01f64..0.2,
    ) {
        let cfg = AdaptiveConfig { t3_fraction: t3, ..AdaptiveConfig::default() };
        let v = agg_core::decide(&cfg, ws, n, deg);
        prop_assert_eq!(v.order, AlgoOrder::Unordered);
        prop_assert!(Variant::UNORDERED.contains(&v));
        // Small working sets must always use the queue (bitmaps waste
        // whole launches when sparse).
        if ws < cfg.t2_ws_size.min(cfg.t3_ws_size(n)) {
            prop_assert_eq!(v.workset, WorkSet::Queue);
        }
    }

    #[test]
    fn bfs_levels_satisfy_edge_triangle_inequality(g in arb_graph(40, 150)) {
        let levels = traversal::bfs_levels(&g, 0);
        for (u, v, _) in g.edges() {
            let (lu, lv) = (levels[u as usize], levels[v as usize]);
            if lu != INF {
                prop_assert!(lv != INF && lv <= lu + 1, "edge ({u},{v}): {lu} -> {lv}");
            }
        }
    }

    #[test]
    fn run_report_times_are_positive_and_finite(g in arb_graph(25, 80)) {
        let mut gg = GpuGraph::new(&g).unwrap();
        let r = gg.run(Query::Bfs { src: 0 }, &RunOptions::default()).unwrap();
        prop_assert!(r.total_ns.is_finite() && r.total_ns > 0.0);
        prop_assert!(r.launches > 0);
    }

    /// The bytecode engine's timed fast lane (folded cost blocks,
    /// batched per-warp charging, pattern-cached coalescing) must be
    /// observationally identical to the legacy interpreter — which folds
    /// nothing, charges statement by statement, and counts transactions
    /// by sorting tagged addresses — on random graphs: same values, same
    /// modeled device clock (exact f64 equality — the engines must
    /// charge the same cycles in the same order), same per-kernel launch
    /// profiles (kernel_ns, issue/stall cycles, every CostStats counter
    /// including coalescing transaction counts), same race summary, for
    /// all four algorithms under the adaptive runtime at both timed
    /// fidelities.
    #[test]
    fn bytecode_engine_is_bit_identical_to_interpreter(g in arb_graph(35, 120), seed in 0u32..1000) {
        use agg::prelude::{DeviceConfig, ExecEngine, SimFidelity};
        let src = seed % g.node_count() as u32;
        for fidelity in [SimFidelity::Timed, SimFidelity::TimedWithRaces] {
            let mut outcomes = Vec::new();
            for engine in [ExecEngine::Interpreter, ExecEngine::Bytecode] {
                let cfg = DeviceConfig::tesla_c2070()
                    .with_engine(engine)
                    .with_fidelity(fidelity);
                let mut gg = GpuGraph::with_device(&g, cfg).unwrap();
                let mut values = Vec::new();
                for q in [Query::Bfs { src }, Query::Sssp { src }, Query::Cc, Query::pagerank()] {
                    values.push(gg.run(q, &RunOptions::default()).unwrap().values);
                }
                let dev = gg.device();
                outcomes.push((
                    values,
                    dev.elapsed_ns(),
                    dev.kernel_ns(),
                    dev.cumulative_stats(),
                    dev.profile().clone(),
                    dev.race_summary().clone(),
                ));
            }
            let (bc, interp) = (outcomes.pop().unwrap(), outcomes.pop().unwrap());
            prop_assert_eq!(interp.0, bc.0, "values diverge ({:?})", fidelity);
            prop_assert_eq!(interp.1, bc.1, "modeled time diverges ({:?})", fidelity);
            prop_assert_eq!(interp.2, bc.2, "kernel_ns diverges ({:?})", fidelity);
            prop_assert_eq!(interp.3, bc.3, "cost stats diverge ({:?})", fidelity);
            prop_assert_eq!(interp.4, bc.4, "launch profiles diverge ({:?})", fidelity);
            prop_assert_eq!(interp.5, bc.5, "race summaries diverge ({:?})", fidelity);
        }
    }

    #[test]
    fn telemetry_is_self_consistent(g in arb_graph(35, 120), seed in 0u32..1000) {
        let src = seed % g.node_count() as u32;
        let mut gg = GpuGraph::new(&g).unwrap();
        let opts = RunOptions::builder().trace().build();
        let r = gg.run(Query::Bfs { src }, &opts).unwrap();
        // The trace has exactly one record per iteration, in order
        // (iteration numbers are 1-based).
        prop_assert_eq!(r.trace.len(), r.iterations as usize);
        for (i, t) in r.trace.iter().enumerate() {
            prop_assert_eq!(t.iteration as usize, i + 1);
        }
        // Switch counters agree with the variant transitions in the trace.
        let trace_switches = r.trace.iter().filter(|t| t.switched).count() as u32;
        prop_assert_eq!(r.switches, trace_switches);
        prop_assert_eq!(r.metrics.switches, r.switches);
        let transitions = r
            .trace
            .windows(2)
            .filter(|w| w[0].variant != w[1].variant)
            .count() as u32;
        prop_assert_eq!(trace_switches, transitions);
        // The always-on metrics agree with the opt-in trace.
        prop_assert_eq!(r.metrics.iterations, r.iterations);
        let by_variant_total: u32 = r.metrics.by_variant().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(by_variant_total, r.iterations);
        let trace_ns: f64 = r.trace.iter().map(|t| t.iter_ns).sum();
        let tol = 1e-6 * r.total_ns.max(1.0);
        prop_assert!(
            (trace_ns - r.metrics.iter_ns_total).abs() <= tol,
            "trace {} vs metrics {}", trace_ns, r.metrics.iter_ns_total
        );
        // Per-phase times sum to the run total.
        let accounted = r.setup_ns + r.metrics.iter_ns_total + r.teardown_ns;
        prop_assert!(
            (accounted - r.total_ns).abs() <= tol,
            "accounted {} vs total {}", accounted, r.total_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn queue_generation_emits_exactly_the_set_bits(bits in proptest::collection::vec(any::<bool>(), 1..400)) {
        use agg_gpu_sim::prelude::*;
        use agg_kernels::GpuKernels;
        let kernels = GpuKernels::build();
        let n = bits.len() as u32;
        let update: Vec<u32> = bits.iter().map(|&b| b as u32).collect();
        let expected: Vec<u32> =
            (0..n).filter(|&i| bits[i as usize]).collect();
        for kernel in [&kernels.gen_queue, &kernels.gen_queue_scan] {
            let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
            let u = dev.alloc_from_slice("u", &update);
            let q = dev.alloc("q", n as usize);
            let len = dev.alloc("len", 1);
            dev.launch(
                kernel,
                Grid::linear(n as u64, 192),
                &LaunchArgs::new().bufs([u, q, len]).scalars([n]),
            )
            .unwrap();
            let l = dev.debug_read_word(len, 0).unwrap() as usize;
            prop_assert_eq!(l, expected.len(), "{}", &kernel.name);
            let mut got = dev.debug_read(q).unwrap()[..l].to_vec();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{}", &kernel.name);
            // update vector fully consumed
            prop_assert!(dev.debug_read(u).unwrap().iter().all(|&x| x == 0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn cc_matches_the_naive_oracle_on_random_graphs(g in arb_graph(35, 120)) {
        let expected = traversal::min_labels(&g);
        let mut gg = GpuGraph::new(&g).unwrap();
        let adaptive = gg.run(Query::Cc, &RunOptions::default()).unwrap();
        prop_assert_eq!(&adaptive.values, &expected);
        for v in Variant::UNORDERED {
            let r = gg.run(Query::Cc, &RunOptions::static_variant(v)).unwrap();
            prop_assert_eq!(&r.values, &expected, "variant {}", v.name());
        }
    }

    #[test]
    fn virtual_warp_matches_bfs_oracle(g in arb_graph(35, 120), width_pow in 1u32..6) {
        let width = 1 << width_pow; // 2..32
        let expected = traversal::bfs_levels(&g, 0);
        let mut gg = GpuGraph::new(&g).unwrap();
        for ws in [WorkSet::Bitmap, WorkSet::Queue] {
            let opts = RunOptions::builder()
                .strategy(agg::prelude::Strategy::VirtualWarp { width, workset: ws })
                .build();
            let r = gg.run(Query::Bfs { src: 0 }, &opts).unwrap();
            prop_assert_eq!(&r.values, &expected, "vw{} {:?}", width, ws);
        }
    }

    #[test]
    fn hybrid_matches_bfs_oracle_at_any_threshold(
        g in arb_graph(35, 120),
        threshold in 0u32..200,
    ) {
        let expected = traversal::bfs_levels(&g, 0);
        let mut gg = GpuGraph::new(&g).unwrap();
        let opts = RunOptions::builder()
            .strategy(agg::prelude::Strategy::Hybrid { gpu_threshold: threshold })
            .build();
        let r = gg.run(Query::Bfs { src: 0 }, &opts).unwrap();
        prop_assert_eq!(&r.values, &expected);
    }

    #[test]
    fn pagerank_mass_conservation_and_oracle_proximity(g in arb_graph(30, 100)) {
        let mut gg = GpuGraph::new(&g).unwrap();
        let r = gg.run(Query::pagerank(), &RunOptions::default()).unwrap();
        let ranks = r.values_as_f32();
        let n = g.node_count() as f32;
        let total: f32 = ranks.iter().sum();
        // teleport mass alone is (1-d)*n; dangling leakage keeps total <= n
        prop_assert!(total >= 0.15 * n * 0.99 && total <= n * 1.01, "total {}", total);
        prop_assert!(ranks.iter().all(|&x| x.is_finite() && x >= 0.0));
        let power = agg::cpu::pagerank_power(&g, 0.85, 1e-7, 500);
        let diff = ranks.iter().zip(&power).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        prop_assert!(diff < 2e-2, "max diff {}", diff);
    }

    #[test]
    fn shuffled_batches_match_one_by_one_runs(g in arb_graph(35, 120), seed in any::<u64>()) {
        use agg::prelude::{DeviceConfig, Session};
        let n = g.node_count() as u32;
        // A mixed batch with duplicate algorithms, shuffled so the
        // scheduler's same-algorithm grouping actually reorders it.
        let mut queries = vec![
            Query::Bfs { src: 0 },
            Query::Sssp { src: seed as u32 % n },
            Query::Cc,
            Query::Bfs { src: (seed >> 8) as u32 % n },
            Query::pagerank(),
            Query::Sssp { src: 0 },
            Query::Bfs { src: (seed >> 16) as u32 % n },
        ];
        // Fisher-Yates with a splitmix-style generator keyed by the seed.
        let mut state = seed;
        for i in (1..queries.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            queries.swap(i, (state >> 33) as usize % (i + 1));
        }
        // Oracle: every query on its own fresh upload.
        let mut expected = Vec::new();
        for q in &queries {
            let mut gg = GpuGraph::new(&g).unwrap();
            expected.push(gg.run(*q, &RunOptions::default()).unwrap());
        }
        // Batched, both host execution modes.
        let mut seq = Session::new(&g).unwrap();
        let mut par = Session::parallel(&g, DeviceConfig::tesla_c2070(), 3).unwrap();
        for batch in [
            seq.run_batch(&queries, &RunOptions::default()).unwrap(),
            par.run_batch(&queries, &RunOptions::default()).unwrap(),
        ] {
            for (i, (qr, e)) in batch.queries.iter().zip(&expected).enumerate() {
                prop_assert_eq!(qr.index, i);
                prop_assert_eq!(&qr.query, &queries[i]);
                prop_assert_eq!(&qr.report.values, &e.values, "query #{} {:?}", i, queries[i]);
                prop_assert_eq!(qr.report.iterations, e.iterations);
            }
            // Per-query device-time slices telescope to the batch total.
            let sum: f64 = batch.queries.iter().map(|q| q.device_ns).sum();
            prop_assert!(
                (sum - batch.device_ns).abs() <= 1e-6 * batch.device_ns.max(1.0),
                "slice sum {} vs batch {}", sum, batch.device_ns
            );
        }
    }

    #[test]
    fn relabeling_commutes_with_every_algorithm(g in arb_graph(30, 100)) {
        let relab = agg::graph::relabel::bfs_order(&g, 0);
        let h = agg::graph::relabel::apply(&g, &relab).unwrap();
        // BFS commutes
        let a = traversal::bfs_levels(&g, 0);
        let b = traversal::bfs_levels(&h, relab.perm[0]);
        prop_assert_eq!(relab.unpermute_values(&b), a);
        // degree multiset preserved
        let mut da: Vec<usize> = (0..g.node_count() as u32).map(|v| g.out_degree(v)).collect();
        let mut db: Vec<usize> = (0..h.node_count() as u32).map(|v| h.out_degree(v)).collect();
        da.sort_unstable();
        db.sort_unstable();
        prop_assert_eq!(da, db);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn partition_covers_every_edge_exactly_once(
        g in arb_graph(40, 150),
        k in 1usize..7,
        degree_balanced in any::<bool>(),
    ) {
        use agg::prelude::{partition, PartitionStrategy};
        let strategy = if degree_balanced {
            PartitionStrategy::DegreeBalanced
        } else {
            PartitionStrategy::Contiguous1D
        };
        let part = partition(&g, k, strategy).unwrap();
        prop_assert_eq!(part.shard_count(), k);
        // Every global edge appears in exactly one shard's local CSR
        // (owned by its source), with the weight carried along.
        let mut seen: Vec<(u32, u32, u32)> = Vec::new();
        for plan in &part.shards {
            for (u_l, v_l, w) in plan.local.edges() {
                prop_assert!(u_l < plan.owned_count() as u32, "ghost rows must be empty");
                seen.push((plan.to_global(u_l), plan.to_global(v_l), w));
            }
        }
        let mut expected: Vec<(u32, u32, u32)> = g.edges().collect();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
        // Ownership is a partition of the node range.
        let total_owned: usize = part.shards.iter().map(|p| p.owned_count()).sum();
        prop_assert_eq!(total_owned, g.node_count());
        // Cut accounting is symmetric across shards.
        let cut_out: usize = part.shards.iter().map(|p| p.cut_out_edges).sum();
        let cut_in: usize = part.shards.iter().map(|p| p.cut_in_edges).sum();
        prop_assert_eq!(cut_out, part.cut_edges);
        prop_assert_eq!(cut_in, part.cut_edges);
    }

    #[test]
    fn ghost_ids_round_trip_and_stay_sorted(g in arb_graph(40, 150), k in 2usize..6) {
        use agg::prelude::{partition, PartitionStrategy};
        let part = partition(&g, k, PartitionStrategy::Contiguous1D).unwrap();
        for plan in &part.shards {
            prop_assert!(plan.ghosts.windows(2).all(|w| w[0] < w[1]), "ghosts must be sorted");
            for l in 0..plan.ext_count() as u32 {
                let gid = plan.to_global(l);
                prop_assert_eq!(plan.to_local(gid), Some(l), "lid {} round trip", l);
                prop_assert_eq!(plan.owns(gid), l < plan.owned_count() as u32);
                // Ghosts are never owned here but always owned elsewhere.
                if l >= plan.owned_count() as u32 {
                    let owner = part.owner_of(gid);
                    prop_assert!(owner != plan.shard);
                    prop_assert!(part.shards[owner].owns(gid));
                }
            }
        }
    }

    #[test]
    fn degree_balanced_shards_respect_the_edge_bound(g in arb_graph(50, 250), k in 1usize..7) {
        use agg::prelude::{partition, PartitionStrategy};
        let part = partition(&g, k, PartitionStrategy::DegreeBalanced).unwrap();
        let max_outdeg = (0..g.node_count() as u32)
            .map(|v| g.out_degree(v))
            .max()
            .unwrap_or(0);
        let bound = g.edge_count().div_ceil(k) + max_outdeg;
        prop_assert!(
            part.max_shard_edges() <= bound,
            "max shard edges {} exceeds ceil(m/k) + max outdegree = {}",
            part.max_shard_edges(),
            bound
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    #[test]
    fn sharded_execution_is_bit_identical_to_single_device(
        g in arb_graph(35, 120),
        k in 1usize..6,
        seed in 0u32..1000,
        degree_balanced in any::<bool>(),
    ) {
        use agg::prelude::{
            DeviceConfig, Interconnect, PartitionStrategy, ShardedGraph,
        };
        let strategy = if degree_balanced {
            PartitionStrategy::DegreeBalanced
        } else {
            PartitionStrategy::Contiguous1D
        };
        let src = seed % g.node_count() as u32;
        let opts = RunOptions::default();
        let mut sharded = ShardedGraph::with_config(
            &g,
            k,
            strategy,
            DeviceConfig::tesla_c2070(),
            Interconnect::pcie(),
        )
        .unwrap();
        let mut gg = GpuGraph::new(&g).unwrap();
        for query in [
            Query::Bfs { src },
            Query::Sssp { src },
            Query::Cc,
            Query::pagerank(),
        ] {
            let expected = gg.run(query, &opts).unwrap();
            let r = sharded.run(query, &opts).unwrap();
            prop_assert_eq!(
                &r.values, &expected.values,
                "{:?} diverged at {} shards ({:?})", query, k, strategy
            );
            // The report's time-accounting identity holds exactly.
            prop_assert_eq!(r.accounting_gap(), 0.0);
            let sent: u64 = r.per_shard.iter().map(|s| s.bytes_sent).sum();
            prop_assert_eq!(sent, r.exchange_bytes);
        }
    }
}
