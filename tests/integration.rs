//! Cross-crate integration tests: graph generation → device upload →
//! adaptive/static traversals → verification against the CPU baselines,
//! plus file-format round trips through the full pipeline.

use agg::prelude::*;
use agg_graph::io::{read_dimacs, read_edge_list, write_dimacs, write_edge_list};
use agg_graph::traversal;
use std::io::Cursor;

#[test]
fn end_to_end_adaptive_on_every_dataset() {
    for d in Dataset::ALL {
        let g = d.generate_weighted(Scale::Tiny, 404, 64);
        let mut gg = GpuGraph::new(&g).unwrap();

        let bfs = gg
            .run(Query::Bfs { src: 0 }, &RunOptions::default())
            .unwrap();
        let cpu = cpu_bfs(&g, 0, &CpuCostModel::default());
        assert_eq!(bfs.values, cpu.result, "{} BFS", d.name());

        let sssp = gg
            .run(Query::Sssp { src: 0 }, &RunOptions::default())
            .unwrap();
        let cpu = cpu_dijkstra(&g, 0, &CpuCostModel::default());
        assert_eq!(sssp.values, cpu.result, "{} SSSP", d.name());

        assert!(bfs.total_ns > 0.0 && sssp.total_ns > 0.0);
        assert!(
            sssp.iterations >= bfs.iterations,
            "{}: SSSP converges no faster than BFS",
            d.name()
        );
    }
}

#[test]
fn every_static_variant_agrees_with_adaptive() {
    let g = Dataset::Google.generate_weighted(Scale::Tiny, 405, 64);
    let mut gg = GpuGraph::new(&g).unwrap();
    let reference = gg
        .run(Query::Sssp { src: 0 }, &RunOptions::default())
        .unwrap()
        .values;
    for v in Variant::ALL {
        let r = gg
            .run(Query::Sssp { src: 0 }, &RunOptions::static_variant(v))
            .unwrap();
        assert_eq!(r.values, reference, "{}", v.name());
        assert_eq!(r.switches, 0);
    }
}

#[test]
fn dimacs_round_trip_through_the_gpu() {
    let g = Dataset::CoRoad.generate_weighted(Scale::Tiny, 406, 30);
    let mut buf = Vec::new();
    write_dimacs(&mut buf, &g).unwrap();
    let g2 = read_dimacs(Cursor::new(buf)).unwrap();
    assert_eq!(g.node_count(), g2.node_count());
    assert_eq!(g.edge_count(), g2.edge_count());

    let mut gg = GpuGraph::new(&g2).unwrap();
    let r = gg
        .run(Query::Sssp { src: 0 }, &RunOptions::default())
        .unwrap();
    assert_eq!(r.values, traversal::dijkstra(&g, 0));
}

#[test]
fn edge_list_round_trip_through_the_gpu() {
    let g = Dataset::P2p.generate(Scale::Tiny, 407);
    let mut buf = Vec::new();
    write_edge_list(&mut buf, &g).unwrap();
    let g2 = read_edge_list(Cursor::new(buf)).unwrap();

    let mut gg = GpuGraph::new(&g2).unwrap();
    let r = gg
        .run(Query::Bfs { src: 0 }, &RunOptions::default())
        .unwrap();
    assert_eq!(r.values, traversal::bfs_levels(&g, 0));
}

#[test]
fn adaptive_is_never_worse_than_the_worst_static() {
    // A weak but robust performance property: the decision maker must not
    // pick a catastrophic configuration.
    let g = Dataset::Amazon.generate_weighted(Scale::Tiny, 408, 64);
    let mut gg = GpuGraph::new(&g).unwrap();
    let adaptive = gg
        .run(Query::Sssp { src: 0 }, &RunOptions::default())
        .unwrap()
        .total_ns;
    let mut worst: f64 = 0.0;
    for v in Variant::UNORDERED {
        let r = gg
            .run(Query::Sssp { src: 0 }, &RunOptions::static_variant(v))
            .unwrap();
        worst = worst.max(r.total_ns);
    }
    assert!(
        adaptive < worst,
        "adaptive ({adaptive} ns) should beat the worst static ({worst} ns)"
    );
}

#[test]
fn run_reports_account_consistently() {
    let g = Dataset::Sns.generate(Scale::Tiny, 409);
    let mut gg = GpuGraph::new(&g).unwrap();
    let opts = RunOptions::builder().trace().build();
    let r = gg.run(Query::Bfs { src: 0 }, &opts).unwrap();
    // prep + gen + compute = at least 3 launches per executed iteration,
    // plus the final empty-check iteration's prep + gen.
    assert!(r.launches >= 3 * r.iterations as u64 + 2);
    assert_eq!(r.trace.len(), r.iterations as usize);
    // Per-iteration times sum to less than the total (which also includes
    // init, the final check, and the value download).
    let iter_sum: f64 = r.trace.iter().map(|t| t.iter_ns).sum();
    assert!(iter_sum < r.total_ns);
    // Switch count is bounded by iteration transitions.
    assert!(r.switches < r.iterations.max(1));
}

#[test]
fn device_clock_accumulates_across_runs() {
    let g = Dataset::P2p.generate(Scale::Tiny, 410);
    let mut gg = GpuGraph::new(&g).unwrap();
    let after_upload = gg.device_elapsed_ns();
    gg.run(Query::Bfs { src: 0 }, &RunOptions::default())
        .unwrap();
    let after_one = gg.device_elapsed_ns();
    gg.run(Query::Bfs { src: 1 }, &RunOptions::default())
        .unwrap();
    let after_two = gg.device_elapsed_ns();
    assert!(after_upload < after_one && after_one < after_two);
}

#[test]
fn sources_in_every_corner_of_the_graph() {
    let g = Dataset::CoRoad.generate(Scale::Tiny, 411);
    let n = g.node_count() as u32;
    let mut gg = GpuGraph::new(&g).unwrap();
    for src in [0, n / 2, n - 1] {
        let r = gg.run(Query::Bfs { src }, &RunOptions::default()).unwrap();
        assert_eq!(r.values, traversal::bfs_levels(&g, src), "src {src}");
    }
}

#[test]
fn scan_queue_generation_gives_identical_results() {
    let g = Dataset::Google.generate_weighted(Scale::Tiny, 412, 64);
    let mut gg = GpuGraph::new(&g).unwrap();
    let base = gg
        .run(Query::Sssp { src: 0 }, &RunOptions::default())
        .unwrap();
    let tuning = agg::core::AdaptiveConfig {
        scan_queue_gen: true,
        ..Default::default()
    };
    let scan = gg
        .run(
            Query::Sssp { src: 0 },
            &RunOptions::builder().tuning(tuning).build(),
        )
        .unwrap();
    assert_eq!(base.values, scan.values);
}

#[test]
fn pagerank_through_the_facade_matches_the_oracle() {
    let g = Dataset::Google.generate(Scale::Tiny, 413);
    let mut gg = GpuGraph::new(&g).unwrap();
    let run = gg
        .run(
            Query::PageRank {
                config: PageRankConfig {
                    damping: 0.85,
                    epsilon: 1e-5,
                },
            },
            &RunOptions::default(),
        )
        .unwrap();
    let power = agg::cpu::pagerank_power(&g, 0.85, 1e-7, 500);
    let max_diff = run
        .values_as_f32()
        .iter()
        .zip(&power)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_diff < 5e-3, "max diff {max_diff}");
}

#[test]
fn relabeled_graph_produces_permuted_results_faster_memory_traffic() {
    let g = Dataset::Amazon.generate(Scale::Tiny, 414);
    let relabeling = agg::graph::relabel::bfs_order(&g, 0);
    let h = agg::graph::relabel::apply(&g, &relabeling).unwrap();

    let mut orig = GpuGraph::new(&g).unwrap();
    let mut relab = GpuGraph::new(&h).unwrap();
    let opts = RunOptions::static_variant(Variant::parse("U_T_BM").unwrap());
    let a = orig.run(Query::Bfs { src: 0 }, &opts).unwrap();
    let b = relab
        .run(
            Query::Bfs {
                src: relabeling.perm[0],
            },
            &opts,
        )
        .unwrap();
    assert_eq!(relabeling.unpermute_values(&b.values), a.values);
    // BFS-order renumbering must not increase coalesced traffic.
    assert!(
        b.gpu_stats.totals.mem_transactions <= a.gpu_stats.totals.mem_transactions,
        "relabeled {} > original {}",
        b.gpu_stats.totals.mem_transactions,
        a.gpu_stats.totals.mem_transactions
    );
}

#[test]
fn cc_through_the_facade() {
    let g = Dataset::CoRoad.generate(Scale::Tiny, 415);
    let mut gg = GpuGraph::new(&g).unwrap();
    let run = gg.run(Query::Cc, &RunOptions::default()).unwrap();
    assert_eq!(run.values, traversal::min_labels(&g));
}
