//! Pure per-lane expressions over 32-bit registers.
//!
//! All values are `u32` words, mirroring a GPU register file. Comparison
//! operators produce `0`/`1`. Arithmetic wraps (like hardware); the
//! saturating variants used by distance math are explicit operators so the
//! cost model can see them.

use serde::{Deserialize, Serialize};

/// A virtual register index, local to one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

/// A buffer parameter slot: the position of a device buffer in the launch
/// argument list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufSlot(pub u8);

/// Built-in per-lane identifiers (CUDA's `threadIdx` family, linearized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// Thread index within the block.
    ThreadIdx,
    /// Block index within the grid.
    BlockIdx,
    /// Threads per block.
    BlockDim,
    /// Blocks in the grid.
    GridDim,
    /// Lane index within the warp.
    LaneId,
    /// `BlockIdx * BlockDim + ThreadIdx`.
    GlobalThreadId,
}

/// Binary operators. Comparisons are unsigned and yield 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Binop {
    /// Wrapping addition.
    Add,
    /// Saturating addition (used for distance relaxation: `INF + w == INF`).
    SatAdd,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (traps on zero divisor).
    Div,
    /// Unsigned remainder (traps on zero divisor).
    Rem,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
    /// Bitwise and (also the logical `and` over 0/1 values).
    And,
    /// Bitwise or (also the logical `or` over 0/1 values).
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount taken mod 32).
    Shl,
    /// Logical right shift (shift amount taken mod 32).
    Shr,
    /// Equality, yields 0/1.
    Eq,
    /// Inequality, yields 0/1.
    Ne,
    /// Unsigned less-than, yields 0/1.
    Lt,
    /// Unsigned less-or-equal, yields 0/1.
    Le,
    /// Unsigned greater-than, yields 0/1.
    Gt,
    /// Unsigned greater-or-equal, yields 0/1.
    Ge,
    /// IEEE-754 addition on bit-reinterpreted f32 operands.
    FAdd,
    /// IEEE-754 subtraction.
    FSub,
    /// IEEE-754 multiplication.
    FMul,
    /// IEEE-754 division (no trap: yields inf/NaN like hardware).
    FDiv,
    /// f32 less-than, yields 0/1 (false on NaN).
    FLt,
    /// f32 greater-or-equal, yields 0/1 (false on NaN).
    FGe,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unop {
    /// Bitwise complement.
    Not,
    /// Logical negation: `0 -> 1`, nonzero `-> 0`.
    LNot,
    /// Convert an unsigned integer to f32 bits (CUDA `u2f`).
    U2F,
    /// Truncate f32 bits to an unsigned integer (CUDA `f2u`, saturating,
    /// NaN -> 0).
    F2U,
}

/// A pure per-lane expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// 32-bit immediate.
    Imm(u32),
    /// Register read.
    Reg(Reg),
    /// Built-in lane identifier.
    Special(Special),
    /// Uniform scalar kernel parameter (slot index).
    Param(u8),
    /// Unary operation.
    Unop(Unop, Box<Expr>),
    /// Binary operation.
    Binop(Binop, Box<Expr>, Box<Expr>),
    /// Predicated select: `cond != 0 ? a : b`. Executes without divergence
    /// (models hardware predication), unlike an `if` statement.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl From<u32> for Expr {
    fn from(v: u32) -> Expr {
        Expr::Imm(v)
    }
}

impl From<Reg> for Expr {
    fn from(r: Reg) -> Expr {
        Expr::Reg(r)
    }
}

impl From<Special> for Expr {
    fn from(s: Special) -> Expr {
        Expr::Special(s)
    }
}

impl From<&Expr> for Expr {
    fn from(e: &Expr) -> Expr {
        e.clone()
    }
}

macro_rules! binop_method {
    ($(#[$doc:meta])* $name:ident, $op:ident) => {
        $(#[$doc])*
        pub fn $name(self, rhs: impl Into<Expr>) -> Expr {
            Expr::Binop(Binop::$op, Box::new(self), Box::new(rhs.into()))
        }
    };
}

// The builder methods deliberately mirror CUDA/C operator names (`add`,
// `div`, `not`, ...) rather than implementing the std operator traits:
// kernel expressions take `impl Into<Expr>` operands and never panic, so
// the DSL reads like device code instead of overloaded host arithmetic.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Immediate constructor (alias for `From<u32>`).
    pub fn imm(v: u32) -> Expr {
        Expr::Imm(v)
    }

    binop_method!(/// Wrapping addition.
        add, Add);
    binop_method!(/// Saturating addition.
        sat_add, SatAdd);
    binop_method!(/// Wrapping subtraction.
        sub, Sub);
    binop_method!(/// Wrapping multiplication.
        mul, Mul);
    binop_method!(/// Unsigned division (traps on zero).
        div, Div);
    binop_method!(/// Unsigned remainder (traps on zero).
        rem, Rem);
    binop_method!(/// Unsigned minimum.
        min, Min);
    binop_method!(/// Unsigned maximum.
        max, Max);
    binop_method!(/// Bitwise and.
        and, And);
    binop_method!(/// Bitwise or.
        or, Or);
    binop_method!(/// Bitwise xor.
        xor, Xor);
    binop_method!(/// Left shift.
        shl, Shl);
    binop_method!(/// Logical right shift.
        shr, Shr);
    binop_method!(/// Equality (0/1).
        eq, Eq);
    binop_method!(/// Inequality (0/1).
        ne, Ne);
    binop_method!(/// Unsigned less-than (0/1).
        lt, Lt);
    binop_method!(/// Unsigned less-or-equal (0/1).
        le, Le);
    binop_method!(/// Unsigned greater-than (0/1).
        gt, Gt);
    binop_method!(/// Unsigned greater-or-equal (0/1).
        ge, Ge);
    binop_method!(/// IEEE f32 addition on bit-reinterpreted operands.
        fadd, FAdd);
    binop_method!(/// IEEE f32 subtraction.
        fsub, FSub);
    binop_method!(/// IEEE f32 multiplication.
        fmul, FMul);
    binop_method!(/// IEEE f32 division.
        fdiv, FDiv);
    binop_method!(/// f32 less-than (0/1).
        flt, FLt);
    binop_method!(/// f32 greater-or-equal (0/1).
        fge, FGe);

    /// Bitwise complement.
    pub fn not(self) -> Expr {
        Expr::Unop(Unop::Not, Box::new(self))
    }

    /// Logical negation (0/1).
    pub fn lnot(self) -> Expr {
        Expr::Unop(Unop::LNot, Box::new(self))
    }

    /// Integer → f32 conversion.
    pub fn u2f(self) -> Expr {
        Expr::Unop(Unop::U2F, Box::new(self))
    }

    /// f32 → integer truncation.
    pub fn f2u(self) -> Expr {
        Expr::Unop(Unop::F2U, Box::new(self))
    }

    /// An f32 immediate, stored as its bit pattern.
    pub fn fimm(v: f32) -> Expr {
        Expr::Imm(v.to_bits())
    }

    /// Predicated select: `self != 0 ? a : b`.
    pub fn select(self, a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Select(Box::new(self), Box::new(a.into()), Box::new(b.into()))
    }

    /// Number of operator nodes — the issue-slot cost of evaluating this
    /// expression once per warp.
    pub fn op_count(&self) -> u64 {
        match self {
            Expr::Imm(_) | Expr::Reg(_) | Expr::Special(_) | Expr::Param(_) => 0,
            Expr::Unop(_, a) => 1 + a.op_count(),
            Expr::Binop(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Select(c, a, b) => 1 + c.op_count() + a.op_count() + b.op_count(),
        }
    }

    /// The largest register index read by this expression, if any.
    pub fn max_reg(&self) -> Option<u16> {
        match self {
            Expr::Reg(Reg(r)) => Some(*r),
            Expr::Imm(_) | Expr::Special(_) | Expr::Param(_) => None,
            Expr::Unop(_, a) => a.max_reg(),
            Expr::Binop(_, a, b) => a.max_reg().max(b.max_reg()),
            Expr::Select(c, a, b) => c.max_reg().max(a.max_reg()).max(b.max_reg()),
        }
    }

    /// The largest scalar-parameter slot read by this expression, if any.
    pub fn max_param(&self) -> Option<u8> {
        match self {
            Expr::Param(p) => Some(*p),
            Expr::Imm(_) | Expr::Reg(_) | Expr::Special(_) => None,
            Expr::Unop(_, a) => a.max_param(),
            Expr::Binop(_, a, b) => a.max_param().max(b.max_param()),
            Expr::Select(c, a, b) => c.max_param().max(a.max_param()).max(b.max_param()),
        }
    }
}

/// Applies `op` to two words, reporting division by zero as `None`.
pub(crate) fn apply_binop(op: Binop, a: u32, b: u32) -> Option<u32> {
    Some(match op {
        Binop::Add => a.wrapping_add(b),
        Binop::SatAdd => a.saturating_add(b),
        Binop::Sub => a.wrapping_sub(b),
        Binop::Mul => a.wrapping_mul(b),
        Binop::Div => {
            if b == 0 {
                return None;
            }
            a / b
        }
        Binop::Rem => {
            if b == 0 {
                return None;
            }
            a % b
        }
        Binop::Min => a.min(b),
        Binop::Max => a.max(b),
        Binop::And => a & b,
        Binop::Or => a | b,
        Binop::Xor => a ^ b,
        Binop::Shl => a.wrapping_shl(b),
        Binop::Shr => a.wrapping_shr(b),
        Binop::Eq => (a == b) as u32,
        Binop::Ne => (a != b) as u32,
        Binop::Lt => (a < b) as u32,
        Binop::Le => (a <= b) as u32,
        Binop::Gt => (a > b) as u32,
        Binop::Ge => (a >= b) as u32,
        Binop::FAdd => (f32::from_bits(a) + f32::from_bits(b)).to_bits(),
        Binop::FSub => (f32::from_bits(a) - f32::from_bits(b)).to_bits(),
        Binop::FMul => (f32::from_bits(a) * f32::from_bits(b)).to_bits(),
        Binop::FDiv => (f32::from_bits(a) / f32::from_bits(b)).to_bits(),
        Binop::FLt => (f32::from_bits(a) < f32::from_bits(b)) as u32,
        Binop::FGe => (f32::from_bits(a) >= f32::from_bits(b)) as u32,
    })
}

/// Applies a unary operator.
pub(crate) fn apply_unop(op: Unop, a: u32) -> u32 {
    match op {
        Unop::Not => !a,
        Unop::LNot => (a == 0) as u32,
        Unop::U2F => (a as f32).to_bits(),
        Unop::F2U => {
            let f = f32::from_bits(a);
            if f.is_nan() {
                0
            } else {
                f as u32 // saturating cast in Rust semantics
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_produce_expected_trees() {
        let e = Expr::imm(2).add(3u32).mul(Reg(0));
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.max_reg(), Some(0));
        assert_eq!(e.max_param(), None);
    }

    #[test]
    fn apply_binop_semantics() {
        assert_eq!(apply_binop(Binop::Add, u32::MAX, 1), Some(0)); // wraps
        assert_eq!(apply_binop(Binop::SatAdd, u32::MAX, 1), Some(u32::MAX));
        assert_eq!(apply_binop(Binop::Sub, 0, 1), Some(u32::MAX));
        assert_eq!(apply_binop(Binop::Div, 7, 2), Some(3));
        assert_eq!(apply_binop(Binop::Div, 7, 0), None);
        assert_eq!(apply_binop(Binop::Rem, 7, 0), None);
        assert_eq!(apply_binop(Binop::Lt, 3, 4), Some(1));
        assert_eq!(apply_binop(Binop::Ge, 3, 4), Some(0));
        assert_eq!(apply_binop(Binop::Shl, 1, 33), Some(2)); // mod 32
        assert_eq!(apply_binop(Binop::Min, 9, 4), Some(4));
    }

    #[test]
    fn apply_unop_semantics() {
        assert_eq!(apply_unop(Unop::Not, 0), u32::MAX);
        assert_eq!(apply_unop(Unop::LNot, 0), 1);
        assert_eq!(apply_unop(Unop::LNot, 7), 0);
    }

    #[test]
    fn select_counts_as_one_op_plus_children() {
        let e = Expr::imm(1).select(Expr::imm(2).add(3u32), 4u32);
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn float_ops_use_ieee_semantics_on_bits() {
        let f = |x: f32| x.to_bits();
        assert_eq!(apply_binop(Binop::FAdd, f(1.5), f(2.25)), Some(f(3.75)));
        assert_eq!(apply_binop(Binop::FMul, f(3.0), f(-2.0)), Some(f(-6.0)));
        assert_eq!(
            apply_binop(Binop::FDiv, f(1.0), f(0.0)),
            Some(f(f32::INFINITY))
        );
        assert_eq!(apply_binop(Binop::FLt, f(-1.0), f(1.0)), Some(1));
        assert_eq!(apply_binop(Binop::FGe, f(-1.0), f(1.0)), Some(0));
        // NaN compares false both ways.
        assert_eq!(apply_binop(Binop::FLt, f(f32::NAN), f(1.0)), Some(0));
        assert_eq!(apply_binop(Binop::FGe, f(f32::NAN), f(1.0)), Some(0));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(apply_unop(Unop::U2F, 7), 7.0f32.to_bits());
        assert_eq!(apply_unop(Unop::F2U, 7.9f32.to_bits()), 7);
        assert_eq!(apply_unop(Unop::F2U, (-3.0f32).to_bits()), 0); // saturates
        assert_eq!(apply_unop(Unop::F2U, f32::NAN.to_bits()), 0);
        assert_eq!(apply_unop(Unop::F2U, 1e20f32.to_bits()), u32::MAX);
    }

    #[test]
    fn fimm_round_trips_bits() {
        assert_eq!(Expr::fimm(0.85), Expr::Imm(0.85f32.to_bits()));
    }

    #[test]
    fn max_param_traverses_tree() {
        let e = Expr::Param(3)
            .add(Expr::Param(1))
            .select(Expr::Param(5), 0u32);
        assert_eq!(e.max_param(), Some(5));
    }
}
