//! Pseudo-CUDA rendering of kernels.
//!
//! [`Kernel::to_pseudo_code`] prints a kernel as readable C-like source —
//! the reproduction's analog of publishing kernel listings. The renderer
//! is also used by `repro dump-kernels` to emit the whole suite as a
//! reviewable artifact.

use super::builder::Kernel;
use super::expr::{Binop, Expr, Special, Unop};
use super::stmt::{AtomicOp, BarrierOp, Stmt};
use std::fmt::Write;

/// Renders an expression as C-like source.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Imm(v) => {
            if *v == u32::MAX {
                "INF".to_string()
            } else {
                v.to_string()
            }
        }
        Expr::Reg(r) => format!("r{}", r.0),
        Expr::Param(p) => format!("param{p}"),
        Expr::Special(s) => match s {
            Special::ThreadIdx => "threadIdx".into(),
            Special::BlockIdx => "blockIdx".into(),
            Special::BlockDim => "blockDim".into(),
            Special::GridDim => "gridDim".into(),
            Special::LaneId => "laneId".into(),
            Special::GlobalThreadId => "tid".into(),
        },
        Expr::Unop(op, a) => {
            let a = expr_to_string(a);
            match op {
                Unop::Not => format!("~{a}"),
                Unop::LNot => format!("!{a}"),
                Unop::U2F => format!("(float){a}"),
                Unop::F2U => format!("(uint){a}"),
            }
        }
        Expr::Binop(op, a, b) => {
            let (a, b) = (expr_to_string(a), expr_to_string(b));
            let sym = match op {
                Binop::Add => "+",
                Binop::SatAdd => "+sat",
                Binop::Sub => "-",
                Binop::Mul => "*",
                Binop::Div => "/",
                Binop::Rem => "%",
                Binop::Min => return format!("min({a}, {b})"),
                Binop::Max => return format!("max({a}, {b})"),
                Binop::And => "&",
                Binop::Or => "|",
                Binop::Xor => "^",
                Binop::Shl => "<<",
                Binop::Shr => ">>",
                Binop::Eq => "==",
                Binop::Ne => "!=",
                Binop::Lt => "<",
                Binop::Le => "<=",
                Binop::Gt => ">",
                Binop::Ge => ">=",
                Binop::FAdd => "+f",
                Binop::FSub => "-f",
                Binop::FMul => "*f",
                Binop::FDiv => "/f",
                Binop::FLt => "<f",
                Binop::FGe => ">=f",
            };
            format!("({a} {sym} {b})")
        }
        Expr::Select(c, a, b) => format!(
            "({} ? {} : {})",
            expr_to_string(c),
            expr_to_string(a),
            expr_to_string(b)
        ),
    }
}

fn stmt_to_lines(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign(r, e) => {
            let _ = writeln!(out, "{pad}r{} = {};", r.0, expr_to_string(e));
        }
        Stmt::Load { dst, buf, index } => {
            let _ = writeln!(
                out,
                "{pad}r{} = buf{}[{}];",
                dst.0,
                buf.0,
                expr_to_string(index)
            );
        }
        Stmt::Store { buf, index, value } => {
            let _ = writeln!(
                out,
                "{pad}buf{}[{}] = {};",
                buf.0,
                expr_to_string(index),
                expr_to_string(value)
            );
        }
        Stmt::Atomic {
            op,
            buf,
            index,
            value,
            compare,
            old,
        } => {
            let name = match op {
                AtomicOp::Add => "atomicAdd",
                AtomicOp::Min => "atomicMin",
                AtomicOp::Max => "atomicMax",
                AtomicOp::Exch => "atomicExch",
                AtomicOp::Cas => "atomicCAS",
                AtomicOp::FAdd => "atomicAddF",
            };
            let dst = old.map(|r| format!("r{} = ", r.0)).unwrap_or_default();
            let cmp = compare
                .as_ref()
                .map(|c| format!("{}, ", expr_to_string(c)))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{pad}{dst}{name}(&buf{}[{}], {cmp}{});",
                buf.0,
                expr_to_string(index),
                expr_to_string(value)
            );
        }
        Stmt::SharedLoad { dst, index } => {
            let _ = writeln!(out, "{pad}r{} = shared[{}];", dst.0, expr_to_string(index));
        }
        Stmt::SharedStore { index, value } => {
            let _ = writeln!(
                out,
                "{pad}shared[{}] = {};",
                expr_to_string(index),
                expr_to_string(value)
            );
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr_to_string(cond));
            for t in then_ {
                stmt_to_lines(t, indent + 1, out);
            }
            if else_.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for e in else_ {
                    stmt_to_lines(e, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while ({}) {{", expr_to_string(cond));
            for b in body {
                stmt_to_lines(b, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Return => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::SyncThreads => {
            let _ = writeln!(out, "{pad}__syncthreads();");
        }
        Stmt::Barrier { op, value, dst } => {
            let name = match op {
                BarrierOp::ReduceMin => "blockReduceMin",
                BarrierOp::ReduceAdd => "blockReduceAdd",
                BarrierOp::ScanExclAdd => "blockScanExclAdd",
            };
            let _ = writeln!(out, "{pad}r{} = {name}({});", dst.0, expr_to_string(value));
        }
    }
}

impl Kernel {
    /// Renders the kernel as pseudo-CUDA source.
    pub fn to_pseudo_code(&self) -> String {
        let mut out = String::new();
        let bufs: Vec<String> = (0..self.num_bufs)
            .map(|b| format!("uint* buf{b}"))
            .collect();
        let scalars: Vec<String> = (0..self.num_scalars)
            .map(|p| format!("uint param{p}"))
            .collect();
        let _ = writeln!(
            out,
            "__global__ void {}({}) {{",
            self.name,
            bufs.into_iter()
                .chain(scalars)
                .collect::<Vec<_>>()
                .join(", ")
        );
        if self.shared_words > 0 {
            let _ = writeln!(out, "    __shared__ uint shared[{}];", self.shared_words);
        }
        for s in &self.body {
            stmt_to_lines(s, 1, &mut out);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::KernelBuilder;
    use crate::ir::expr::Reg;

    #[test]
    fn renders_expressions() {
        let e = Expr::imm(2).add(Expr::Reg(Reg(3))).min(Expr::Param(0));
        assert_eq!(expr_to_string(&e), "min((2 + r3), param0)");
        assert_eq!(expr_to_string(&Expr::imm(u32::MAX)), "INF");
        assert_eq!(
            expr_to_string(&Expr::imm(1).select(2u32, 3u32)),
            "(1 ? 2 : 3)"
        );
        assert_eq!(
            expr_to_string(&Expr::Reg(Reg(0)).u2f().fmul(Expr::Reg(Reg(1)))),
            "((float)r0 *f r1)"
        );
    }

    #[test]
    fn renders_a_full_kernel() {
        let mut k = KernelBuilder::new("demo");
        let buf = k.buf_param();
        let n = k.scalar_param();
        let tid = k.global_thread_id();
        k.if_(tid.clone().ge(n), |k| k.ret());
        let v = k.load(buf, tid.clone());
        k.while_(v.clone().gt(0u32), |k| {
            k.atomic_add(buf, 0u32, 1u32);
            k.ret();
        });
        k.sync_threads();
        let kernel = k.build().unwrap();
        let src = kernel.to_pseudo_code();
        assert!(
            src.contains("__global__ void demo(uint* buf0, uint param0)"),
            "{src}"
        );
        assert!(src.contains("if ((tid >= param0)) {"), "{src}");
        assert!(src.contains("return;"), "{src}");
        assert!(src.contains("= buf0[tid];"), "{src}");
        assert!(src.contains("atomicAdd(&buf0[0], 1);"), "{src}");
        assert!(src.contains("__syncthreads();"), "{src}");
    }

    #[test]
    fn renders_shared_and_barriers() {
        let mut k = KernelBuilder::new("sh");
        k.shared_alloc(8);
        let t = k.thread_idx();
        k.shared_store(t.clone(), 1u32);
        let m = k.block_reduce_min(t.clone());
        let _ = k.let_(m);
        let kernel = k.build().unwrap();
        let src = kernel.to_pseudo_code();
        assert!(src.contains("__shared__ uint shared[8];"), "{src}");
        assert!(src.contains("blockReduceMin(threadIdx)"), "{src}");
    }
}
