//! Host-side kernel construction and validation.
//!
//! [`KernelBuilder`] mirrors how a CUDA C kernel reads: parameters first,
//! then straight-line statements with closures for control-flow bodies.
//! Register allocation is automatic; `build()` validates the result.

use super::expr::{BufSlot, Expr, Reg, Special};
use super::stmt::{AtomicOp, BarrierOp, Stmt};
use crate::error::SimError;
use crate::exec::bytecode::{compile, Bytecode};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// A validated, immutable kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name (appears in error messages and launch reports).
    pub name: String,
    /// Top-level statement list.
    pub body: Vec<Stmt>,
    /// Number of virtual registers per lane.
    pub num_regs: u16,
    /// Number of buffer parameters expected at launch.
    pub num_bufs: u8,
    /// Number of scalar parameters expected at launch.
    pub num_scalars: u8,
    /// Shared memory words allocated per block.
    pub shared_words: u32,
    /// Memoized bytecode, compiled on first launch. Cloning a kernel
    /// shares the compiled form (behind an `Arc`); equality ignores it.
    pub(crate) compiled: OnceLock<Arc<Bytecode>>,
}

// `compiled` is a pure cache of `body`: two kernels are equal iff their
// IR is, regardless of whether either has been compiled yet.
impl PartialEq for Kernel {
    fn eq(&self, other: &Kernel) -> bool {
        self.name == other.name
            && self.body == other.body
            && self.num_regs == other.num_regs
            && self.num_bufs == other.num_bufs
            && self.num_scalars == other.num_scalars
            && self.shared_words == other.shared_words
    }
}

impl Kernel {
    /// The kernel's bytecode, compiled on first use and memoized.
    pub(crate) fn bytecode(&self) -> &Bytecode {
        self.compiled.get_or_init(|| Arc::new(compile(self)))
    }

    /// Checks the structural IR rules:
    /// * every register / buffer slot / scalar slot is within the declared
    ///   counts;
    /// * [`Stmt::Barrier`] appears only at the top level (the interpreter
    ///   phase-splits on it).
    pub fn validate(&self) -> Result<(), SimError> {
        let mut max_reg: Option<u16> = None;
        let mut max_buf: Option<u8> = None;
        let mut max_param: Option<u8> = None;
        for s in &self.body {
            max_reg = max_reg.max(s.max_reg());
            max_buf = max_buf.max(s.max_buf());
            max_param = max_param.max(s.max_param());
        }
        // Barrier intrinsics must sit at the top level so the interpreter
        // can phase-split on them.
        for s in &self.body {
            if !matches!(s, Stmt::Barrier { .. }) {
                let mut nested_barrier = false;
                s.visit(&mut |inner| {
                    if !std::ptr::eq(inner, s) && matches!(inner, Stmt::Barrier { .. }) {
                        nested_barrier = true;
                    }
                });
                if nested_barrier {
                    return Err(SimError::InvalidKernel {
                        detail: format!(
                            "kernel '{}': block-wide Barrier intrinsics must appear at the top level",
                            self.name
                        ),
                    });
                }
            }
        }
        if let Some(r) = max_reg {
            if r >= self.num_regs {
                return Err(SimError::InvalidKernel {
                    detail: format!(
                        "kernel '{}': register r{} used but only {} declared",
                        self.name, r, self.num_regs
                    ),
                });
            }
        }
        if let Some(b) = max_buf {
            if b >= self.num_bufs {
                return Err(SimError::InvalidKernel {
                    detail: format!(
                        "kernel '{}': buffer slot {} used but only {} declared",
                        self.name, b, self.num_bufs
                    ),
                });
            }
        }
        if let Some(p) = max_param {
            if p >= self.num_scalars {
                return Err(SimError::InvalidKernel {
                    detail: format!(
                        "kernel '{}': scalar slot {} used but only {} declared",
                        self.name, p, self.num_scalars
                    ),
                });
            }
        }
        Ok(())
    }

    /// Splits the top-level body into phases separated by barrier
    /// intrinsics: the interpreter runs each segment for *all* warps of a
    /// block, applies the collective, and proceeds — giving the intrinsic
    /// its block-wide semantics.
    pub fn phases(&self) -> Vec<(&[Stmt], Option<&Stmt>)> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for (i, s) in self.body.iter().enumerate() {
            if matches!(s, Stmt::Barrier { .. }) {
                out.push((&self.body[start..i], Some(s)));
                start = i + 1;
            }
        }
        out.push((&self.body[start..], None));
        out
    }
}

/// Ergonomic kernel constructor. See the crate-level example.
pub struct KernelBuilder {
    name: String,
    frames: Vec<Vec<Stmt>>,
    next_reg: u16,
    next_buf: u8,
    next_scalar: u8,
    shared_words: u32,
    error: Option<String>,
}

impl KernelBuilder {
    /// Starts a kernel named `name`.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            frames: vec![Vec::new()],
            next_reg: 0,
            next_buf: 0,
            next_scalar: 0,
            shared_words: 0,
            error: None,
        }
    }

    /// Declares the next buffer parameter (order = launch argument order).
    pub fn buf_param(&mut self) -> BufSlot {
        let s = BufSlot(self.next_buf);
        self.next_buf += 1;
        s
    }

    /// Declares the next uniform scalar parameter.
    pub fn scalar_param(&mut self) -> Expr {
        let e = Expr::Param(self.next_scalar);
        self.next_scalar += 1;
        e
    }

    /// Reserves `words` of per-block shared memory; returns the base word
    /// index of the reservation.
    pub fn shared_alloc(&mut self, words: u32) -> u32 {
        let base = self.shared_words;
        self.shared_words += words;
        base
    }

    /// `blockIdx * blockDim + threadIdx`.
    pub fn global_thread_id(&self) -> Expr {
        Expr::Special(Special::GlobalThreadId)
    }

    /// `threadIdx`.
    pub fn thread_idx(&self) -> Expr {
        Expr::Special(Special::ThreadIdx)
    }

    /// `blockIdx`.
    pub fn block_idx(&self) -> Expr {
        Expr::Special(Special::BlockIdx)
    }

    /// `blockDim`.
    pub fn block_dim(&self) -> Expr {
        Expr::Special(Special::BlockDim)
    }

    /// `gridDim`.
    pub fn grid_dim(&self) -> Expr {
        Expr::Special(Special::GridDim)
    }

    /// Lane index within the warp.
    pub fn lane_id(&self) -> Expr {
        Expr::Special(Special::LaneId)
    }

    /// Allocates a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, s: Stmt) {
        self.frames
            .last_mut()
            .expect("frame stack never empty")
            .push(s);
    }

    /// Emits `dst = expr`.
    pub fn assign(&mut self, dst: Reg, e: impl Into<Expr>) {
        self.emit(Stmt::Assign(dst, e.into()));
    }

    /// Evaluates `e` into a fresh register and returns it.
    pub fn let_(&mut self, e: impl Into<Expr>) -> Reg {
        let r = self.reg();
        self.assign(r, e);
        r
    }

    /// Emits a global load; returns the destination register as an
    /// expression.
    pub fn load(&mut self, buf: BufSlot, index: impl Into<Expr>) -> Expr {
        let dst = self.reg();
        self.emit(Stmt::Load {
            dst,
            buf,
            index: index.into(),
        });
        Expr::Reg(dst)
    }

    /// Emits a global store.
    pub fn store(&mut self, buf: BufSlot, index: impl Into<Expr>, value: impl Into<Expr>) {
        self.emit(Stmt::Store {
            buf,
            index: index.into(),
            value: value.into(),
        });
    }

    fn atomic(
        &mut self,
        op: AtomicOp,
        buf: BufSlot,
        index: Expr,
        value: Expr,
        compare: Option<Expr>,
    ) -> Expr {
        let old = self.reg();
        self.emit(Stmt::Atomic {
            op,
            buf,
            index,
            value,
            compare,
            old: Some(old),
        });
        Expr::Reg(old)
    }

    /// `old = atomicAdd(&buf[index], value)`.
    pub fn atomic_add(
        &mut self,
        buf: BufSlot,
        index: impl Into<Expr>,
        value: impl Into<Expr>,
    ) -> Expr {
        self.atomic(AtomicOp::Add, buf, index.into(), value.into(), None)
    }

    /// `old = atomicMin(&buf[index], value)`.
    pub fn atomic_min(
        &mut self,
        buf: BufSlot,
        index: impl Into<Expr>,
        value: impl Into<Expr>,
    ) -> Expr {
        self.atomic(AtomicOp::Min, buf, index.into(), value.into(), None)
    }

    /// `old = atomicMax(&buf[index], value)`.
    pub fn atomic_max(
        &mut self,
        buf: BufSlot,
        index: impl Into<Expr>,
        value: impl Into<Expr>,
    ) -> Expr {
        self.atomic(AtomicOp::Max, buf, index.into(), value.into(), None)
    }

    /// `old = atomicExch(&buf[index], value)`.
    pub fn atomic_exch(
        &mut self,
        buf: BufSlot,
        index: impl Into<Expr>,
        value: impl Into<Expr>,
    ) -> Expr {
        self.atomic(AtomicOp::Exch, buf, index.into(), value.into(), None)
    }

    /// `old = atomicAdd((float*)&buf[index], value)` on bit-reinterpreted
    /// f32 words.
    pub fn atomic_fadd(
        &mut self,
        buf: BufSlot,
        index: impl Into<Expr>,
        value: impl Into<Expr>,
    ) -> Expr {
        self.atomic(AtomicOp::FAdd, buf, index.into(), value.into(), None)
    }

    /// `old = atomicCAS(&buf[index], compare, value)`.
    pub fn atomic_cas(
        &mut self,
        buf: BufSlot,
        index: impl Into<Expr>,
        compare: impl Into<Expr>,
        value: impl Into<Expr>,
    ) -> Expr {
        self.atomic(
            AtomicOp::Cas,
            buf,
            index.into(),
            value.into(),
            Some(compare.into()),
        )
    }

    /// Shared memory load.
    pub fn shared_load(&mut self, index: impl Into<Expr>) -> Expr {
        let dst = self.reg();
        self.emit(Stmt::SharedLoad {
            dst,
            index: index.into(),
        });
        Expr::Reg(dst)
    }

    /// Shared memory store.
    pub fn shared_store(&mut self, index: impl Into<Expr>, value: impl Into<Expr>) {
        self.emit(Stmt::SharedStore {
            index: index.into(),
            value: value.into(),
        });
    }

    /// One-sided branch.
    pub fn if_(&mut self, cond: impl Into<Expr>, then_: impl FnOnce(&mut Self)) {
        self.frames.push(Vec::new());
        then_(self);
        let body = self.frames.pop().expect("matching frame");
        self.emit(Stmt::If {
            cond: cond.into(),
            then_: body,
            else_: Vec::new(),
        });
    }

    /// Two-sided branch.
    pub fn if_else(
        &mut self,
        cond: impl Into<Expr>,
        then_: impl FnOnce(&mut Self),
        else_: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        then_(self);
        let t = self.frames.pop().expect("matching frame");
        self.frames.push(Vec::new());
        else_(self);
        let e = self.frames.pop().expect("matching frame");
        self.emit(Stmt::If {
            cond: cond.into(),
            then_: t,
            else_: e,
        });
    }

    /// Loop while `cond` holds per lane.
    pub fn while_(&mut self, cond: impl Into<Expr>, body: impl FnOnce(&mut Self)) {
        self.frames.push(Vec::new());
        body(self);
        let b = self.frames.pop().expect("matching frame");
        self.emit(Stmt::While {
            cond: cond.into(),
            body: b,
        });
    }

    /// Early exit for the executing lanes.
    pub fn ret(&mut self) {
        self.emit(Stmt::Return);
    }

    /// `__syncthreads()` cost marker.
    pub fn sync_threads(&mut self) {
        self.emit(Stmt::SyncThreads);
    }

    fn barrier(&mut self, op: BarrierOp, value: Expr) -> Expr {
        if self.frames.len() != 1 {
            self.error = Some(format!(
                "kernel '{}': barrier intrinsic {:?} inside control flow",
                self.name, op
            ));
        }
        let dst = self.reg();
        self.emit(Stmt::Barrier { op, value, dst });
        Expr::Reg(dst)
    }

    /// Block-wide minimum of `value` (every lane receives the result).
    pub fn block_reduce_min(&mut self, value: impl Into<Expr>) -> Expr {
        self.barrier(BarrierOp::ReduceMin, value.into())
    }

    /// Block-wide sum of `value`.
    pub fn block_reduce_add(&mut self, value: impl Into<Expr>) -> Expr {
        self.barrier(BarrierOp::ReduceAdd, value.into())
    }

    /// Block-wide exclusive prefix sum of `value` in lane order.
    pub fn block_scan_excl_add(&mut self, value: impl Into<Expr>) -> Expr {
        self.barrier(BarrierOp::ScanExclAdd, value.into())
    }

    /// Finalizes and validates the kernel.
    pub fn build(mut self) -> Result<Kernel, SimError> {
        if let Some(e) = self.error.take() {
            return Err(SimError::InvalidKernel { detail: e });
        }
        assert_eq!(self.frames.len(), 1, "unbalanced control-flow frames");
        let k = Kernel {
            name: self.name,
            body: self.frames.pop().unwrap(),
            num_regs: self.next_reg,
            num_bufs: self.next_buf,
            num_scalars: self.next_scalar,
            shared_words: self.shared_words,
            compiled: OnceLock::new(),
        };
        k.validate()?;
        Ok(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_kernel() {
        let mut k = KernelBuilder::new("t");
        let buf = k.buf_param();
        let n = k.scalar_param();
        let tid = k.global_thread_id();
        k.if_(tid.clone().lt(n), |k| {
            let v = k.load(buf, tid.clone());
            k.store(buf, tid.clone(), v.add(1u32));
        });
        let kernel = k.build().unwrap();
        assert_eq!(kernel.num_bufs, 1);
        assert_eq!(kernel.num_scalars, 1);
        assert_eq!(kernel.body.len(), 1);
        assert!(kernel.num_regs >= 1);
    }

    #[test]
    fn rejects_barrier_inside_control_flow() {
        let mut k = KernelBuilder::new("bad");
        k.if_(Expr::imm(1), |k| {
            k.block_reduce_min(Expr::imm(0));
        });
        assert!(matches!(k.build(), Err(SimError::InvalidKernel { .. })));
    }

    #[test]
    fn top_level_barrier_is_fine_and_phase_splits() {
        let mut k = KernelBuilder::new("ok");
        let r = k.let_(Expr::imm(5));
        let m = k.block_reduce_min(r);
        let _ = k.let_(m);
        let kernel = k.build().unwrap();
        let phases = kernel.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0.len(), 1);
        assert!(phases[0].1.is_some());
        assert_eq!(phases[1].0.len(), 1);
        assert!(phases[1].1.is_none());
    }

    #[test]
    fn validate_catches_out_of_range_slots() {
        let k = Kernel {
            name: "handmade".into(),
            body: vec![Stmt::Load {
                dst: Reg(0),
                buf: BufSlot(2),
                index: Expr::imm(0),
            }],
            num_regs: 1,
            num_bufs: 1,
            num_scalars: 0,
            shared_words: 0,
            compiled: OnceLock::new(),
        };
        assert!(matches!(k.validate(), Err(SimError::InvalidKernel { .. })));

        let k = Kernel {
            name: "handmade2".into(),
            body: vec![Stmt::Assign(Reg(5), Expr::imm(0))],
            num_regs: 1,
            num_bufs: 0,
            num_scalars: 0,
            shared_words: 0,
            compiled: OnceLock::new(),
        };
        assert!(matches!(k.validate(), Err(SimError::InvalidKernel { .. })));

        let k = Kernel {
            name: "handmade3".into(),
            body: vec![Stmt::Assign(Reg(0), Expr::Param(3))],
            num_regs: 1,
            num_bufs: 0,
            num_scalars: 1,
            shared_words: 0,
            compiled: OnceLock::new(),
        };
        assert!(matches!(k.validate(), Err(SimError::InvalidKernel { .. })));
    }

    #[test]
    fn validate_rejects_hand_nested_barrier() {
        let k = Kernel {
            name: "nested".into(),
            body: vec![Stmt::If {
                cond: Expr::imm(1),
                then_: vec![Stmt::Barrier {
                    op: BarrierOp::ReduceAdd,
                    value: Expr::imm(0),
                    dst: Reg(0),
                }],
                else_: vec![],
            }],
            num_regs: 1,
            num_bufs: 0,
            num_scalars: 0,
            shared_words: 0,
            compiled: OnceLock::new(),
        };
        assert!(matches!(k.validate(), Err(SimError::InvalidKernel { .. })));
    }

    #[test]
    fn shared_alloc_accumulates() {
        let mut k = KernelBuilder::new("sh");
        assert_eq!(k.shared_alloc(16), 0);
        assert_eq!(k.shared_alloc(8), 16);
        let kernel = k.build().unwrap();
        assert_eq!(kernel.shared_words, 24);
    }
}
