//! Kernel intermediate representation.
//!
//! Kernels are structured programs over 32-bit virtual registers:
//! expressions ([`expr::Expr`]) are pure per-lane computations; statements
//! ([`stmt::Stmt`]) perform memory traffic, control flow, and block-wide
//! intrinsics. [`builder::KernelBuilder`] offers an ergonomic host-side
//! construction API and [`builder::Kernel::validate`] enforces the IR's
//! structural rules (register/parameter arity, top-level-only barriers).
//!
//! Keeping control flow *structured* (if/while trees rather than jumps) is
//! what makes SIMT reconvergence trivial for the interpreter: after a
//! divergent `if`, the parent mask is restored — exactly the behaviour of
//! the hardware's reconvergence stack at the immediate post-dominator.

pub mod builder;
pub mod display;
pub mod expr;
pub mod stmt;

pub use builder::{Kernel, KernelBuilder};
pub use expr::{BufSlot, Expr, Reg, Special};
pub use stmt::{AtomicOp, BarrierOp, Stmt};
