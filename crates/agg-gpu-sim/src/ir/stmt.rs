//! Statements: memory traffic, control flow, atomics, and block-wide
//! intrinsics.

use super::expr::{BufSlot, Expr, Reg};
use serde::{Deserialize, Serialize};

/// Read-modify-write atomic operations on global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtomicOp {
    /// `old = *p; *p = old + v` (wrapping).
    Add,
    /// `old = *p; *p = min(old, v)` (unsigned).
    Min,
    /// `old = *p; *p = max(old, v)` (unsigned).
    Max,
    /// `old = *p; *p = v`.
    Exch,
    /// `old = *p; if old == cmp { *p = v }`.
    Cas,
    /// `old = *p; *p = f32(old) + f32(v)` — IEEE float accumulation on
    /// bit-reinterpreted words (Fermi's native `atomicAdd(float*)`).
    FAdd,
}

/// Block-wide collective intrinsics. These stand in for the
/// `__syncthreads()`-based shared-memory protocols real kernels write by
/// hand (tree reductions, prefix scans); the interpreter executes them as
/// barriers with an analytic log-depth cost (see `DESIGN.md` §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BarrierOp {
    /// Every lane in the block receives the minimum of `value` over all
    /// lanes in the block (inactive/returned lanes contribute `u32::MAX`).
    ReduceMin,
    /// Every lane receives the sum over all lanes (inactive lanes
    /// contribute 0, wrapping).
    ReduceAdd,
    /// Every lane receives the *exclusive* prefix sum of `value` in lane
    /// order across the whole block (inactive lanes contribute 0).
    ScanExclAdd,
}

/// A kernel statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `dst = expr`.
    Assign(Reg, Expr),
    /// Global memory read: `dst = buf[index]` (word indices).
    Load {
        /// Destination register.
        dst: Reg,
        /// Buffer parameter slot.
        buf: BufSlot,
        /// Word index expression.
        index: Expr,
    },
    /// Global memory write: `buf[index] = value`.
    Store {
        /// Buffer parameter slot.
        buf: BufSlot,
        /// Word index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Atomic read-modify-write on global memory. The pre-image is written
    /// to `old` when requested.
    Atomic {
        /// The operation.
        op: AtomicOp,
        /// Buffer parameter slot.
        buf: BufSlot,
        /// Word index expression.
        index: Expr,
        /// Operand value.
        value: Expr,
        /// CAS comparand (only for [`AtomicOp::Cas`]).
        compare: Option<Expr>,
        /// Register receiving the old value, if any.
        old: Option<Reg>,
    },
    /// Shared memory read: `dst = shared[index]`.
    SharedLoad {
        /// Destination register.
        dst: Reg,
        /// Word index into the block's shared allocation.
        index: Expr,
    },
    /// Shared memory write: `shared[index] = value`.
    SharedStore {
        /// Word index into the block's shared allocation.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Two-sided branch. A warp whose active lanes disagree on `cond`
    /// executes both sides under complementary masks.
    If {
        /// Branch predicate (nonzero = then).
        cond: Expr,
        /// Then-side body.
        then_: Vec<Stmt>,
        /// Else-side body (may be empty).
        else_: Vec<Stmt>,
    },
    /// Loop while `cond` is nonzero. A lane leaves the loop when its own
    /// condition turns zero; the warp keeps issuing until all lanes left.
    While {
        /// Loop predicate.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Deactivate the executing lanes for the rest of the kernel (early
    /// exit, like `return` in CUDA C).
    Return,
    /// Block-wide barrier (cost marker; ordering within a block is already
    /// sequential in the interpreter).
    SyncThreads,
    /// Block-wide collective: result lands in `dst` on every lane.
    /// Top-level only (validated).
    Barrier {
        /// The collective operation.
        op: BarrierOp,
        /// Per-lane contribution.
        value: Expr,
        /// Destination register.
        dst: Reg,
    },
}

impl Stmt {
    /// Walks the statement tree, calling `f` on every statement.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If { then_, else_, .. } => {
                for s in then_ {
                    s.visit(f);
                }
                for s in else_ {
                    s.visit(f);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Largest register index mentioned (read or written) by this statement
    /// subtree.
    pub fn max_reg(&self) -> Option<u16> {
        let mut m: Option<u16> = None;
        self.visit(&mut |s| {
            let local = match s {
                Stmt::Assign(Reg(r), e) => Some(*r).max(e.max_reg()),
                Stmt::Load {
                    dst: Reg(r), index, ..
                } => Some(*r).max(index.max_reg()),
                Stmt::Store { index, value, .. } => index.max_reg().max(value.max_reg()),
                Stmt::Atomic {
                    index,
                    value,
                    compare,
                    old,
                    ..
                } => index
                    .max_reg()
                    .max(value.max_reg())
                    .max(compare.as_ref().and_then(|c| c.max_reg()))
                    .max(old.map(|Reg(r)| r)),
                Stmt::SharedLoad { dst: Reg(r), index } => Some(*r).max(index.max_reg()),
                Stmt::SharedStore { index, value } => index.max_reg().max(value.max_reg()),
                Stmt::If { cond, .. } => cond.max_reg(),
                Stmt::While { cond, .. } => cond.max_reg(),
                Stmt::Return | Stmt::SyncThreads => None,
                Stmt::Barrier {
                    value, dst: Reg(r), ..
                } => Some(*r).max(value.max_reg()),
            };
            m = m.max(local);
        });
        m
    }

    /// Largest scalar-parameter slot mentioned by this statement subtree.
    pub fn max_param(&self) -> Option<u8> {
        let mut m: Option<u8> = None;
        self.visit(&mut |s| {
            let local = match s {
                Stmt::Assign(_, e) => e.max_param(),
                Stmt::Load { index, .. } => index.max_param(),
                Stmt::Store { index, value, .. } => index.max_param().max(value.max_param()),
                Stmt::Atomic {
                    index,
                    value,
                    compare,
                    ..
                } => index
                    .max_param()
                    .max(value.max_param())
                    .max(compare.as_ref().and_then(|c| c.max_param())),
                Stmt::SharedLoad { index, .. } => index.max_param(),
                Stmt::SharedStore { index, value } => index.max_param().max(value.max_param()),
                Stmt::If { cond, .. } => cond.max_param(),
                Stmt::While { cond, .. } => cond.max_param(),
                Stmt::Return | Stmt::SyncThreads => None,
                Stmt::Barrier { value, .. } => value.max_param(),
            };
            m = m.max(local);
        });
        m
    }

    /// Largest buffer slot mentioned by this statement subtree.
    pub fn max_buf(&self) -> Option<u8> {
        let mut m: Option<u8> = None;
        self.visit(&mut |s| {
            let local = match s {
                Stmt::Load {
                    buf: BufSlot(b), ..
                }
                | Stmt::Store {
                    buf: BufSlot(b), ..
                }
                | Stmt::Atomic {
                    buf: BufSlot(b), ..
                } => Some(*b),
                _ => None,
            };
            m = m.max(local);
        });
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_reaches_nested_statements() {
        let s = Stmt::If {
            cond: Expr::imm(1),
            then_: vec![Stmt::While {
                cond: Expr::imm(0),
                body: vec![Stmt::Return],
            }],
            else_: vec![Stmt::SyncThreads],
        };
        let mut n = 0;
        s.visit(&mut |_| n += 1);
        assert_eq!(n, 4); // if, while, return, sync
    }

    #[test]
    fn max_reg_sees_destinations_and_sources() {
        let s = Stmt::Load {
            dst: Reg(7),
            buf: BufSlot(0),
            index: Expr::Reg(Reg(3)),
        };
        assert_eq!(s.max_reg(), Some(7));
        let s = Stmt::Store {
            buf: BufSlot(1),
            index: Expr::Reg(Reg(9)),
            value: Expr::imm(0),
        };
        assert_eq!(s.max_reg(), Some(9));
        let s = Stmt::Atomic {
            op: AtomicOp::Cas,
            buf: BufSlot(0),
            index: Expr::imm(0),
            value: Expr::imm(1),
            compare: Some(Expr::Reg(Reg(12))),
            old: Some(Reg(4)),
        };
        assert_eq!(s.max_reg(), Some(12));
    }

    #[test]
    fn max_buf_and_param_traverse_nesting() {
        let s = Stmt::If {
            cond: Expr::Param(2),
            then_: vec![Stmt::Load {
                dst: Reg(0),
                buf: BufSlot(5),
                index: Expr::Param(6),
            }],
            else_: vec![],
        };
        assert_eq!(s.max_buf(), Some(5));
        assert_eq!(s.max_param(), Some(6));
    }
}
