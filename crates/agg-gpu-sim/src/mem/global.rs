//! Global (device) memory.
//!
//! Buffers are flat arrays of `AtomicU32`. Plain loads/stores use relaxed
//! atomic accesses so that parallel block execution (scoped threads) is data-race
//! free by construction — matching the memory model a real GPU gives
//! concurrent blocks (no ordering guarantees, word-level atomicity).

use crate::error::SimError;
use std::sync::atomic::{AtomicU32, Ordering};

/// Handle to a device buffer (word-addressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr(pub(crate) u32);

impl DevicePtr {
    /// The raw buffer id (useful for debugging output).
    pub fn id(&self) -> u32 {
        self.0
    }
}

/// One allocation.
pub(crate) struct Buffer {
    pub(crate) label: String,
    pub(crate) data: Vec<AtomicU32>,
}

/// All allocations of a device.
#[derive(Default)]
pub struct GlobalMemory {
    buffers: Vec<Buffer>,
}

impl GlobalMemory {
    /// Creates empty device memory.
    pub fn new() -> GlobalMemory {
        GlobalMemory {
            buffers: Vec::new(),
        }
    }

    /// Allocates `len` zeroed words.
    pub fn alloc(&mut self, label: impl Into<String>, len: usize) -> DevicePtr {
        let data = (0..len).map(|_| AtomicU32::new(0)).collect();
        self.buffers.push(Buffer {
            label: label.into(),
            data,
        });
        DevicePtr((self.buffers.len() - 1) as u32)
    }

    /// Allocates and fills from a host slice.
    pub fn alloc_from_slice(&mut self, label: impl Into<String>, src: &[u32]) -> DevicePtr {
        let data = src.iter().map(|&v| AtomicU32::new(v)).collect();
        self.buffers.push(Buffer {
            label: label.into(),
            data,
        });
        DevicePtr((self.buffers.len() - 1) as u32)
    }

    /// Allocates `len` words all set to `fill`.
    pub fn alloc_filled(&mut self, label: impl Into<String>, len: usize, fill: u32) -> DevicePtr {
        let data = (0..len).map(|_| AtomicU32::new(fill)).collect();
        self.buffers.push(Buffer {
            label: label.into(),
            data,
        });
        DevicePtr((self.buffers.len() - 1) as u32)
    }

    pub(crate) fn buffer(&self, ptr: DevicePtr) -> Result<&Buffer, SimError> {
        self.buffers
            .get(ptr.0 as usize)
            .ok_or(SimError::BadPointer {
                detail: format!("buffer id {} was never allocated", ptr.0),
            })
    }

    /// Buffer length in words.
    pub fn len(&self, ptr: DevicePtr) -> Result<usize, SimError> {
        Ok(self.buffer(ptr)?.data.len())
    }

    /// True if the buffer has zero words.
    pub fn is_empty(&self, ptr: DevicePtr) -> Result<bool, SimError> {
        Ok(self.len(ptr)? == 0)
    }

    /// Buffer label.
    pub fn label(&self, ptr: DevicePtr) -> Result<&str, SimError> {
        Ok(&self.buffer(ptr)?.label)
    }

    /// Copies the buffer to the host.
    pub fn read(&self, ptr: DevicePtr) -> Result<Vec<u32>, SimError> {
        Ok(self
            .buffer(ptr)?
            .data
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect())
    }

    /// Copies the first `words` words of the buffer to the host (for
    /// draining variable-length staging buffers without touching the
    /// unused tail).
    pub fn read_prefix(&self, ptr: DevicePtr, words: usize) -> Result<Vec<u32>, SimError> {
        let b = self.buffer(ptr)?;
        if words > b.data.len() {
            return Err(SimError::ArgumentMismatch {
                detail: format!(
                    "prefix read of {} words from buffer '{}' of {} words",
                    words,
                    b.label,
                    b.data.len()
                ),
            });
        }
        Ok(b.data[..words]
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect())
    }

    /// Reads one word.
    pub fn read_word(&self, ptr: DevicePtr, index: usize) -> Result<u32, SimError> {
        let b = self.buffer(ptr)?;
        b.data
            .get(index)
            .map(|a| a.load(Ordering::Relaxed))
            .ok_or_else(|| SimError::OutOfBounds {
                kernel: "<host read>".into(),
                buffer: b.label.clone(),
                index: index as u64,
                len: b.data.len(),
            })
    }

    /// Overwrites the buffer from a host slice (must be the same length).
    pub fn write(&self, ptr: DevicePtr, src: &[u32]) -> Result<(), SimError> {
        let b = self.buffer(ptr)?;
        if src.len() != b.data.len() {
            return Err(SimError::ArgumentMismatch {
                detail: format!(
                    "write of {} words into buffer '{}' of {} words",
                    src.len(),
                    b.label,
                    b.data.len()
                ),
            });
        }
        for (dst, &v) in b.data.iter().zip(src) {
            dst.store(v, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Overwrites the first `src.len()` words of the buffer; the tail
    /// keeps its contents. Errors if the buffer is shorter than `src`.
    pub fn write_prefix(&self, ptr: DevicePtr, src: &[u32]) -> Result<(), SimError> {
        let b = self.buffer(ptr)?;
        if src.len() > b.data.len() {
            return Err(SimError::ArgumentMismatch {
                detail: format!(
                    "prefix write of {} words into buffer '{}' of {} words",
                    src.len(),
                    b.label,
                    b.data.len()
                ),
            });
        }
        for (dst, &v) in b.data.iter().zip(src) {
            dst.store(v, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Sets every word of the buffer to `fill` (device-side memset).
    pub fn fill(&self, ptr: DevicePtr, fill: u32) -> Result<(), SimError> {
        for w in &self.buffer(ptr)?.data {
            w.store(fill, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Writes one word.
    pub fn write_word(&self, ptr: DevicePtr, index: usize, value: u32) -> Result<(), SimError> {
        let b = self.buffer(ptr)?;
        let cell = b.data.get(index).ok_or_else(|| SimError::OutOfBounds {
            kernel: "<host write>".into(),
            buffer: b.label.clone(),
            index: index as u64,
            len: b.data.len(),
        })?;
        cell.store(value, Ordering::Relaxed);
        Ok(())
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.buffers.len()
    }

    /// Total allocated words across buffers.
    pub fn total_words(&self) -> usize {
        self.buffers.iter().map(|b| b.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_round_trip() {
        let mut m = GlobalMemory::new();
        let p = m.alloc_from_slice("x", &[1, 2, 3]);
        assert_eq!(m.read(p).unwrap(), vec![1, 2, 3]);
        m.write(p, &[4, 5, 6]).unwrap();
        assert_eq!(m.read(p).unwrap(), vec![4, 5, 6]);
        assert_eq!(m.len(p).unwrap(), 3);
        assert_eq!(m.label(p).unwrap(), "x");
    }

    #[test]
    fn alloc_zeroed_and_filled() {
        let mut m = GlobalMemory::new();
        let z = m.alloc("z", 4);
        assert_eq!(m.read(z).unwrap(), vec![0; 4]);
        let f = m.alloc_filled("f", 3, u32::MAX);
        assert_eq!(m.read(f).unwrap(), vec![u32::MAX; 3]);
        m.fill(z, 9).unwrap();
        assert_eq!(m.read(z).unwrap(), vec![9; 4]);
    }

    #[test]
    fn word_access_bounds_checked() {
        let mut m = GlobalMemory::new();
        let p = m.alloc("p", 2);
        m.write_word(p, 1, 42).unwrap();
        assert_eq!(m.read_word(p, 1).unwrap(), 42);
        assert!(m.read_word(p, 2).is_err());
        assert!(m.write_word(p, 9, 0).is_err());
    }

    #[test]
    fn write_length_mismatch_rejected() {
        let mut m = GlobalMemory::new();
        let p = m.alloc("p", 2);
        assert!(m.write(p, &[1, 2, 3]).is_err());
    }

    #[test]
    fn bad_pointer_detected() {
        let m = GlobalMemory::new();
        assert!(m.read(DevicePtr(5)).is_err());
    }

    #[test]
    fn accounting() {
        let mut m = GlobalMemory::new();
        m.alloc("a", 10);
        m.alloc("b", 6);
        assert_eq!(m.allocation_count(), 2);
        assert_eq!(m.total_words(), 16);
    }
}
