//! Opt-in per-word data-race detection.
//!
//! When the device runs at [`crate::SimFidelity::TimedWithRaces`], the
//! execution engine logs every global and shared memory access (word
//! index, kind, stored value, and a position in the happens-before
//! order) and the launch machinery classifies conflicting accesses
//! before returning the [`crate::LaunchReport`].
//!
//! # Happens-before model
//!
//! The simulator's scheduling is deterministic, but the *hardware* it
//! models gives far weaker guarantees; the detector reasons about the
//! hardware's order, not the interpreter's:
//!
//! * Accesses from **different blocks** are always concurrent (blocks may
//!   run in any order, on any SM).
//! * Within a block, warps are ordered only by barriers: each warp keeps
//!   an **epoch** counter that increments at every `sync_threads` and at
//!   every block-wide collective (reduce/scan). Accesses from different
//!   warps are concurrent iff they are in the same epoch.
//! * Within a warp, statements execute in program order, so two accesses
//!   are concurrent only when they come from different lanes of the *same
//!   dynamic instruction* (same per-warp sequence number) — e.g. two
//!   lanes of one store hitting one word.
//! * Kernel launches are synchronous in this model, so the log is per
//!   launch: the kernel boundary is a happens-before edge and nothing is
//!   carried across launches.
//!
//! # Classification
//!
//! Two concurrent accesses to a word race when at least one is a plain
//! (non-atomic) write. Races are split into *benign* classes — the ones
//! the paper's kernels rely on deliberately — and *harmful* ones:
//!
//! | class | accesses | verdict |
//! |---|---|---|
//! | `same-value-store` | concurrent plain stores, all of one value | benign |
//! | `read-vs-uniform-store` | plain read vs plain stores of one value | benign |
//! | `read-vs-atomic` | plain read vs atomic update | benign |
//! | `conflicting-stores` | concurrent plain stores of distinct values | harmful |
//! | `read-vs-store` | plain read vs stores of distinct values | harmful |
//! | `atomic-vs-store` | atomic update vs concurrent plain store | harmful |
//!
//! Atomic-vs-atomic is never a race. The benign classes are still
//! *races* — they are reported, with the classification explaining why
//! the kernel's result does not depend on their outcome: a load that
//! races with an `atomicMin` reads a stale-but-valid value (monotone
//! relaxation re-examines it next iteration), and stores of a single
//! value commute.

use crate::json::Json;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Buffer slot used to mark shared-memory accesses in the log.
pub(crate) const SHARED_SLOT: u16 = u16::MAX;

/// What a logged access did to its word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain (non-atomic) load.
    Read,
    /// Plain (non-atomic) store.
    Write,
    /// Atomic read-modify-write.
    Atomic,
}

/// One logged word access, with its position in the happens-before order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Buffer slot in the launch's argument list, or [`SHARED_SLOT`].
    pub(crate) buf: u16,
    /// Word index within the buffer (or shared memory).
    pub(crate) word: u32,
    /// Read, write, or atomic.
    pub(crate) kind: AccessKind,
    /// The stored value (writes only; 0 otherwise).
    pub(crate) value: u32,
    /// Block that issued the access.
    pub(crate) block: u32,
    /// Warp within the block.
    pub(crate) warp: u32,
    /// Barrier epoch of the warp at access time.
    pub(crate) epoch: u32,
    /// Per-warp dynamic statement number at access time.
    pub(crate) seq: u32,
}

/// Position of an access in the happens-before order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pos {
    block: u32,
    warp: u32,
    epoch: u32,
    seq: u32,
}

impl AccessRecord {
    fn pos(&self) -> Pos {
        Pos {
            block: self.block,
            warp: self.warp,
            epoch: self.epoch,
            seq: self.seq,
        }
    }
}

/// Why a detected race is (or is not) benign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RaceClass {
    /// Concurrent plain stores that all write the same value (the
    /// `workset_gen_bitmap` flag raise, ordered-BFS level stores).
    SameValueStore,
    /// Plain read concurrent with plain stores of a single value.
    ReadVsUniformStore,
    /// Plain read concurrent with an atomic update (the unordered
    /// relaxation pattern: `load(value)` racing `atomicMin(value)`).
    ReadVsAtomic,
    /// Concurrent plain stores of distinct values: the winner is
    /// schedule-dependent.
    ConflictingStores,
    /// Plain read concurrent with plain stores of distinct values.
    ReadVsStore,
    /// Atomic update concurrent with a plain store to the same word: the
    /// store can silently overwrite the atomic's result.
    AtomicVsStore,
}

impl RaceClass {
    /// True when the race can change results depending on scheduling.
    pub fn is_harmful(self) -> bool {
        matches!(
            self,
            RaceClass::ConflictingStores | RaceClass::ReadVsStore | RaceClass::AtomicVsStore
        )
    }

    /// Stable kebab-case name (used in JSON and messages).
    pub fn name(self) -> &'static str {
        match self {
            RaceClass::SameValueStore => "same-value-store",
            RaceClass::ReadVsUniformStore => "read-vs-uniform-store",
            RaceClass::ReadVsAtomic => "read-vs-atomic",
            RaceClass::ConflictingStores => "conflicting-stores",
            RaceClass::ReadVsStore => "read-vs-store",
            RaceClass::AtomicVsStore => "atomic-vs-store",
        }
    }
}

/// One detected race pattern: a (kernel, buffer, class) group covering
/// every word of that buffer where the pattern occurred.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceFinding {
    /// Kernel the race occurred in.
    pub kernel: String,
    /// Race classification.
    pub class: RaceClass,
    /// Label of the racing buffer (`"<shared>"` for shared memory).
    pub buffer: String,
    /// Lowest racing word index, as an exemplar for debugging.
    pub word: u32,
    /// Number of distinct words showing this pattern.
    pub words: u64,
}

impl RaceFinding {
    /// This finding as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kernel", self.kernel.as_str().into()),
            ("class", self.class.name().into()),
            ("harmful", Json::Bool(self.class.is_harmful())),
            ("buffer", self.buffer.as_str().into()),
            ("word", self.word.into()),
            ("words", self.words.into()),
        ])
    }
}

/// The race analysis of one kernel launch.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RaceReport {
    /// Kernel name.
    pub kernel: String,
    /// Benign findings (deliberate races the kernels rely on).
    pub benign: Vec<RaceFinding>,
    /// Harmful findings. Non-empty means the kernel's results may depend
    /// on hardware scheduling.
    pub harmful: Vec<RaceFinding>,
}

impl RaceReport {
    /// True when no harmful race was found (benign races are fine).
    pub fn is_clean(&self) -> bool {
        self.harmful.is_empty()
    }

    /// Total words with benign races.
    pub fn benign_words(&self) -> u64 {
        self.benign.iter().map(|f| f.words).sum()
    }

    /// Total words with harmful races.
    pub fn harmful_words(&self) -> u64 {
        self.harmful.iter().map(|f| f.words).sum()
    }

    /// This report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kernel", self.kernel.as_str().into()),
            ("clean", Json::Bool(self.is_clean())),
            ("benign", Json::arr(self.benign.iter().map(|f| f.to_json()))),
            (
                "harmful",
                Json::arr(self.harmful.iter().map(|f| f.to_json())),
            ),
        ])
    }
}

/// Race counters a [`crate::Device`] accumulates across launches (reset
/// together with the clock). Harmful findings keep a capped list of
/// exemplars for diagnostics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RaceSummary {
    /// Launches analyzed (only those run with detection enabled).
    pub launches_checked: u64,
    /// Total benign racing words across launches.
    pub benign_words: u64,
    /// Total harmful racing words across launches.
    pub harmful_words: u64,
    /// First few harmful findings, for diagnostics.
    pub harmful: Vec<RaceFinding>,
}

/// Cap on the harmful exemplars a [`RaceSummary`] retains.
const SUMMARY_EXEMPLAR_CAP: usize = 32;

impl RaceSummary {
    /// Folds one launch's race report into the summary.
    pub fn absorb_report(&mut self, r: &RaceReport) {
        self.launches_checked += 1;
        self.benign_words += r.benign_words();
        self.harmful_words += r.harmful_words();
        for f in &r.harmful {
            if self.harmful.len() >= SUMMARY_EXEMPLAR_CAP {
                break;
            }
            self.harmful.push(f.clone());
        }
    }

    /// True when no harmful race has been seen.
    pub fn is_clean(&self) -> bool {
        self.harmful_words == 0
    }

    /// This summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("launches_checked", self.launches_checked.into()),
            ("benign_words", self.benign_words.into()),
            ("harmful_words", self.harmful_words.into()),
            ("clean", Json::Bool(self.is_clean())),
            (
                "harmful",
                Json::arr(self.harmful.iter().map(|f| f.to_json())),
            ),
        ])
    }
}

/// Above this many candidate pairs the concurrency helpers switch from
/// the O(n·m) scan to a sort-and-merge pass. Typical per-word groups are
/// a handful of accesses, so the scan path dominates in practice; the
/// sorted path keeps hub words (thousands of writers) out of quadratic
/// territory.
const PAIRWISE_LIMIT: usize = 256;

/// Two single-block positions are concurrent iff they share a barrier
/// epoch and either cross warps or land on one dynamic instruction
/// (same per-warp seq — two lanes of one store).
fn concurrent_pair(a: &Pos, b: &Pos) -> bool {
    a.epoch == b.epoch && (a.warp != b.warp || a.seq == b.seq)
}

/// True when some pair of positions, one from each slice, is concurrent.
fn concurrent_between(a: &[Pos], b: &[Pos]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // Cross-block pair: unless both sides sit in one identical block,
    // some pair spans two blocks.
    let b0 = a[0].block;
    if a.iter().chain(b).any(|p| p.block != b0) {
        return true;
    }
    if a.len().saturating_mul(b.len()) <= PAIRWISE_LIMIT {
        return a
            .iter()
            .any(|pa| b.iter().any(|pb| concurrent_pair(pa, pb)));
    }
    // Large slices: merge both sides sorted by (epoch, warp, seq) and
    // scan each epoch run once. Within an epoch that both sides reach,
    // two distinct warps always yield a cross-slice concurrent pair;
    // with a single warp the only concurrency is a seq shared by both
    // sides (two lanes of one instruction split across the slices).
    let mut merged: Vec<(Pos, bool)> = Vec::with_capacity(a.len() + b.len());
    merged.extend(a.iter().map(|&p| (p, false)));
    merged.extend(b.iter().map(|&p| (p, true)));
    merged.sort_unstable_by_key(|&(p, _)| (p.epoch, p.warp, p.seq));
    let mut i = 0;
    while i < merged.len() {
        let mut j = i;
        while j < merged.len() && merged[j].0.epoch == merged[i].0.epoch {
            j += 1;
        }
        let run = &merged[i..j];
        if run.iter().any(|&(_, s)| !s) && run.iter().any(|&(_, s)| s) {
            if run.iter().any(|&(p, _)| p.warp != run[0].0.warp) {
                return true;
            }
            let mut k = 0;
            while k < run.len() {
                let mut m = k;
                let (mut in_a, mut in_b) = (false, false);
                while m < run.len() && run[m].0.seq == run[k].0.seq {
                    in_a |= !run[m].1;
                    in_b |= run[m].1;
                    m += 1;
                }
                if in_a && in_b {
                    return true;
                }
                k = m;
            }
        }
        i = j;
    }
    false
}

/// True when some pair of distinct positions within the slice is
/// concurrent (two lanes or two warps reaching the same word).
fn concurrent_within(keys: &[Pos]) -> bool {
    if keys.len() < 2 {
        return false;
    }
    let b0 = keys[0].block;
    if keys.iter().any(|p| p.block != b0) {
        return true;
    }
    if keys.len() * keys.len() <= PAIRWISE_LIMIT {
        return keys
            .iter()
            .enumerate()
            .any(|(i, pa)| keys[i + 1..].iter().any(|pb| concurrent_pair(pa, pb)));
    }
    // Large slice: after sorting by (epoch, warp, seq), any concurrent
    // pair implies a concurrent *adjacent* pair — two warps sharing an
    // epoch meet at a warp boundary, and a repeated seq within one warp
    // sorts adjacent.
    let mut sorted = keys.to_vec();
    sorted.sort_unstable_by_key(|p| (p.epoch, p.warp, p.seq));
    sorted.windows(2).any(|w| concurrent_pair(&w[0], &w[1]))
}

/// Location key of a record: shared memory is per block, so the block
/// index joins the key for shared accesses (0 for global: one address
/// space — the same shared word in two blocks is two distinct locations).
fn loc_key(r: &AccessRecord) -> (u16, u32, u32) {
    let block_key = if r.buf == SHARED_SLOT { r.block } else { 0 };
    (r.buf, block_key, r.word)
}

/// Classifies a launch's access log into a [`RaceReport`].
///
/// `labels` are the buffer labels of the launch's argument list, indexed
/// by buffer slot; shared memory reports as `"<shared>"`.
///
/// Sorts a copy of the log by location so every per-word group is a
/// contiguous slice, then classifies each group with reused scratch
/// buffers. (The previous per-record map insertions — three `Vec`s
/// allocated per touched word plus per-word value maps — dominated
/// `TimedWithRaces` wall time; the classification booleans are
/// order-independent, so the sorted scan reports bit-identical results.)
pub(crate) fn analyze(kernel: &str, labels: &[&str], records: &[AccessRecord]) -> RaceReport {
    let mut sorted: Vec<AccessRecord> = records.to_vec();
    sorted.sort_unstable_by_key(loc_key);

    // (class, buf) -> (exemplar word, distinct word count)
    let mut found: BTreeMap<(RaceClass, u16), (u32, u64)> = BTreeMap::new();
    let mut note = |class: RaceClass, buf: u16, word: u32| {
        let e = found.entry((class, buf)).or_insert((word, 0));
        e.0 = e.0.min(word);
        e.1 += 1;
    };

    // Per-group scratch, reused across words.
    let mut reads: Vec<Pos> = Vec::new();
    let mut atomics: Vec<Pos> = Vec::new();
    let mut writes: Vec<(u32, Pos)> = Vec::new();
    let mut write_pos: Vec<Pos> = Vec::new();
    let mut bounds: Vec<usize> = Vec::new();

    let mut i = 0;
    while i < sorted.len() {
        let key = loc_key(&sorted[i]);
        let (buf, _, word) = key;
        reads.clear();
        atomics.clear();
        writes.clear();
        let mut j = i;
        while j < sorted.len() && loc_key(&sorted[j]) == key {
            let r = &sorted[j];
            match r.kind {
                AccessKind::Read => reads.push(r.pos()),
                AccessKind::Atomic => atomics.push(r.pos()),
                AccessKind::Write => writes.push((r.value, r.pos())),
            }
            j += 1;
        }
        i = j;

        if !writes.is_empty() {
            // Group stores by value: sort, then record the start of each
            // equal-value run. `write_pos` holds the positions in the
            // same (value-grouped) order.
            writes.sort_unstable_by_key(|&(v, _)| v);
            write_pos.clear();
            write_pos.extend(writes.iter().map(|&(_, p)| p));
            bounds.clear();
            for (k, w) in writes.iter().enumerate() {
                if k == 0 || w.0 != writes[k - 1].0 {
                    bounds.push(k);
                }
            }
            bounds.push(writes.len());
            let num_values = bounds.len() - 1;
            let group = |g: usize| &write_pos[bounds[g]..bounds[g + 1]];

            // Store-vs-store.
            if num_values > 1
                && (0..num_values).any(|ga| {
                    (ga + 1..num_values).any(|gb| concurrent_between(group(ga), group(gb)))
                })
            {
                note(RaceClass::ConflictingStores, buf, word);
            }
            if (0..num_values).any(|g| concurrent_within(group(g))) {
                note(RaceClass::SameValueStore, buf, word);
            }

            // Read-vs-store.
            if concurrent_between(&reads, &write_pos) {
                if num_values == 1 {
                    note(RaceClass::ReadVsUniformStore, buf, word);
                } else {
                    note(RaceClass::ReadVsStore, buf, word);
                }
            }

            // Atomic-vs-store.
            if concurrent_between(&atomics, &write_pos) {
                note(RaceClass::AtomicVsStore, buf, word);
            }
        }

        // Read-vs-atomic (no plain write needed).
        if concurrent_between(&reads, &atomics) {
            note(RaceClass::ReadVsAtomic, buf, word);
        }
    }

    let mut report = RaceReport {
        kernel: kernel.to_string(),
        benign: Vec::new(),
        harmful: Vec::new(),
    };
    for ((class, buf), (word, count)) in found {
        let buffer = if buf == SHARED_SLOT {
            "<shared>".to_string()
        } else {
            labels
                .get(buf as usize)
                .map_or_else(|| format!("buf{buf}"), |l| l.to_string())
        };
        let finding = RaceFinding {
            kernel: kernel.to_string(),
            class,
            buffer,
            word,
            words: count,
        };
        if class.is_harmful() {
            report.harmful.push(finding);
        } else {
            report.benign.push(finding);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        buf: u16,
        word: u32,
        kind: AccessKind,
        value: u32,
        block: u32,
        warp: u32,
        epoch: u32,
        seq: u32,
    ) -> AccessRecord {
        AccessRecord {
            buf,
            word,
            kind,
            value,
            block,
            warp,
            epoch,
            seq,
        }
    }

    #[test]
    fn same_value_stores_are_benign() {
        // Two blocks both store 1 into flag[0] — the gen_bitmap pattern.
        let log = [
            rec(0, 0, AccessKind::Write, 1, 0, 0, 0, 3),
            rec(0, 0, AccessKind::Write, 1, 1, 0, 0, 3),
        ];
        let r = analyze("k", &["flag"], &log);
        assert!(r.is_clean());
        assert_eq!(r.benign.len(), 1);
        assert_eq!(r.benign[0].class, RaceClass::SameValueStore);
        assert_eq!(r.benign[0].buffer, "flag");
        assert_eq!(r.benign_words(), 1);
    }

    #[test]
    fn conflicting_stores_are_harmful() {
        let log = [
            rec(0, 5, AccessKind::Write, 1, 0, 0, 0, 3),
            rec(0, 5, AccessKind::Write, 2, 1, 0, 0, 3),
        ];
        let r = analyze("k", &["out"], &log);
        assert!(!r.is_clean());
        assert_eq!(r.harmful[0].class, RaceClass::ConflictingStores);
        assert_eq!(r.harmful[0].word, 5);
    }

    #[test]
    fn read_vs_atomic_is_benign() {
        // The unordered-relaxation pattern: load(value[m]) in one block,
        // atomicMin(value[m]) in another.
        let log = [
            rec(0, 7, AccessKind::Read, 0, 0, 0, 0, 2),
            rec(0, 7, AccessKind::Atomic, 3, 1, 0, 0, 4),
        ];
        let r = analyze("k", &["value"], &log);
        assert!(r.is_clean());
        assert_eq!(r.benign[0].class, RaceClass::ReadVsAtomic);
    }

    #[test]
    fn atomic_vs_store_is_harmful() {
        let log = [
            rec(0, 7, AccessKind::Atomic, 3, 0, 0, 0, 4),
            rec(0, 7, AccessKind::Write, 9, 1, 0, 0, 2),
        ];
        let r = analyze("k", &["value"], &log);
        assert_eq!(r.harmful[0].class, RaceClass::AtomicVsStore);
    }

    #[test]
    fn read_vs_uniform_store_is_benign_but_mixed_values_are_not() {
        let uniform = [
            rec(0, 1, AccessKind::Read, 0, 0, 0, 0, 2),
            rec(0, 1, AccessKind::Write, 4, 1, 0, 0, 3),
            rec(0, 1, AccessKind::Write, 4, 2, 0, 0, 3),
        ];
        let r = analyze("k", &["value"], &uniform);
        assert!(r.is_clean());
        assert!(r
            .benign
            .iter()
            .any(|f| f.class == RaceClass::ReadVsUniformStore));

        let mixed = [
            rec(0, 1, AccessKind::Read, 0, 0, 0, 0, 2),
            rec(0, 1, AccessKind::Write, 4, 1, 0, 0, 3),
            rec(0, 1, AccessKind::Write, 5, 2, 0, 0, 3),
        ];
        let r = analyze("k", &["value"], &mixed);
        assert!(r.harmful.iter().any(|f| f.class == RaceClass::ReadVsStore));
    }

    #[test]
    fn program_order_within_a_warp_is_not_a_race() {
        // Same warp, same epoch, different statements: ordered.
        let log = [
            rec(0, 0, AccessKind::Read, 0, 0, 0, 0, 1),
            rec(0, 0, AccessKind::Write, 9, 0, 0, 0, 2),
            rec(0, 0, AccessKind::Write, 7, 0, 0, 0, 3),
        ];
        let r = analyze("k", &["x"], &log);
        assert!(r.is_clean());
        assert!(r.benign.is_empty());
    }

    #[test]
    fn two_lanes_of_one_store_to_one_word_race() {
        // Same warp, same seq: two lanes of one instruction.
        let log = [
            rec(0, 0, AccessKind::Write, 1, 0, 0, 0, 2),
            rec(0, 0, AccessKind::Write, 2, 0, 0, 0, 2),
        ];
        let r = analyze("k", &["x"], &log);
        assert_eq!(r.harmful[0].class, RaceClass::ConflictingStores);
    }

    #[test]
    fn barrier_epoch_orders_warps_in_a_block() {
        // Producer stores in epoch 0, consumer reads in epoch 1 after a
        // sync: ordered. Same epoch would race.
        let ordered = [
            rec(0, 0, AccessKind::Write, 5, 0, 0, 0, 1),
            rec(0, 0, AccessKind::Read, 0, 0, 1, 1, 9),
        ];
        assert!(analyze("k", &["x"], &ordered).benign.is_empty());
        let racy = [
            rec(0, 0, AccessKind::Write, 5, 0, 0, 0, 1),
            rec(0, 0, AccessKind::Read, 0, 0, 1, 0, 9),
        ];
        assert!(!analyze("k", &["x"], &racy).benign.is_empty());
    }

    #[test]
    fn shared_memory_is_scoped_per_block() {
        // The same shared word written (with different values) by two
        // blocks is NOT a race: each block has its own shared memory.
        let log = [
            rec(SHARED_SLOT, 0, AccessKind::Write, 1, 0, 0, 0, 2),
            rec(SHARED_SLOT, 0, AccessKind::Write, 2, 1, 0, 0, 2),
        ];
        let r = analyze("k", &[], &log);
        assert!(r.is_clean());
        assert!(r.benign.is_empty());

        // Two warps of one block in the same epoch DO race.
        let log = [
            rec(SHARED_SLOT, 0, AccessKind::Write, 1, 0, 0, 0, 2),
            rec(SHARED_SLOT, 0, AccessKind::Write, 2, 0, 1, 0, 2),
        ];
        let r = analyze("k", &[], &log);
        assert_eq!(r.harmful[0].class, RaceClass::ConflictingStores);
        assert_eq!(r.harmful[0].buffer, "<shared>");
    }

    #[test]
    fn atomics_never_race_with_atomics() {
        let log = [
            rec(0, 0, AccessKind::Atomic, 1, 0, 0, 0, 2),
            rec(0, 0, AccessKind::Atomic, 2, 1, 0, 0, 2),
        ];
        let r = analyze("k", &["ctr"], &log);
        assert!(r.is_clean());
        assert!(r.benign.is_empty());
    }

    #[test]
    fn findings_aggregate_words_per_buffer_and_class() {
        let mut log = Vec::new();
        for w in [3u32, 8, 1] {
            log.push(rec(0, w, AccessKind::Write, 1, 0, 0, 0, 2));
            log.push(rec(0, w, AccessKind::Write, 1, 1, 0, 0, 2));
        }
        let r = analyze("k", &["update"], &log);
        assert_eq!(r.benign.len(), 1);
        assert_eq!(r.benign[0].words, 3);
        assert_eq!(r.benign[0].word, 1); // lowest exemplar
    }

    #[test]
    fn summary_accumulates_and_caps() {
        let mut s = RaceSummary::default();
        let benign = analyze(
            "k",
            &["f"],
            &[
                rec(0, 0, AccessKind::Write, 1, 0, 0, 0, 1),
                rec(0, 0, AccessKind::Write, 1, 1, 0, 0, 1),
            ],
        );
        s.absorb_report(&benign);
        assert!(s.is_clean());
        assert_eq!(s.launches_checked, 1);
        assert_eq!(s.benign_words, 1);
        let harmful = analyze(
            "k",
            &["f"],
            &[
                rec(0, 0, AccessKind::Write, 1, 0, 0, 0, 1),
                rec(0, 0, AccessKind::Write, 2, 1, 0, 0, 1),
            ],
        );
        for _ in 0..40 {
            s.absorb_report(&harmful);
        }
        assert!(!s.is_clean());
        assert_eq!(s.harmful_words, 40);
        assert_eq!(s.harmful.len(), 32); // capped exemplars
        let json = s.to_json().render();
        assert!(json.contains("\"harmful_words\":40"));
        assert!(json.contains("conflicting-stores"));
    }

    #[test]
    fn report_json_shape() {
        let r = analyze(
            "bfs",
            &["value"],
            &[
                rec(0, 2, AccessKind::Read, 0, 0, 0, 0, 1),
                rec(0, 2, AccessKind::Atomic, 9, 1, 0, 0, 1),
            ],
        );
        let s = r.to_json().render();
        assert!(s.contains("\"kernel\":\"bfs\""));
        assert!(s.contains("\"clean\":true"));
        assert!(s.contains("read-vs-atomic"));
        assert!(s.contains("\"harmful\":[]"));
    }
}
