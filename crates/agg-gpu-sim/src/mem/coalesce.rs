//! Global-memory coalescing model.
//!
//! A warp's memory instruction presents up to 32 byte addresses. The
//! hardware services them with one transaction per distinct aligned
//! segment (128 B on Fermi). Contiguous per-lane accesses therefore cost a
//! single transaction; a gather across the edge array of a sparse graph
//! costs up to one per lane — this asymmetry is the "irregular memory
//! access" penalty the paper discusses in Section III.C.

/// Counts the distinct `segment_bytes`-aligned segments covered by the
/// given byte addresses. `segment_bytes` must be a power of two.
pub fn transactions_for(addresses: &[u64], segment_bytes: u32) -> u32 {
    debug_assert!(segment_bytes.is_power_of_two());
    let shift = segment_bytes.trailing_zeros();
    // Warp size is <= 32, so a stack copy + sort is cheap and allocation-free.
    let mut segs = [0u64; 32];
    let n = addresses.len().min(32);
    for (dst, &a) in segs.iter_mut().zip(addresses.iter()) {
        *dst = a >> shift;
    }
    let segs = &mut segs[..n];
    segs.sort_unstable();
    let mut count = 0u32;
    let mut prev = None;
    for &s in segs.iter() {
        if Some(s) != prev {
            count += 1;
            prev = Some(s);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_words_coalesce_to_one() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(transactions_for(&addrs, 128), 1);
    }

    #[test]
    fn contiguous_across_boundary_costs_two() {
        let addrs: Vec<u64> = (16..48).map(|i| i * 4).collect(); // bytes 64..192
        assert_eq!(transactions_for(&addrs, 128), 2);
    }

    #[test]
    fn fully_scattered_costs_one_each() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        assert_eq!(transactions_for(&addrs, 128), 32);
    }

    #[test]
    fn broadcast_costs_one() {
        let addrs = [640u64; 32];
        assert_eq!(transactions_for(&addrs, 128), 1);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(transactions_for(&[], 128), 0);
        assert_eq!(transactions_for(&[12345], 128), 1);
    }

    #[test]
    fn smaller_segments_cost_more() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(transactions_for(&addrs, 32), 4);
        assert_eq!(transactions_for(&addrs, 64), 2);
    }
}
