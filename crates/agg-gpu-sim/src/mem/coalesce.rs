//! Global-memory coalescing model.
//!
//! A warp's memory instruction presents up to 32 byte addresses. The
//! hardware services them with one transaction per distinct aligned
//! segment (128 B on Fermi). Contiguous per-lane accesses therefore cost a
//! single transaction; a gather across the edge array of a sparse graph
//! costs up to one per lane — this asymmetry is the "irregular memory
//! access" penalty the paper discusses in Section III.C.

/// Counts the distinct `segment_bytes`-aligned segments covered by the
/// given byte addresses. `segment_bytes` must be a power of two.
pub fn transactions_for(addresses: &[u64], segment_bytes: u32) -> u32 {
    debug_assert!(segment_bytes.is_power_of_two());
    let shift = segment_bytes.trailing_zeros();
    // Warp size is <= 32, so a stack copy + sort is cheap and allocation-free.
    let mut segs = [0u64; 32];
    let n = addresses.len().min(32);
    for (dst, &a) in segs.iter_mut().zip(addresses.iter()) {
        *dst = a >> shift;
    }
    let segs = &mut segs[..n];
    segs.sort_unstable();
    let mut count = 0u32;
    let mut prev = None;
    for &s in segs.iter() {
        if Some(s) != prev {
            count += 1;
            prev = Some(s);
        }
    }
    count
}

/// One-entry memo of the last coalescing pattern seen at a bytecode
/// memory site, keyed by (base alignment within the segment, lane
/// stride, active mask). Hot graph kernels present the same affine
/// pattern at a site for every warp of every block, so the key check
/// replaces even the analytic transaction formula on repeats.
///
/// A `mask` of 0 marks an empty entry (a global access always has at
/// least one active lane).
#[derive(Debug, Clone, Copy, Default)]
pub struct PatternCache {
    off: u32,
    stride: i32,
    mask: u32,
    tx: u32,
}

/// Counts the transactions for one warp's word indices into a single
/// buffer, given in ascending-lane order — exactly
/// [`transactions_for`] over the corresponding byte addresses, without
/// materializing or sorting them for the patterns the paper's kernels
/// actually emit:
///
/// * **affine** vectors (broadcast, stride-1, any constant lane stride,
///   ascending or descending) resolve through `cache` or a closed-form
///   segment count;
/// * **monotone** non-affine vectors (sorted gathers) use the segment
///   transitions counted inline in one pass;
/// * anything else falls back to the exact sort-and-dedup path.
///
/// All word indices must target one buffer: segment identity then
/// depends only on `word * 4 >> log2(segment_bytes)`, which is how the
/// classifier avoids the 64-bit tagged addresses.
pub(crate) fn transactions_for_words(
    words: &[u32],
    segment_bytes: u32,
    mask: u32,
    cache: Option<&mut PatternCache>,
) -> u32 {
    debug_assert!(segment_bytes.is_power_of_two());
    debug_assert!(words.len() <= 32);
    let n = words.len();
    if n == 0 {
        return 0;
    }
    if segment_bytes < 4 {
        // Sub-word segments (never a real device config): exact path.
        return transactions_exact(words, segment_bytes);
    }
    // Words per segment; segment id of a word is `w >> wshift`.
    let wshift = segment_bytes.trailing_zeros() - 2;
    if n == 1 {
        return 1;
    }

    // One classification pass: monotonicity, constant lane stride, and
    // (while monotone) the inline segment-transition count.
    let stride = words[1] as i64 - words[0] as i64;
    let mut affine = true;
    let mut monotone = true;
    let mut inline_tx = 1u32;
    let mut prev = words[0];
    for &w in &words[1..] {
        affine &= w as i64 - prev as i64 == stride;
        if w < prev {
            monotone = false;
        } else if monotone && (w >> wshift) != (prev >> wshift) {
            inline_tx += 1;
        }
        prev = w;
    }

    if affine {
        let seg_words = 1u32 << wshift;
        let off = words[0] & (seg_words - 1);
        let stride32 = stride as i32;
        if let Some(c) = cache {
            if c.mask == mask && c.off == off && c.stride == stride32 {
                return c.tx;
            }
            let tx = affine_transactions(off, stride, n as u32, wshift);
            *c = PatternCache {
                off,
                stride: stride32,
                mask,
                tx,
            };
            return tx;
        }
        return affine_transactions(off, stride, n as u32, wshift);
    }
    if monotone {
        return inline_tx;
    }
    transactions_exact(words, segment_bytes)
}

/// Segment count of `n` words starting at in-segment offset `off` with
/// constant stride `s` (closed form; exact for every affine vector).
fn affine_transactions(off: u32, s: i64, n: u32, wshift: u32) -> u32 {
    if s == 0 {
        return 1; // broadcast
    }
    let seg_words = 1u64 << wshift;
    let abs = s.unsigned_abs();
    if abs >= seg_words {
        // Every consecutive pair is at least a segment apart, so segment
        // ids are strictly monotone: one transaction per lane.
        return n;
    }
    // Gaps smaller than a segment never skip one: the count is
    // last-segment − first-segment + 1, computed from the lowest word's
    // in-segment offset. For descending strides the lowest word is the
    // last lane's, at offset (off + (n−1)·s) mod seg.
    let off_min = if s > 0 {
        off as u64
    } else {
        (off as i64 + (n as i64 - 1) * s).rem_euclid(seg_words as i64) as u64
    };
    (((off_min + (n as u64 - 1) * abs) >> wshift) + 1) as u32
}

/// Exact fallback: sort the segment ids and count distinct.
fn transactions_exact(words: &[u32], segment_bytes: u32) -> u32 {
    let shift = segment_bytes.trailing_zeros();
    let mut segs = [0u64; 32];
    let n = words.len().min(32);
    for (dst, &w) in segs.iter_mut().zip(words.iter()) {
        *dst = (w as u64 * 4) >> shift;
    }
    let segs = &mut segs[..n];
    segs.sort_unstable();
    let mut count = 0u32;
    let mut prev = None;
    for &s in segs.iter() {
        if Some(s) != prev {
            count += 1;
            prev = Some(s);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_words_coalesce_to_one() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(transactions_for(&addrs, 128), 1);
    }

    #[test]
    fn contiguous_across_boundary_costs_two() {
        let addrs: Vec<u64> = (16..48).map(|i| i * 4).collect(); // bytes 64..192
        assert_eq!(transactions_for(&addrs, 128), 2);
    }

    #[test]
    fn fully_scattered_costs_one_each() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        assert_eq!(transactions_for(&addrs, 128), 32);
    }

    #[test]
    fn broadcast_costs_one() {
        let addrs = [640u64; 32];
        assert_eq!(transactions_for(&addrs, 128), 1);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(transactions_for(&[], 128), 0);
        assert_eq!(transactions_for(&[12345], 128), 1);
    }

    #[test]
    fn smaller_segments_cost_more() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(transactions_for(&addrs, 32), 4);
        assert_eq!(transactions_for(&addrs, 64), 2);
    }

    /// The exact path over the same words as byte addresses — the oracle
    /// every `transactions_for_words` answer is held to.
    fn oracle(words: &[u32], segment_bytes: u32) -> u32 {
        let addrs: Vec<u64> = words.iter().map(|&w| w as u64 * 4).collect();
        transactions_for(&addrs, segment_bytes)
    }

    /// Runs the classifier three ways (no cache, cold cache, warm cache)
    /// and checks every answer against the sort-and-dedup oracle.
    fn check(words: &[u32], segment_bytes: u32, mask: u32) {
        let want = oracle(words, segment_bytes);
        assert_eq!(
            transactions_for_words(words, segment_bytes, mask, None),
            want,
            "uncached: {words:?} @ {segment_bytes}B"
        );
        let mut cache = PatternCache::default();
        for pass in 0..2 {
            assert_eq!(
                transactions_for_words(words, segment_bytes, mask, Some(&mut cache)),
                want,
                "cache pass {pass}: {words:?} @ {segment_bytes}B"
            );
        }
    }

    #[test]
    fn analytic_matches_exact_on_stride_one() {
        let words: Vec<u32> = (0..32).collect();
        check(&words, 128, u32::MAX);
    }

    #[test]
    fn analytic_matches_exact_on_broadcast() {
        check(&[160; 32], 128, u32::MAX);
        check(&[7; 5], 128, 0b11111);
    }

    #[test]
    fn analytic_matches_exact_across_segment_boundaries() {
        // Offset bases that straddle one or more 128 B boundaries.
        for off in [1u32, 15, 16, 17, 31] {
            let words: Vec<u32> = (off..off + 32).collect();
            check(&words, 128, u32::MAX);
        }
    }

    #[test]
    fn analytic_matches_exact_on_constant_strides() {
        // Ascending and descending, gap smaller and larger than a
        // segment, from aligned and unaligned bases.
        for base in [0u32, 3, 31, 64, 100] {
            for stride in [1i64, 2, 3, 7, 16, 31, 32, 33, 100, -1, -2, -32, -100] {
                for n in [2usize, 5, 17, 32] {
                    let words: Vec<u32> = (0..n)
                        .map(|i| (base as i64 + 1000 + i as i64 * stride) as u32)
                        .collect();
                    check(&words, 128, (1u32 << (n - 1)) | 1);
                }
            }
        }
    }

    #[test]
    fn monotone_and_scattered_fall_back_exactly() {
        // Sorted gather (monotone, not affine).
        check(&[0, 1, 1, 4, 9, 40, 41, 200], 128, 0xFF);
        // Unsorted scatter (neither).
        check(&[900, 3, 77, 4, 512, 513, 2, 2], 128, 0xFF);
        check(&[5, 4, 3, 2, 1, 0, 1000], 128, 0x7F);
    }

    #[test]
    fn partial_masks_reach_the_same_counts() {
        // A partially-active warp presents fewer words; the count must
        // still match the oracle over exactly those words.
        let words: Vec<u32> = (0..11).map(|i| 64 + i * 2).collect();
        check(&words, 128, 0b111_1111_1111);
        check(&[123], 128, 1 << 31);
    }

    #[test]
    fn cache_distinguishes_mask_offset_and_stride() {
        // A warm entry must not answer for a *different* pattern: probe
        // pairs that collide on two of the three key fields.
        let mut cache = PatternCache::default();
        let a: Vec<u32> = (0..32).collect(); // off 0, stride 1
        let b: Vec<u32> = (0..32).map(|i| i * 2).collect(); // off 0, stride 2
        let c: Vec<u32> = (1..33).collect(); // off 1, stride 1
        for words in [&a, &b, &c, &a, &c] {
            let want = oracle(words, 128);
            assert_eq!(
                transactions_for_words(words, 128, u32::MAX, Some(&mut cache)),
                want,
                "{words:?}"
            );
        }
        // Same words, fewer lanes: the mask keys the entry.
        let short = &a[..7];
        assert_eq!(
            transactions_for_words(short, 128, 0x7F, Some(&mut cache)),
            oracle(short, 128)
        );
    }

    #[test]
    fn randomized_words_match_the_oracle() {
        // Deterministic xorshift sweep over mixed pattern shapes and
        // segment sizes, including the sub-word degenerate segments.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..500 {
            let n = (rng() % 32 + 1) as usize;
            let mut words = Vec::with_capacity(n);
            match round % 4 {
                0 => {
                    // Affine with random base/stride.
                    let base = (rng() % 10_000) as i64 + 5_000;
                    let stride = (rng() % 201) as i64 - 100;
                    words.extend((0..n).map(|i| (base + i as i64 * stride) as u32));
                }
                1 => {
                    // Sorted gather.
                    let mut w = (rng() % 1000) as u32;
                    for _ in 0..n {
                        w += (rng() % 50) as u32;
                        words.push(w);
                    }
                }
                _ => {
                    // Fully random scatter.
                    words.extend((0..n).map(|_| (rng() % 100_000) as u32));
                }
            }
            let segment_bytes = [4u32, 32, 64, 128][(rng() % 4) as usize];
            let mask = if n == 32 {
                u32::MAX
            } else {
                (1u32 << n) - 1
            };
            check(&words, segment_bytes, mask);
        }
    }

    #[test]
    fn sub_word_segments_use_the_exact_path() {
        // segment_bytes < 4 can't index by word; the byte-address
        // fallback must still agree with the oracle.
        check(&[0, 1, 2, 3], 2, 0b1111);
        check(&[10, 10, 11], 1, 0b111);
    }
}
