//! Host<->device transfer cost model (PCIe) and the device<->device
//! [`Interconnect`] used by multi-device sharded execution.

use crate::config::DeviceConfig;

/// Modeled nanoseconds to move `bytes` across PCIe in either direction:
/// fixed latency plus bandwidth time.
pub fn transfer_ns(cfg: &DeviceConfig, bytes: usize) -> f64 {
    cfg.pcie_latency_us * 1_000.0 + bytes as f64 / cfg.pcie_gbps
}

/// Cost model for the link fabric between simulated devices.
///
/// Like the PCIe model above it is latency + bandwidth, but it also
/// models the *all-to-all* exchange step of a bulk-synchronous sharded
/// run: every device sends and receives concurrently, links are
/// full-duplex, so one exchange round costs a single latency term plus
/// the bandwidth time of the most-loaded node port (the max over devices
/// of `max(bytes sent, bytes received)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-direction node bandwidth in GB/s (== bytes per nanosecond).
    pub gbps: f64,
    /// One-way message latency in microseconds.
    pub latency_us: f64,
}

impl Interconnect {
    /// PCIe 2.0-era peer copies through host memory (the Tesla C2070's
    /// world): ~6 GB/s per direction, 10 us latency.
    pub fn pcie() -> Interconnect {
        Interconnect {
            gbps: 6.0,
            latency_us: 10.0,
        }
    }

    /// An NVLink-class fabric: ~25 GB/s per direction, 2 us latency.
    pub fn nvlink() -> Interconnect {
        Interconnect {
            gbps: 25.0,
            latency_us: 2.0,
        }
    }

    /// The fixed per-round latency in nanoseconds — the part of an
    /// exchange round no amount of compute overlap can hide (the
    /// synchronization handshake happens after the overlapped window).
    pub fn latency_ns(&self) -> f64 {
        self.latency_us * 1_000.0
    }

    /// Nanoseconds for one point-to-point message of `bytes`.
    pub fn pair_ns(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_us * 1_000.0 + bytes as f64 / self.gbps
    }

    /// Nanoseconds for one all-to-all exchange round, given the per-pair
    /// byte matrix `bytes[src][dst]` (diagonal ignored). All pairs
    /// proceed concurrently; the round is gated by the most-loaded node
    /// port and pays the latency once. A round that moves no bytes is
    /// free (no message is sent at all).
    pub fn all_to_all_ns(&self, bytes: &[Vec<usize>]) -> f64 {
        let k = bytes.len();
        let mut busiest = 0usize;
        for (s, row) in bytes.iter().enumerate() {
            let sent: usize = (0..k).filter(|&d| d != s).map(|d| row[d]).sum();
            let recv: usize = (0..k).filter(|&d| d != s).map(|d| bytes[d][s]).sum();
            busiest = busiest.max(sent).max(recv);
        }
        if busiest == 0 {
            return 0.0;
        }
        self.latency_us * 1_000.0 + busiest as f64 / self.gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_copies() {
        let cfg = DeviceConfig::tesla_c2070();
        let t4 = transfer_ns(&cfg, 4);
        assert!(
            (t4 - 10_000.0).abs() < 10.0,
            "4-byte copy ~= latency, got {t4}"
        );
    }

    #[test]
    fn bandwidth_dominates_large_copies() {
        let cfg = DeviceConfig::tesla_c2070();
        // 6 GB/s = 6 bytes/ns; 600 MB -> 100 ms
        let t = transfer_ns(&cfg, 600_000_000);
        assert!((t - 1.0e8 - 10_000.0).abs() < 1.0e5, "got {t}");
    }

    #[test]
    fn monotone_in_bytes() {
        let cfg = DeviceConfig::tesla_c2070();
        assert!(transfer_ns(&cfg, 1000) < transfer_ns(&cfg, 2000));
    }

    #[test]
    fn interconnect_pair_cost_and_free_empty_message() {
        let ic = Interconnect::pcie();
        assert_eq!(ic.pair_ns(0), 0.0);
        // 6 GB/s = 6 bytes/ns: 600 bytes -> 100 ns + 10 us latency.
        assert!((ic.pair_ns(600) - 10_100.0).abs() < 1e-9);
        assert!(Interconnect::nvlink().pair_ns(600) < ic.pair_ns(600));
    }

    #[test]
    fn all_to_all_gated_by_most_loaded_port() {
        let ic = Interconnect::pcie();
        // 3 devices; device 0 sends 600 + 600, the rest send less. The
        // busiest port moves 1200 bytes -> 200 ns + latency.
        let bytes = vec![vec![0, 600, 600], vec![60, 0, 0], vec![0, 60, 0]];
        assert!((ic.all_to_all_ns(&bytes) - 10_200.0).abs() < 1e-9);
        // Receive side can gate too: both senders target device 2.
        let bytes = vec![vec![0, 0, 600], vec![0, 0, 600], vec![0, 0, 0]];
        assert!((ic.all_to_all_ns(&bytes) - 10_200.0).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_with_no_traffic_is_free() {
        let ic = Interconnect::pcie();
        let bytes = vec![vec![0; 4]; 4];
        assert_eq!(ic.all_to_all_ns(&bytes), 0.0);
        // Diagonal (self) entries are ignored even if nonzero.
        let bytes = vec![vec![7, 0], vec![0, 7]];
        assert_eq!(ic.all_to_all_ns(&bytes), 0.0);
    }
}
