//! Host<->device transfer cost model (PCIe).

use crate::config::DeviceConfig;

/// Modeled nanoseconds to move `bytes` across PCIe in either direction:
/// fixed latency plus bandwidth time.
pub fn transfer_ns(cfg: &DeviceConfig, bytes: usize) -> f64 {
    cfg.pcie_latency_us * 1_000.0 + bytes as f64 / cfg.pcie_gbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_copies() {
        let cfg = DeviceConfig::tesla_c2070();
        let t4 = transfer_ns(&cfg, 4);
        assert!(
            (t4 - 10_000.0).abs() < 10.0,
            "4-byte copy ~= latency, got {t4}"
        );
    }

    #[test]
    fn bandwidth_dominates_large_copies() {
        let cfg = DeviceConfig::tesla_c2070();
        // 6 GB/s = 6 bytes/ns; 600 MB -> 100 ms
        let t = transfer_ns(&cfg, 600_000_000);
        assert!((t - 1.0e8 - 10_000.0).abs() < 1.0e5, "got {t}");
    }

    #[test]
    fn monotone_in_bytes() {
        let cfg = DeviceConfig::tesla_c2070();
        assert!(transfer_ns(&cfg, 1000) < transfer_ns(&cfg, 2000));
    }
}
