//! Simulated device memory: global buffers, the coalescing model, the
//! shared-memory bank-conflict model, and host<->device transfer costs.

pub mod coalesce;
pub mod global;
pub mod race;
pub mod shared;
pub mod transfer;

pub use coalesce::transactions_for;
pub use global::{DevicePtr, GlobalMemory};
pub use race::{RaceClass, RaceFinding, RaceReport, RaceSummary};
pub use shared::bank_conflict_replays;
pub use transfer::{transfer_ns, Interconnect};
