//! Shared-memory bank-conflict model.
//!
//! Fermi shared memory has 32 banks, word-interleaved. A warp access
//! replays once per additional distinct word that maps to the same bank;
//! reading the *same* word from many lanes broadcasts at no cost.

/// Number of replays (beyond the first access) for a warp access pattern
/// given as word indices. `banks` is normally 32.
pub fn bank_conflict_replays(word_indices: &[u64], banks: u32) -> u32 {
    debug_assert!(banks.is_power_of_two() && banks > 0);
    let mask = (banks - 1) as u64;
    // distinct words per bank; same word broadcast is free.
    let mut per_bank = [0u32; 32];
    let mut seen = [0u64; 32];
    let mut seen_n = 0usize;
    for &w in word_indices.iter().take(32) {
        if seen[..seen_n].contains(&w) {
            continue; // broadcast
        }
        if seen_n < 32 {
            seen[seen_n] = w;
            seen_n += 1;
        }
        let bank = (w & mask) as usize % 32;
        per_bank[bank] += 1;
    }
    per_bank
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_one_has_no_conflicts() {
        let idx: Vec<u64> = (0..32).collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 0);
    }

    #[test]
    fn stride_32_serializes_fully() {
        let idx: Vec<u64> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 31);
    }

    #[test]
    fn stride_two_halves_throughput() {
        let idx: Vec<u64> = (0..32).map(|i| i * 2).collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 1);
    }

    #[test]
    fn broadcast_is_free() {
        let idx = [7u64; 32];
        assert_eq!(bank_conflict_replays(&idx, 32), 0);
    }

    #[test]
    fn empty_access() {
        assert_eq!(bank_conflict_replays(&[], 32), 0);
    }
}
