//! Simulator error types. Functional errors (out-of-bounds accesses,
//! division by zero) trap deterministically instead of exhibiting CUDA's
//! undefined behaviour — the simulator doubles as a kernel sanitizer.

use std::fmt;

/// Errors raised while building kernels or executing launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A global memory access fell outside its buffer.
    OutOfBounds {
        /// Kernel that performed the access.
        kernel: String,
        /// Buffer label.
        buffer: String,
        /// Word index accessed.
        index: u64,
        /// Buffer length in words.
        len: usize,
    },
    /// A shared memory access fell outside the block's shared allocation.
    SharedOutOfBounds {
        /// Kernel that performed the access.
        kernel: String,
        /// Word index accessed.
        index: u64,
        /// Shared words allocated per block.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Kernel in which it happened.
        kernel: String,
    },
    /// Launch configuration violates device limits.
    BadLaunch {
        /// Explanation of the violated limit.
        detail: String,
    },
    /// Kernel was launched with the wrong number of buffer/scalar args.
    ArgumentMismatch {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// Kernel failed IR validation (e.g. nested barrier intrinsic).
    InvalidKernel {
        /// Explanation of the violated rule.
        detail: String,
    },
    /// A buffer handle referenced memory not allocated on this device.
    BadPointer {
        /// Explanation.
        detail: String,
    },
    /// The [`crate::DeviceConfig`] failed validation (see
    /// `DeviceConfig::validate`); raised by `Device::try_new`.
    InvalidConfig {
        /// Explanation of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { kernel, buffer, index, len } => write!(
                f,
                "kernel '{kernel}': out-of-bounds access to buffer '{buffer}' at word {index} (len {len})"
            ),
            SimError::SharedOutOfBounds { kernel, index, len } => write!(
                f,
                "kernel '{kernel}': out-of-bounds shared memory access at word {index} (allocated {len})"
            ),
            SimError::DivisionByZero { kernel } => {
                write!(f, "kernel '{kernel}': integer division by zero")
            }
            SimError::BadLaunch { detail } => write!(f, "bad launch configuration: {detail}"),
            SimError::ArgumentMismatch { detail } => write!(f, "argument mismatch: {detail}"),
            SimError::InvalidKernel { detail } => write!(f, "invalid kernel: {detail}"),
            SimError::BadPointer { detail } => write!(f, "bad device pointer: {detail}"),
            SimError::InvalidConfig { detail } => write!(f, "invalid DeviceConfig: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfBounds {
            kernel: "bfs".into(),
            buffer: "levels".into(),
            index: 99,
            len: 10,
        };
        let s = e.to_string();
        assert!(s.contains("bfs") && s.contains("levels") && s.contains("99") && s.contains("10"));
    }
}
