//! Minimal JSON document builder for telemetry serialization.
//!
//! The workspace builds offline against vendored dependency shims (see
//! `shims/README.md`), so there is no `serde_json`. Telemetry payloads —
//! launch profiles, per-iteration traces — are small trees of numbers and
//! strings, which this module models directly: build a [`Json`] value and
//! [`Json::render`] it. Output is deterministic (object keys keep
//! insertion order) so traces diff cleanly across runs.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, for human-inspected files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        // Integral values print without a fraction so counters stay exact.
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents_compactly() {
        let doc = Json::obj([
            ("name", "bfs".into()),
            ("iters", 3u32.into()),
            ("ok", true.into()),
            ("none", Json::Null),
            ("xs", Json::arr([1u32.into(), 2u32.into()])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"bfs","iters":3,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn numbers_render_exactly() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(1u64 << 50).render(), "1125899906842624");
    }

    #[test]
    fn pretty_output_is_reparseable_shape() {
        let doc = Json::obj([("a", Json::arr([Json::Num(1.0)])), ("b", Json::obj([]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.ends_with("}\n"));
        // empty containers stay compact
        assert!(pretty.contains("\"b\": {}"));
    }
}
