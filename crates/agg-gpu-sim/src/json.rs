//! Minimal JSON document builder and parser for telemetry and wire
//! payloads.
//!
//! The workspace builds offline against vendored dependency shims (see
//! `shims/README.md`), so there is no `serde_json`. Telemetry payloads —
//! launch profiles, per-iteration traces — are small trees of numbers and
//! strings, which this module models directly: build a [`Json`] value and
//! [`Json::render`] it. Output is deterministic (object keys keep
//! insertion order) so traces diff cleanly across runs.
//!
//! [`Json::parse`] is the inverse: a small recursive-descent reader used
//! by the `agg-serve` wire protocol and by artifact-reading tools. It
//! accepts exactly the documents `render` produces (standard JSON;
//! `null`/`true`/`false`, f64 numbers, escaped strings, arrays, objects)
//! and reports the byte offset of the first error.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// Trailing non-whitespace after the document is an error, as are
    /// unterminated containers/strings, so a truncated wire frame can
    /// never silently decode to a prefix of itself.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.trunc() == *x && *x < 9.0e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, for human-inspected files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        // Integral values print without a fraction so counters stay exact.
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}

/// A [`Json::parse`] failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What the parser expected or found.
    pub detail: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &str) -> JsonError {
        JsonError {
            at: self.at,
            detail: detail.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("expected 4 hex digits after \\u"))?;
                            self.at += 4;
                            // Surrogate pairs are outside the subset our
                            // renderer emits; map them to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.at..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or_else(|| self.err("bad UTF-8"))?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError {
                at: start,
                detail: format!("malformed number '{text}'"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents_compactly() {
        let doc = Json::obj([
            ("name", "bfs".into()),
            ("iters", 3u32.into()),
            ("ok", true.into()),
            ("none", Json::Null),
            ("xs", Json::arr([1u32.into(), 2u32.into()])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"bfs","iters":3,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn numbers_render_exactly() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(1u64 << 50).render(), "1125899906842624");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("name", "bfs".into()),
            ("iters", 3u32.into()),
            ("half", Json::Num(0.5)),
            ("neg", Json::Num(-17.25)),
            ("ok", true.into()),
            ("none", Json::Null),
            ("s", Json::Str("a\"b\\c\nd\u{1}é".into())),
            ("xs", Json::arr([1u32.into(), 2u32.into()])),
            ("empty_a", Json::arr([])),
            ("empty_o", Json::obj([])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a": {"b": [1, "two", true]}, "n": 7}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(7.0));
        let b = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = b.as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_str(), Some("two"));
        assert_eq!(items[2].as_bool(), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("n").and_then(Json::as_str), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "[1 2]", "{\"a\" 1}", "tru", "\"abc", "{\"a\":}", "1 2",
            "[1],", "nul", "\"\\q\"", "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, ?]").unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        assert_eq!(
            Json::parse(r#""a\u0041\n\t\/""#).unwrap(),
            Json::Str("aA\n\t/".into())
        );
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap(), Json::Num(-0.25));
        // Out of exact-u64 range falls back to None without panicking.
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }

    #[test]
    fn pretty_output_is_reparseable_shape() {
        let doc = Json::obj([("a", Json::arr([Json::Num(1.0)])), ("b", Json::obj([]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.ends_with("}\n"));
        // empty containers stay compact
        assert!(pretty.contains("\"b\": {}"));
    }
}
