//! Device configuration: the architectural and timing parameters of the
//! simulated GPU. All timing behaviour of the simulator flows from the
//! numbers in this struct, so experiments can sweep them (e.g. the
//! launch-overhead ablation, experiment X2 in DESIGN.md).

use serde::{Deserialize, Serialize};

/// Architectural + timing description of a simulated CUDA device.
///
/// The default constructor [`DeviceConfig::tesla_c2070`] models the Fermi
/// card the paper used ("an Nvidia Tesla C2070 GPU, which contains 14
/// 32-core SMs", 1.15 GHz, 144 GB/s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM (32 or 48 on Fermi).
    pub cores_per_sm: u32,
    /// SIMT width; threads per warp.
    pub warp_size: u32,
    /// Maximum threads per block accepted by a launch.
    pub max_threads_per_block: u32,
    /// Maximum concurrently resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum concurrently resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM (Fermi: 48).
    pub max_warps_per_sm: u32,
    /// Shared memory bytes per SM.
    pub shared_mem_per_sm: u32,
    /// Core clock in GHz; converts cycles to nanoseconds.
    pub clock_ghz: f64,
    /// Global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Global memory transaction size in bytes (coalescing granule).
    pub transaction_bytes: u32,
    /// Issue-pipeline cycles charged per memory transaction.
    pub mem_issue_cycles: u64,
    /// Raw DRAM latency in cycles; hidden by resident warps.
    pub mem_latency_cycles: u64,
    /// Cycles for the first atomic to an address.
    pub atomic_issue_cycles: u64,
    /// Additional serialized cycles per extra conflicting atomic lane.
    pub atomic_conflict_cycles: u64,
    /// Replay cost per extra shared-memory bank conflict.
    pub shared_conflict_cycles: u64,
    /// Cycles per `__syncthreads()`.
    pub sync_cycles: u64,
    /// Host-side fixed cost per kernel launch, in microseconds.
    pub launch_overhead_us: f64,
    /// PCIe transfer bandwidth (GB/s) for host<->device copies.
    pub pcie_gbps: f64,
    /// Fixed latency per host<->device copy, in microseconds.
    pub pcie_latency_us: f64,
    /// Log every memory access and attach a
    /// [`crate::mem::race::RaceReport`] to each launch report. Costly
    /// (host-side) and off by default; timing is unaffected.
    pub race_detect: bool,
}

impl DeviceConfig {
    /// The paper's evaluation device: Tesla C2070 (Fermi GF100).
    pub fn tesla_c2070() -> DeviceConfig {
        DeviceConfig {
            name: "Tesla C2070 (simulated)".to_string(),
            num_sms: 14,
            cores_per_sm: 32,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1536,
            max_warps_per_sm: 48,
            shared_mem_per_sm: 48 * 1024,
            clock_ghz: 1.15,
            mem_bandwidth_gbps: 144.0,
            transaction_bytes: 128,
            mem_issue_cycles: 4,
            mem_latency_cycles: 400,
            atomic_issue_cycles: 12,
            atomic_conflict_cycles: 24,
            shared_conflict_cycles: 1,
            sync_cycles: 16,
            launch_overhead_us: 7.0,
            pcie_gbps: 6.0,
            pcie_latency_us: 10.0,
            race_detect: false,
        }
    }

    /// This configuration with the data-race detector switched on or off.
    pub fn with_race_detect(mut self, on: bool) -> DeviceConfig {
        self.race_detect = on;
        self
    }

    /// A deliberately tiny device (2 SMs) for tests that need to observe
    /// SM-level load imbalance without large launches.
    pub fn tiny_test_device() -> DeviceConfig {
        DeviceConfig {
            name: "tiny-test".to_string(),
            num_sms: 2,
            max_threads_per_block: 256,
            max_blocks_per_sm: 2,
            max_threads_per_sm: 256,
            max_warps_per_sm: 8,
            ..DeviceConfig::tesla_c2070()
        }
    }

    /// Cycles → nanoseconds under this clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.clock_ghz
    }

    /// Warps needed for `threads` threads.
    pub fn warps_for(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }

    /// Validates internal consistency (used by `Device::new` debug builds).
    pub fn validate(&self) -> Result<(), String> {
        if self.warp_size == 0 || !self.warp_size.is_power_of_two() || self.warp_size > 32 {
            return Err(format!(
                "warp_size {} must be a power of two <= 32",
                self.warp_size
            ));
        }
        if self.num_sms == 0 {
            return Err("num_sms must be positive".into());
        }
        if self.clock_ghz <= 0.0 || self.mem_bandwidth_gbps <= 0.0 || self.pcie_gbps <= 0.0 {
            return Err("clock and bandwidths must be positive".into());
        }
        if self.transaction_bytes == 0 || !self.transaction_bytes.is_power_of_two() {
            return Err(format!(
                "transaction_bytes {} must be a power of two",
                self.transaction_bytes
            ));
        }
        if self.max_threads_per_block == 0 || self.max_threads_per_sm < self.max_threads_per_block {
            return Err("thread limits inconsistent".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2070_matches_paper_description() {
        let c = DeviceConfig::tesla_c2070();
        assert_eq!(c.num_sms, 14);
        assert_eq!(c.cores_per_sm, 32);
        assert_eq!(c.warp_size, 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cycle_conversion() {
        let c = DeviceConfig::tesla_c2070();
        // 1.15 GHz: 1150 cycles = 1000 ns
        assert!((c.cycles_to_ns(1150.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn warps_for_rounds_up() {
        let c = DeviceConfig::tesla_c2070();
        assert_eq!(c.warps_for(1), 1);
        assert_eq!(c.warps_for(32), 1);
        assert_eq!(c.warps_for(33), 2);
        assert_eq!(c.warps_for(0), 0);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut c = DeviceConfig::tesla_c2070();
        c.warp_size = 20;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::tesla_c2070();
        c.num_sms = 0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::tesla_c2070();
        c.transaction_bytes = 100;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::tesla_c2070();
        c.max_threads_per_sm = 16;
        assert!(c.validate().is_err());
    }
}
