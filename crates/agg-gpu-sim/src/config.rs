//! Device configuration: the architectural and timing parameters of the
//! simulated GPU. All timing behaviour of the simulator flows from the
//! numbers in this struct, so experiments can sweep them (e.g. the
//! launch-overhead ablation, experiment X2 in DESIGN.md).

use serde::{Deserialize, Serialize};

/// What the execution engine computes per launch, beyond the kernel's
/// memory effects (which every fidelity produces bit-identically).
///
/// | fidelity | values | `BlockCost`/timing | race log |
/// |---|---|---|---|
/// | [`SimFidelity::Timed`] | ✓ | ✓ | — |
/// | [`SimFidelity::TimedWithRaces`] | ✓ | ✓ | ✓ |
/// | [`SimFidelity::Functional`] | ✓ | zeroed | — |
///
/// Under `Functional`, every launch report carries `time_ns == 0.0`,
/// default statistics, and `races: None`; the device clock does not
/// advance on launches (transfers still charge PCIe time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimFidelity {
    /// Full timing model: divergence, coalescing, atomic serialization,
    /// bank conflicts, occupancy-based latency hiding (the default).
    #[default]
    Timed,
    /// [`SimFidelity::Timed`] plus per-word access logging and race
    /// classification attached to each [`crate::LaunchReport`]. Costly
    /// (host-side); timing results are unaffected.
    TimedWithRaces,
    /// Fast-functional: memory semantics only (masks, traps, bounds
    /// checks, deterministic atomic order, barrier collectives), with
    /// all cost, coalescing, occupancy, and race bookkeeping skipped.
    Functional,
}

/// Which execution engine runs kernel launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecEngine {
    /// The flat bytecode engine (compiled once per kernel, memoized) —
    /// the default and the only engine available in production builds.
    #[default]
    Bytecode,
    /// The original tree-walking interpreter, kept as a differential
    /// oracle. Only available under `cfg(test)` or the `interp-oracle`
    /// feature; selecting it otherwise fails [`DeviceConfig::validate`].
    Interpreter,
}

/// How blocks of a launch are scheduled on the *host* (simulation
/// threading; modeled GPU time is identical either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecMode {
    /// Blocks run one after another on the calling thread (the default;
    /// deterministic and fastest for small launches).
    #[default]
    Sequential,
    /// Blocks are distributed over scoped OS threads. Results are
    /// identical for data-race-free kernels (cross-block communication
    /// goes through atomics).
    Parallel,
}

/// Architectural + timing description of a simulated CUDA device.
///
/// The default constructor [`DeviceConfig::tesla_c2070`] models the Fermi
/// card the paper used ("an Nvidia Tesla C2070 GPU, which contains 14
/// 32-core SMs", 1.15 GHz, 144 GB/s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM (32 or 48 on Fermi).
    pub cores_per_sm: u32,
    /// SIMT width; threads per warp.
    pub warp_size: u32,
    /// Maximum threads per block accepted by a launch.
    pub max_threads_per_block: u32,
    /// Maximum concurrently resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum concurrently resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM (Fermi: 48).
    pub max_warps_per_sm: u32,
    /// Shared memory bytes per SM.
    pub shared_mem_per_sm: u32,
    /// Core clock in GHz; converts cycles to nanoseconds.
    pub clock_ghz: f64,
    /// Global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Global memory transaction size in bytes (coalescing granule).
    pub transaction_bytes: u32,
    /// Issue-pipeline cycles charged per memory transaction.
    pub mem_issue_cycles: u64,
    /// Raw DRAM latency in cycles; hidden by resident warps.
    pub mem_latency_cycles: u64,
    /// Cycles for the first atomic to an address.
    pub atomic_issue_cycles: u64,
    /// Additional serialized cycles per extra conflicting atomic lane.
    pub atomic_conflict_cycles: u64,
    /// Replay cost per extra shared-memory bank conflict.
    pub shared_conflict_cycles: u64,
    /// Cycles per `__syncthreads()`.
    pub sync_cycles: u64,
    /// Host-side fixed cost per kernel launch, in microseconds.
    pub launch_overhead_us: f64,
    /// PCIe transfer bandwidth (GB/s) for host<->device copies.
    pub pcie_gbps: f64,
    /// Fixed latency per host<->device copy, in microseconds.
    pub pcie_latency_us: f64,
    /// What launches compute: full timing, timing + race detection, or
    /// fast-functional (see [`SimFidelity`]).
    pub fidelity: SimFidelity,
    /// Which execution engine runs launches (see [`ExecEngine`]).
    pub engine: ExecEngine,
    /// Host-side block scheduling (see [`ExecMode`]).
    pub host_exec: ExecMode,
}

impl DeviceConfig {
    /// The paper's evaluation device: Tesla C2070 (Fermi GF100).
    pub fn tesla_c2070() -> DeviceConfig {
        DeviceConfig {
            name: "Tesla C2070 (simulated)".to_string(),
            num_sms: 14,
            cores_per_sm: 32,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1536,
            max_warps_per_sm: 48,
            shared_mem_per_sm: 48 * 1024,
            clock_ghz: 1.15,
            mem_bandwidth_gbps: 144.0,
            transaction_bytes: 128,
            mem_issue_cycles: 4,
            mem_latency_cycles: 400,
            atomic_issue_cycles: 12,
            atomic_conflict_cycles: 24,
            shared_conflict_cycles: 1,
            sync_cycles: 16,
            launch_overhead_us: 7.0,
            pcie_gbps: 6.0,
            pcie_latency_us: 10.0,
            fidelity: SimFidelity::default(),
            engine: ExecEngine::default(),
            host_exec: ExecMode::default(),
        }
    }

    /// This configuration running at the given fidelity.
    pub fn with_fidelity(mut self, fidelity: SimFidelity) -> DeviceConfig {
        self.fidelity = fidelity;
        self
    }

    /// This configuration running on the given execution engine.
    pub fn with_engine(mut self, engine: ExecEngine) -> DeviceConfig {
        self.engine = engine;
        self
    }

    /// This configuration with the given host-side block scheduling.
    pub fn with_host_exec(mut self, mode: ExecMode) -> DeviceConfig {
        self.host_exec = mode;
        self
    }

    /// This configuration with the data-race detector switched on or off.
    #[deprecated(
        since = "0.3.0",
        note = "use with_fidelity(SimFidelity::TimedWithRaces) / with_fidelity(SimFidelity::Timed)"
    )]
    pub fn with_race_detect(self, on: bool) -> DeviceConfig {
        self.with_fidelity(if on {
            SimFidelity::TimedWithRaces
        } else {
            SimFidelity::Timed
        })
    }

    /// A deliberately tiny device (2 SMs) for tests that need to observe
    /// SM-level load imbalance without large launches.
    pub fn tiny_test_device() -> DeviceConfig {
        DeviceConfig {
            name: "tiny-test".to_string(),
            num_sms: 2,
            max_threads_per_block: 256,
            max_blocks_per_sm: 2,
            max_threads_per_sm: 256,
            max_warps_per_sm: 8,
            ..DeviceConfig::tesla_c2070()
        }
    }

    /// Cycles → nanoseconds under this clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.clock_ghz
    }

    /// Warps needed for `threads` threads.
    pub fn warps_for(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }

    /// Validates internal consistency (used by `Device::new` debug builds).
    pub fn validate(&self) -> Result<(), String> {
        if self.warp_size == 0 || !self.warp_size.is_power_of_two() || self.warp_size > 32 {
            return Err(format!(
                "warp_size {} must be a power of two <= 32",
                self.warp_size
            ));
        }
        if self.num_sms == 0 {
            return Err("num_sms must be positive".into());
        }
        if self.clock_ghz <= 0.0 || self.mem_bandwidth_gbps <= 0.0 || self.pcie_gbps <= 0.0 {
            return Err("clock and bandwidths must be positive".into());
        }
        if self.transaction_bytes == 0 || !self.transaction_bytes.is_power_of_two() {
            return Err(format!(
                "transaction_bytes {} must be a power of two",
                self.transaction_bytes
            ));
        }
        if self.max_threads_per_block == 0 || self.max_threads_per_sm < self.max_threads_per_block {
            return Err("thread limits inconsistent".into());
        }
        #[cfg(not(any(test, feature = "interp-oracle")))]
        if matches!(self.engine, ExecEngine::Interpreter) {
            return Err(
                "ExecEngine::Interpreter requires the `interp-oracle` feature of agg-gpu-sim"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2070_matches_paper_description() {
        let c = DeviceConfig::tesla_c2070();
        assert_eq!(c.num_sms, 14);
        assert_eq!(c.cores_per_sm, 32);
        assert_eq!(c.warp_size, 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cycle_conversion() {
        let c = DeviceConfig::tesla_c2070();
        // 1.15 GHz: 1150 cycles = 1000 ns
        assert!((c.cycles_to_ns(1150.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn warps_for_rounds_up() {
        let c = DeviceConfig::tesla_c2070();
        assert_eq!(c.warps_for(1), 1);
        assert_eq!(c.warps_for(32), 1);
        assert_eq!(c.warps_for(33), 2);
        assert_eq!(c.warps_for(0), 0);
    }

    #[test]
    fn fidelity_and_engine_default_to_timed_bytecode() {
        let c = DeviceConfig::tesla_c2070();
        assert_eq!(c.fidelity, SimFidelity::Timed);
        assert_eq!(c.engine, ExecEngine::Bytecode);
        assert_eq!(c.host_exec, ExecMode::Sequential);
        let c = c
            .with_fidelity(SimFidelity::Functional)
            .with_engine(ExecEngine::Interpreter)
            .with_host_exec(ExecMode::Parallel);
        assert_eq!(c.fidelity, SimFidelity::Functional);
        assert_eq!(c.engine, ExecEngine::Interpreter);
        assert_eq!(c.host_exec, ExecMode::Parallel);
    }

    #[test]
    fn deprecated_race_toggle_maps_to_fidelity() {
        #[allow(deprecated)]
        let on = DeviceConfig::tesla_c2070().with_race_detect(true);
        assert_eq!(on.fidelity, SimFidelity::TimedWithRaces);
        #[allow(deprecated)]
        let off = on.with_race_detect(false);
        assert_eq!(off.fidelity, SimFidelity::Timed);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut c = DeviceConfig::tesla_c2070();
        c.warp_size = 20;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::tesla_c2070();
        c.num_sms = 0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::tesla_c2070();
        c.transaction_bytes = 100;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::tesla_c2070();
        c.max_threads_per_sm = 16;
        assert!(c.validate().is_err());
    }
}
