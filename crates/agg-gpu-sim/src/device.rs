//! The device facade: allocation, transfers, kernel launches, and the
//! simulation clock.
//!
//! Every operation that would cost time on real hardware advances the
//! device's modeled clock: kernel launches (per the timing model),
//! host<->device copies (PCIe model), and device-side fills. Host-side
//! *inspection* that the algorithm under study would not perform can use
//! the `debug_*` accessors, which are free.

use crate::config::{DeviceConfig, SimFidelity};
use crate::error::SimError;
use crate::exec::grid::{run_grid, Grid, LaunchArgs};
use crate::ir::builder::Kernel;
use crate::mem::global::{DevicePtr, GlobalMemory};
use crate::mem::race::RaceSummary;
use crate::mem::transfer::transfer_ns;
use crate::timing::report::{KernelStats, LaunchReport, ProfileReport};

pub use crate::config::ExecMode;

/// A simulated GPU: memory + execution engine + clock.
pub struct Device {
    cfg: DeviceConfig,
    mem: GlobalMemory,
    kernel_ns: f64,
    transfer_ns_total: f64,
    launches: u64,
    cumulative: KernelStats,
    profile: ProfileReport,
    races: RaceSummary,
}

impl Device {
    /// Creates a device, validating the configuration. Execution
    /// behaviour — fidelity, engine, host threading — is fixed by the
    /// [`DeviceConfig`] at construction (see [`DeviceConfig::with_fidelity`]
    /// and friends).
    pub fn try_new(cfg: DeviceConfig) -> Result<Device, SimError> {
        cfg.validate()
            .map_err(|detail| SimError::InvalidConfig { detail })?;
        Ok(Device {
            cfg,
            mem: GlobalMemory::new(),
            kernel_ns: 0.0,
            transfer_ns_total: 0.0,
            launches: 0,
            cumulative: KernelStats::default(),
            profile: ProfileReport::default(),
            races: RaceSummary::default(),
        })
    }

    /// Creates a device. Panics on an internally inconsistent config.
    #[deprecated(
        since = "0.3.0",
        note = "use Device::try_new, which returns Err(SimError::InvalidConfig) instead of panicking"
    )]
    pub fn new(cfg: DeviceConfig) -> Device {
        match Device::try_new(cfg) {
            Ok(dev) => dev,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the host-side execution mode.
    #[deprecated(
        since = "0.3.0",
        note = "set it on the config instead: DeviceConfig::with_host_exec(ExecMode::..)"
    )]
    pub fn with_mode(mut self, mode: ExecMode) -> Device {
        self.cfg.host_exec = mode;
        self
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Allocates `len` zeroed words (no modeled cost, like `cudaMalloc`
    /// rounding errors we ignore).
    pub fn alloc(&mut self, label: impl Into<String>, len: usize) -> DevicePtr {
        self.mem.alloc(label, len)
    }

    /// Allocates and uploads a host slice, charging a H2D transfer.
    pub fn alloc_from_slice(&mut self, label: impl Into<String>, src: &[u32]) -> DevicePtr {
        self.transfer_ns_total += transfer_ns(&self.cfg, src.len() * 4);
        self.mem.alloc_from_slice(label, src)
    }

    /// Allocates `len` words set to `fill`, charging a device-side memset
    /// (bandwidth-bound, no PCIe).
    pub fn alloc_filled(&mut self, label: impl Into<String>, len: usize, fill: u32) -> DevicePtr {
        if !matches!(self.cfg.fidelity, SimFidelity::Functional) {
            self.kernel_ns += self.memset_cost(len);
        }
        self.mem.alloc_filled(label, len, fill)
    }

    /// Downloads a buffer, charging a D2H transfer.
    pub fn read(&mut self, ptr: DevicePtr) -> Vec<u32> {
        let words = self.mem.len(ptr).unwrap_or(0);
        self.transfer_ns_total += transfer_ns(&self.cfg, words * 4);
        self.mem.read(ptr).expect("read of unallocated buffer")
    }

    /// Downloads the first `words` words of a buffer, charging a D2H
    /// transfer for just those bytes. The sharded runtime drains its
    /// variable-length pair buffers this way instead of paying for the
    /// unused tail.
    pub fn read_prefix(&mut self, ptr: DevicePtr, words: usize) -> Result<Vec<u32>, SimError> {
        self.transfer_ns_total += transfer_ns(&self.cfg, words * 4);
        self.mem.read_prefix(ptr, words)
    }

    /// Downloads one word (4-byte D2H; latency-dominated — this is what
    /// the adaptive runtime pays every time it samples the working set
    /// size).
    pub fn read_word(&mut self, ptr: DevicePtr, index: usize) -> Result<u32, SimError> {
        self.transfer_ns_total += transfer_ns(&self.cfg, 4);
        self.mem.read_word(ptr, index)
    }

    /// Uploads a host slice over an existing buffer, charging H2D.
    pub fn write(&mut self, ptr: DevicePtr, src: &[u32]) -> Result<(), SimError> {
        self.transfer_ns_total += transfer_ns(&self.cfg, src.len() * 4);
        self.mem.write(ptr, src)
    }

    /// Uploads a host slice over the front of an existing (possibly
    /// longer) buffer, charging H2D for just those bytes.
    pub fn write_prefix(&mut self, ptr: DevicePtr, src: &[u32]) -> Result<(), SimError> {
        self.transfer_ns_total += transfer_ns(&self.cfg, src.len() * 4);
        self.mem.write_prefix(ptr, src)
    }

    /// Uploads one word.
    pub fn write_word(&mut self, ptr: DevicePtr, index: usize, value: u32) -> Result<(), SimError> {
        self.transfer_ns_total += transfer_ns(&self.cfg, 4);
        self.mem.write_word(ptr, index, value)
    }

    /// Device-side memset, charging bandwidth time (free under
    /// [`SimFidelity::Functional`], like any other device-side work).
    pub fn fill(&mut self, ptr: DevicePtr, value: u32) -> Result<(), SimError> {
        if !matches!(self.cfg.fidelity, SimFidelity::Functional) {
            let words = self.mem.len(ptr)?;
            self.kernel_ns += self.memset_cost(words);
        }
        self.mem.fill(ptr, value)
    }

    fn memset_cost(&self, words: usize) -> f64 {
        self.cfg.launch_overhead_us * 1_000.0 + (words * 4) as f64 / self.cfg.mem_bandwidth_gbps
    }

    /// Launches a kernel, advancing the clock by the modeled launch time.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        grid: Grid,
        args: &LaunchArgs,
    ) -> Result<LaunchReport, SimError> {
        let report = run_grid(
            &self.cfg,
            kernel,
            grid,
            args,
            &self.mem,
            matches!(self.cfg.host_exec, ExecMode::Parallel),
        )?;
        self.kernel_ns += report.time_ns;
        self.launches += 1;
        self.cumulative += report.stats;
        self.profile.record(&self.cfg, &report);
        if let Some(r) = &report.races {
            self.races.absorb_report(r);
        }
        Ok(report)
    }

    /// Toggles per-launch race detection. Takes effect from the next
    /// launch.
    #[deprecated(
        since = "0.3.0",
        note = "set it on the config instead: DeviceConfig::with_fidelity(SimFidelity::TimedWithRaces)"
    )]
    pub fn set_race_detect(&mut self, on: bool) {
        self.cfg.fidelity = if on {
            SimFidelity::TimedWithRaces
        } else {
            SimFidelity::Timed
        };
    }

    /// Race counters accumulated over every race-checked launch since
    /// construction or the last [`Device::reset_clock`]. Monotonic:
    /// snapshot the counts before a run to attribute races to it.
    pub fn race_summary(&self) -> &RaceSummary {
        &self.races
    }

    /// Per-kernel launch profiles accumulated since construction or the
    /// last [`Device::reset_clock`]. Monotonic: snapshot it before a run
    /// and use [`ProfileReport::since`] to isolate that run's launches.
    pub fn profile(&self) -> &ProfileReport {
        &self.profile
    }

    /// Kernel statistics summed over every launch since the last
    /// [`Device::reset_clock`] — lets callers attribute memory traffic,
    /// divergence, and atomics to whole multi-launch algorithms.
    pub fn cumulative_stats(&self) -> KernelStats {
        self.cumulative
    }

    /// Total modeled time: kernels + transfers, in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.kernel_ns + self.transfer_ns_total
    }

    /// Modeled kernel time only.
    pub fn kernel_ns(&self) -> f64 {
        self.kernel_ns
    }

    /// Modeled transfer time only.
    pub fn transfer_time_ns(&self) -> f64 {
        self.transfer_ns_total
    }

    /// Number of kernel launches so far.
    pub fn launch_count(&self) -> u64 {
        self.launches
    }

    /// Resets the clock and launch counter (memory is retained).
    pub fn reset_clock(&mut self) {
        self.kernel_ns = 0.0;
        self.transfer_ns_total = 0.0;
        self.launches = 0;
        self.cumulative = KernelStats::default();
        self.profile = ProfileReport::default();
        self.races = RaceSummary::default();
    }

    /// Free-of-charge buffer download for tests and debugging.
    pub fn debug_read(&self, ptr: DevicePtr) -> Result<Vec<u32>, SimError> {
        self.mem.read(ptr)
    }

    /// Free-of-charge single-word read for tests and debugging.
    pub fn debug_read_word(&self, ptr: DevicePtr, index: usize) -> Result<u32, SimError> {
        self.mem.read_word(ptr, index)
    }

    /// Free-of-charge fill, for host-side re-initialization in tests.
    pub fn debug_fill(&self, ptr: DevicePtr, value: u32) -> Result<(), SimError> {
        self.mem.fill(ptr, value)
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.mem.allocation_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::KernelBuilder;

    #[test]
    fn clock_advances_on_every_charged_operation() {
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        assert_eq!(dev.elapsed_ns(), 0.0);
        let p = dev.alloc_from_slice("x", &[0; 1024]);
        let after_upload = dev.elapsed_ns();
        assert!(after_upload > 0.0);
        let _ = dev.read(p);
        assert!(dev.elapsed_ns() > after_upload);
        assert!(dev.transfer_time_ns() > 0.0);
        assert_eq!(dev.kernel_ns(), 0.0);
    }

    #[test]
    fn launch_charges_kernel_time_and_counts() {
        let mut k = KernelBuilder::new("nop");
        let b = k.buf_param();
        let tid = k.global_thread_id();
        k.store(b, tid.clone().rem(4u32), tid.clone());
        let kernel = k.build().unwrap();
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let p = dev.alloc("b", 4);
        let r = dev
            .launch(&kernel, Grid::new(1, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        assert!(r.time_ns >= 7_000.0); // at least launch overhead
        assert_eq!(dev.launch_count(), 1);
        assert!((dev.kernel_ns() - r.time_ns).abs() < 1e-9);
    }

    #[test]
    fn device_profile_tracks_launches_per_kernel() {
        let mut k = KernelBuilder::new("prof-k");
        let b = k.buf_param();
        let tid = k.global_thread_id();
        k.store(b, tid.clone().rem(4u32), tid.clone());
        let kernel = k.build().unwrap();
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let p = dev.alloc("b", 4);
        assert!(dev.profile().is_empty());
        dev.launch(&kernel, Grid::new(1, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        let snap = dev.profile().clone();
        dev.launch(&kernel, Grid::new(1, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        let prof = dev.profile();
        assert_eq!(prof.total_launches(), 2);
        let entry = prof.get("prof-k").unwrap();
        assert_eq!(entry.launches, 2);
        assert!(entry.compute_ns > 0.0);
        assert!(entry.stats.stores > 0);
        // the delta since the snapshot is exactly one launch
        assert_eq!(prof.since(&snap).get("prof-k").unwrap().launches, 1);
        dev.reset_clock();
        assert!(dev.profile().is_empty());
    }

    #[test]
    fn debug_accessors_are_free() {
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let p = dev.alloc("x", 8);
        dev.reset_clock();
        let _ = dev.debug_read(p).unwrap();
        let _ = dev.debug_read_word(p, 0).unwrap();
        dev.debug_fill(p, 3).unwrap();
        assert_eq!(dev.elapsed_ns(), 0.0);
        assert_eq!(dev.debug_read_word(p, 2).unwrap(), 3);
    }

    #[test]
    fn fill_and_alloc_filled_charge_memset() {
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let p = dev.alloc_filled("x", 1000, 7);
        assert!(dev.kernel_ns() > 0.0);
        assert_eq!(dev.debug_read_word(p, 999).unwrap(), 7);
        let before = dev.kernel_ns();
        dev.fill(p, 9).unwrap();
        assert!(dev.kernel_ns() > before);
    }

    #[test]
    fn reset_clock_clears_accounting_but_not_memory() {
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let p = dev.alloc_from_slice("x", &[5, 6]);
        dev.reset_clock();
        assert_eq!(dev.elapsed_ns(), 0.0);
        assert_eq!(dev.launch_count(), 0);
        assert_eq!(dev.debug_read(p).unwrap(), vec![5, 6]);
    }

    #[test]
    fn race_detector_catches_injected_harmful_race() {
        // Every thread stores its own tid into word 0: concurrent stores
        // of distinct values, the canonical harmful race.
        let mut k = KernelBuilder::new("racy");
        let b = k.buf_param();
        let tid = k.global_thread_id();
        k.store(b, 0u32, tid.clone());
        let kernel = k.build().unwrap();
        let mut dev = Device::try_new(
            DeviceConfig::tesla_c2070().with_fidelity(SimFidelity::TimedWithRaces),
        )
        .unwrap();
        let p = dev.alloc("out", 1);
        let r = dev
            .launch(&kernel, Grid::new(2, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        let races = r.races.expect("detection enabled");
        assert!(!races.is_clean());
        assert_eq!(
            races.harmful[0].class,
            crate::mem::race::RaceClass::ConflictingStores
        );
        assert_eq!(races.harmful[0].buffer, "out");
        assert!(!dev.race_summary().is_clean());
        assert_eq!(dev.race_summary().launches_checked, 1);
    }

    #[test]
    fn race_detector_passes_benign_flag_raise() {
        // Every thread stores 1 into word 0 — racing, but same value.
        let mut k = KernelBuilder::new("flag");
        let b = k.buf_param();
        k.store(b, 0u32, 1u32);
        let kernel = k.build().unwrap();
        for host_exec in [ExecMode::Sequential, ExecMode::Parallel] {
            let cfg = DeviceConfig::tesla_c2070()
                .with_fidelity(SimFidelity::TimedWithRaces)
                .with_host_exec(host_exec);
            let mut dev = Device::try_new(cfg).unwrap();
            let p = dev.alloc("flag", 1);
            let r = dev
                .launch(&kernel, Grid::new(4, 32), &LaunchArgs::new().bufs([p]))
                .unwrap();
            let races = r.races.expect("detection enabled");
            assert!(races.is_clean());
            assert_eq!(
                races.benign[0].class,
                crate::mem::race::RaceClass::SameValueStore
            );
            assert!(dev.race_summary().is_clean());
            assert_eq!(dev.race_summary().benign_words, 1);
        }
    }

    #[test]
    fn race_detection_off_by_default_and_reset_clears_summary() {
        let mut k = KernelBuilder::new("flag");
        let b = k.buf_param();
        k.store(b, 0u32, 1u32);
        let kernel = k.build().unwrap();
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let p = dev.alloc("flag", 1);
        let r = dev
            .launch(&kernel, Grid::new(2, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        assert!(r.races.is_none());
        assert_eq!(dev.race_summary().launches_checked, 0);

        let mut dev = Device::try_new(
            DeviceConfig::tesla_c2070().with_fidelity(SimFidelity::TimedWithRaces),
        )
        .unwrap();
        let p = dev.alloc("flag", 1);
        dev.launch(&kernel, Grid::new(2, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        assert_eq!(dev.race_summary().launches_checked, 1);
        dev.reset_clock();
        assert_eq!(
            dev.race_summary(),
            &crate::mem::race::RaceSummary::default()
        );
    }

    #[test]
    fn functional_fidelity_runs_kernels_without_advancing_the_clock() {
        let mut k = KernelBuilder::new("nop");
        let b = k.buf_param();
        let tid = k.global_thread_id();
        k.store(b, tid.clone().rem(4u32), tid.clone());
        let kernel = k.build().unwrap();
        let mut dev =
            Device::try_new(DeviceConfig::tesla_c2070().with_fidelity(SimFidelity::Functional))
                .unwrap();
        let p = dev.alloc("b", 4);
        let r = dev
            .launch(&kernel, Grid::new(1, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        assert_eq!(r.time_ns, 0.0);
        assert_eq!(r.stats, KernelStats::default());
        assert!(r.races.is_none());
        assert_eq!(dev.kernel_ns(), 0.0);
        assert_eq!(dev.launch_count(), 1);
        // ...but the memory effects are real.
        assert_eq!(dev.debug_read(p).unwrap(), vec![28, 29, 30, 31]);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = DeviceConfig::tesla_c2070();
        cfg.num_sms = 0;
        let err = Device::try_new(cfg).err().expect("invalid config must be rejected");
        match err {
            SimError::InvalidConfig { detail } => {
                assert!(detail.contains("num_sms"), "detail: {detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid DeviceConfig")]
    fn bad_config_panics() {
        let mut cfg = DeviceConfig::tesla_c2070();
        cfg.num_sms = 0;
        #[allow(deprecated)]
        let _ = Device::new(cfg);
    }

    /// The sanctioned exercise of the deprecated 0.2 surface: constructor,
    /// mode setter, race toggle. Everything else in the workspace must use
    /// the `DeviceConfig` builders (`deprecated = "deny"` enforces it).
    #[test]
    #[allow(deprecated)]
    fn deprecated_device_surface_still_works() {
        let mut k = KernelBuilder::new("flag");
        let b = k.buf_param();
        k.store(b, 0u32, 1u32);
        let kernel = k.build().unwrap();
        let mut dev = Device::new(DeviceConfig::tesla_c2070()).with_mode(ExecMode::Parallel);
        assert_eq!(dev.config().host_exec, ExecMode::Parallel);
        dev.set_race_detect(true);
        assert_eq!(dev.config().fidelity, SimFidelity::TimedWithRaces);
        let p = dev.alloc("flag", 1);
        let r = dev
            .launch(&kernel, Grid::new(2, 32), &LaunchArgs::new().bufs([p]))
            .unwrap();
        assert!(r.races.is_some());
        dev.set_race_detect(false);
        assert_eq!(dev.config().fidelity, SimFidelity::Timed);
    }
}
