//! Grid-level launch machinery: launch configuration, argument binding,
//! validation against device limits, and (optionally parallel) block
//! execution.

use crate::config::{DeviceConfig, ExecEngine, SimFidelity};
use crate::error::SimError;
use crate::exec::bytecode::{self, BcScratch};
use crate::ir::builder::Kernel;
use crate::mem::global::{Buffer, DevicePtr, GlobalMemory};
use crate::mem::race::{analyze, AccessRecord};
use crate::timing::cost::BlockCost;
use crate::timing::occupancy::Occupancy;
use crate::timing::report::{finalize_launch, KernelStats, LaunchReport};
use serde::{Deserialize, Serialize};

/// Everything a block needs to execute: the launch's resolved arguments
/// plus geometry. Shared read-only across worker threads.
pub struct GridCtx<'a> {
    pub(crate) cfg: &'a DeviceConfig,
    pub(crate) kernel: &'a Kernel,
    pub(crate) bufs: Vec<&'a Buffer>,
    pub(crate) scalars: &'a [u32],
    pub(crate) grid_dim: u32,
    pub(crate) block_dim: u32,
}

/// Launch geometry (linearized: the simulator flattens CUDA's 3-D grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    /// Number of thread blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl Grid {
    /// Explicit geometry.
    pub fn new(blocks: u32, threads_per_block: u32) -> Grid {
        Grid {
            blocks,
            threads_per_block,
        }
    }

    /// Enough `threads_per_block`-sized blocks to cover `total_threads`
    /// (the usual `<<<ceil(n/tpb), tpb>>>` idiom).
    pub fn linear(total_threads: u64, threads_per_block: u32) -> Grid {
        let tpb = threads_per_block.max(1);
        let blocks = total_threads.div_ceil(tpb as u64);
        Grid {
            blocks: blocks.min(u32::MAX as u64) as u32,
            threads_per_block: tpb,
        }
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> u64 {
        self.blocks as u64 * self.threads_per_block as u64
    }
}

/// Buffer and scalar arguments for a launch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchArgs {
    /// Device buffers, bound to the kernel's buffer slots in order.
    pub bufs: Vec<DevicePtr>,
    /// Uniform scalars, bound to the kernel's scalar slots in order.
    pub scalars: Vec<u32>,
}

impl LaunchArgs {
    /// Empty argument list.
    pub fn new() -> LaunchArgs {
        LaunchArgs::default()
    }

    /// Sets the buffer arguments.
    pub fn bufs(mut self, bufs: impl IntoIterator<Item = DevicePtr>) -> LaunchArgs {
        self.bufs = bufs.into_iter().collect();
        self
    }

    /// Sets the scalar arguments.
    pub fn scalars(mut self, scalars: impl IntoIterator<Item = u32>) -> LaunchArgs {
        self.scalars = scalars.into_iter().collect();
        self
    }
}

/// Validates a launch against kernel arity and device limits.
pub(crate) fn validate_launch(
    cfg: &DeviceConfig,
    kernel: &Kernel,
    grid: Grid,
    args: &LaunchArgs,
) -> Result<(), SimError> {
    if grid.threads_per_block == 0 {
        return Err(SimError::BadLaunch {
            detail: "threads_per_block must be positive".into(),
        });
    }
    if grid.threads_per_block > cfg.max_threads_per_block {
        return Err(SimError::BadLaunch {
            detail: format!(
                "threads_per_block {} exceeds device limit {}",
                grid.threads_per_block, cfg.max_threads_per_block
            ),
        });
    }
    let shared_bytes = kernel.shared_words * 4;
    if shared_bytes > cfg.shared_mem_per_sm {
        return Err(SimError::BadLaunch {
            detail: format!(
                "kernel uses {} B shared memory, device has {} B per SM",
                shared_bytes, cfg.shared_mem_per_sm
            ),
        });
    }
    if args.bufs.len() != kernel.num_bufs as usize {
        return Err(SimError::ArgumentMismatch {
            detail: format!(
                "kernel '{}' expects {} buffers, got {}",
                kernel.name,
                kernel.num_bufs,
                args.bufs.len()
            ),
        });
    }
    if args.scalars.len() != kernel.num_scalars as usize {
        return Err(SimError::ArgumentMismatch {
            detail: format!(
                "kernel '{}' expects {} scalars, got {}",
                kernel.name,
                kernel.num_scalars,
                args.scalars.len()
            ),
        });
    }
    Ok(())
}

/// Runs every block of the launch through `exec` and collects per-block
/// costs. `parallel` distributes contiguous block ranges over scoped OS
/// threads (results are identical for the data-race-free kernels this
/// workspace writes: cross-block communication goes through atomics).
/// Each worker owns one `S` scratch and, when `detect` is set, one
/// private access log merged into `race_log` in worker order.
fn run_blocks<S, F>(
    g: &GridCtx<'_>,
    grid: Grid,
    parallel: bool,
    detect: bool,
    race_log: &mut Option<Vec<AccessRecord>>,
    exec: F,
) -> Result<Vec<BlockCost>, SimError>
where
    S: Default,
    F: Fn(&GridCtx<'_>, u32, &mut S, Option<&mut Vec<AccessRecord>>) -> Result<BlockCost, SimError>
        + Sync,
{
    if parallel && grid.blocks > 1 {
        let workers = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(grid.blocks as usize);
        let chunk = (grid.blocks as usize).div_ceil(workers);
        let exec = &exec;
        let per_worker = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let lo = (w * chunk) as u32;
                        let hi = ((w + 1) * chunk).min(grid.blocks as usize) as u32;
                        let mut scratch = S::default();
                        let mut out = Vec::with_capacity((hi - lo) as usize);
                        let mut log: Option<Vec<AccessRecord>> = detect.then(Vec::new);
                        for b in lo..hi {
                            out.push(exec(g, b, &mut scratch, log.as_mut())?);
                        }
                        Ok::<_, SimError>((out, log))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulator worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut costs = Vec::with_capacity(grid.blocks as usize);
        for worker_result in per_worker {
            let (worker_costs, worker_log) = worker_result?;
            costs.extend(worker_costs);
            if let (Some(log), Some(worker_log)) = (race_log.as_mut(), worker_log) {
                log.extend(worker_log);
            }
        }
        Ok(costs)
    } else {
        let mut scratch = S::default();
        let mut out = Vec::with_capacity(grid.blocks as usize);
        for b in 0..grid.blocks {
            out.push(exec(g, b, &mut scratch, race_log.as_mut())?);
        }
        Ok(out)
    }
}

/// Runs a launch end to end: validation, argument binding, block
/// execution on the configured [`ExecEngine`], and report assembly per
/// the configured [`SimFidelity`].
pub(crate) fn run_grid(
    cfg: &DeviceConfig,
    kernel: &Kernel,
    grid: Grid,
    args: &LaunchArgs,
    mem: &GlobalMemory,
    parallel: bool,
) -> Result<LaunchReport, SimError> {
    validate_launch(cfg, kernel, grid, args)?;
    let bufs = args
        .bufs
        .iter()
        .map(|&p| mem.buffer(p))
        .collect::<Result<Vec<_>, _>>()?;
    let g = GridCtx {
        cfg,
        kernel,
        bufs,
        scalars: &args.scalars,
        grid_dim: grid.blocks,
        block_dim: grid.threads_per_block,
    };
    let timed = !matches!(cfg.fidelity, SimFidelity::Functional);
    let detect = matches!(cfg.fidelity, SimFidelity::TimedWithRaces);
    let mut race_log: Option<Vec<AccessRecord>> = detect.then(Vec::new);
    let costs: Vec<BlockCost> = match cfg.engine {
        ExecEngine::Bytecode => {
            let bc = kernel.bytecode();
            run_blocks::<BcScratch, _>(&g, grid, parallel, detect, &mut race_log, |g, b, s, l| {
                bytecode::run_block(g, bc, b, s, l, timed)
            })?
        }
        #[cfg(any(test, feature = "interp-oracle"))]
        ExecEngine::Interpreter => {
            use crate::exec::interp;
            run_blocks::<interp::Scratch, _>(&g, grid, parallel, detect, &mut race_log, |g, b, s, l| {
                interp::run_block(g, b, s, l)
            })?
        }
        #[cfg(not(any(test, feature = "interp-oracle")))]
        ExecEngine::Interpreter => {
            return Err(SimError::BadLaunch {
                detail: "ExecEngine::Interpreter requires the `interp-oracle` feature of agg-gpu-sim"
                    .into(),
            })
        }
    };
    let mut report = if timed {
        finalize_launch(
            cfg,
            &kernel.name,
            grid.blocks,
            grid.threads_per_block,
            kernel.shared_words * 4,
            &costs,
        )
    } else {
        // Fast-functional: memory effects only. The report is all-zero by
        // contract (see `SimFidelity::Functional`), without paying for
        // `finalize_launch`'s latency-hiding model or launch overhead.
        LaunchReport {
            kernel: kernel.name.clone(),
            grid_blocks: grid.blocks,
            block_threads: grid.threads_per_block,
            time_ns: 0.0,
            compute_ns: 0.0,
            mem_ns: 0.0,
            overhead_ns: 0.0,
            occupancy: Occupancy::compute(cfg, grid.threads_per_block, kernel.shared_words * 4),
            stats: KernelStats::default(),
            races: None,
        }
    };
    if let Some(log) = race_log {
        let labels: Vec<&str> = g.bufs.iter().map(|b| b.label.as_str()).collect();
        report.races = Some(analyze(&kernel.name, &labels, &log));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::KernelBuilder;

    fn incr_kernel() -> Kernel {
        let mut k = KernelBuilder::new("incr");
        let buf = k.buf_param();
        let n = k.scalar_param();
        let tid = k.global_thread_id();
        k.if_(tid.clone().lt(n), |k| {
            let v = k.load(buf, tid.clone());
            k.store(buf, tid.clone(), v.add(1u32));
        });
        k.build().unwrap()
    }

    #[test]
    fn grid_linear_covers_threads() {
        let g = Grid::linear(100, 32);
        assert_eq!(g.blocks, 4);
        assert_eq!(g.total_threads(), 128);
        assert_eq!(Grid::linear(0, 32).blocks, 0);
        assert_eq!(Grid::linear(1, 192).blocks, 1);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let cfg = DeviceConfig::tesla_c2070();
        let kernel = incr_kernel();
        for parallel in [false, true] {
            let mut mem = GlobalMemory::new();
            let p = mem.alloc("x", 1000);
            let args = LaunchArgs::new().bufs([p]).scalars([1000]);
            let r = run_grid(
                &cfg,
                &kernel,
                Grid::linear(1000, 192),
                &args,
                &mem,
                parallel,
            )
            .unwrap();
            assert_eq!(mem.read(p).unwrap(), vec![1; 1000]);
            assert!(r.time_ns > 0.0);
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let cfg = DeviceConfig::tesla_c2070();
        let kernel = incr_kernel();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("x", 10);

        let bad_tpb = run_grid(
            &cfg,
            &kernel,
            Grid::new(1, 2048),
            &LaunchArgs::new().bufs([p]).scalars([10]),
            &mem,
            false,
        );
        assert!(matches!(bad_tpb, Err(SimError::BadLaunch { .. })));

        let zero_tpb = run_grid(
            &cfg,
            &kernel,
            Grid::new(1, 0),
            &LaunchArgs::new().bufs([p]).scalars([10]),
            &mem,
            false,
        );
        assert!(matches!(zero_tpb, Err(SimError::BadLaunch { .. })));

        let missing_buf = run_grid(
            &cfg,
            &kernel,
            Grid::new(1, 32),
            &LaunchArgs::new().scalars([10]),
            &mem,
            false,
        );
        assert!(matches!(
            missing_buf,
            Err(SimError::ArgumentMismatch { .. })
        ));

        let missing_scalar = run_grid(
            &cfg,
            &kernel,
            Grid::new(1, 32),
            &LaunchArgs::new().bufs([p]),
            &mem,
            false,
        );
        assert!(matches!(
            missing_scalar,
            Err(SimError::ArgumentMismatch { .. })
        ));
    }

    #[test]
    fn oversized_shared_memory_rejected() {
        let cfg = DeviceConfig::tesla_c2070();
        let mut k = KernelBuilder::new("big-shared");
        k.shared_alloc(20_000); // 80 KB > 48 KB
        let kernel = k.build().unwrap();
        let mem = GlobalMemory::new();
        let r = run_grid(
            &cfg,
            &kernel,
            Grid::new(1, 32),
            &LaunchArgs::new(),
            &mem,
            false,
        );
        assert!(matches!(r, Err(SimError::BadLaunch { .. })));
    }

    #[test]
    fn zero_block_launch_is_legal_noop() {
        let cfg = DeviceConfig::tesla_c2070();
        let kernel = incr_kernel();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("x", 4);
        let r = run_grid(
            &cfg,
            &kernel,
            Grid::new(0, 32),
            &LaunchArgs::new().bufs([p]).scalars([4]),
            &mem,
            false,
        )
        .unwrap();
        assert_eq!(mem.read(p).unwrap(), vec![0; 4]);
        assert_eq!(r.grid_blocks, 0);
    }
}
