//! The warp-synchronous tree-walking interpreter, kept as the
//! differential *oracle* for the bytecode engine (`exec/bytecode.rs`).
//!
//! One block executes as `ceil(block_dim / 32)` warps. Within a phase
//! (a top-level segment between barrier intrinsics) warps run to
//! completion one after another; *within* a warp all lanes step through
//! each statement together under an active-lane mask. Divergence, memory
//! coalescing, atomic serialization, and bank conflicts are measured on
//! the fly and accumulated into a [`BlockCost`].
//!
//! This module is compiled only under `cfg(test)` or the `interp-oracle`
//! feature; production launches run on the bytecode engine, whose
//! timed driver reproduces this interpreter's costs and race stream
//! bit-identically (enforced by the equivalence property tests).

use crate::error::SimError;
use crate::exec::grid::GridCtx;
use crate::ir::expr::{apply_binop, apply_unop, Expr, Special};
use crate::ir::stmt::{AtomicOp, BarrierOp, Stmt};
use crate::mem::coalesce::transactions_for;
use crate::mem::race::{AccessKind, AccessRecord, SHARED_SLOT};
use crate::mem::shared::bank_conflict_replays;
use crate::timing::cost::BlockCost;
use std::sync::atomic::Ordering;

const WARP: u32 = 32;
const FULL_MASK: u32 = u32::MAX;

/// Reusable per-worker scratch space, so running millions of small blocks
/// does not allocate per block.
#[derive(Default)]
pub struct Scratch {
    regs: Vec<u32>,
    shared: Vec<u32>,
    returned: Vec<u32>,
    /// Per-warp barrier epoch (race detection's happens-before clock).
    epochs: Vec<u32>,
    /// Per-warp dynamic statement counter (race detection).
    seqs: Vec<u32>,
}

/// Per-warp mutable view during statement execution.
struct WarpCtx<'a, 'g> {
    g: &'a GridCtx<'g>,
    block_idx: u32,
    /// Thread index of lane 0 within the block.
    warp_base: u32,
    /// This warp's registers, `num_regs * 32`, lane-minor.
    regs: &'a mut [u32],
    /// The block's shared memory.
    shared: &'a mut [u32],
    /// Lanes that executed `Return`.
    returned: &'a mut u32,
    cost: &'a mut BlockCost,
    /// This warp's barrier epoch (bumped at `sync_threads` and barriers).
    epoch: &'a mut u32,
    /// This warp's dynamic statement counter.
    seq: &'a mut u32,
    /// Access log when race detection is enabled.
    log: Option<&'a mut Vec<AccessRecord>>,
}

impl<'a, 'g> WarpCtx<'a, 'g> {
    #[inline]
    fn reg(&self, r: u16, lane: u32) -> u32 {
        self.regs[r as usize * WARP as usize + lane as usize]
    }

    #[inline]
    fn set_reg(&mut self, r: u16, lane: u32, v: u32) {
        self.regs[r as usize * WARP as usize + lane as usize] = v;
    }

    fn eval(&self, e: &Expr, lane: u32) -> Result<u32, SimError> {
        Ok(match e {
            Expr::Imm(v) => *v,
            Expr::Reg(r) => self.reg(r.0, lane),
            Expr::Param(p) => self.g.scalars[*p as usize],
            Expr::Special(s) => {
                let thread_idx = self.warp_base + lane;
                match s {
                    Special::ThreadIdx => thread_idx,
                    Special::BlockIdx => self.block_idx,
                    Special::BlockDim => self.g.block_dim,
                    Special::GridDim => self.g.grid_dim,
                    Special::LaneId => lane,
                    Special::GlobalThreadId => self
                        .block_idx
                        .wrapping_mul(self.g.block_dim)
                        .wrapping_add(thread_idx),
                }
            }
            Expr::Unop(op, a) => apply_unop(*op, self.eval(a, lane)?),
            Expr::Binop(op, a, b) => {
                let (x, y) = (self.eval(a, lane)?, self.eval(b, lane)?);
                apply_binop(*op, x, y).ok_or_else(|| SimError::DivisionByZero {
                    kernel: self.g.kernel.name.clone(),
                })?
            }
            Expr::Select(c, a, b) => {
                if self.eval(c, lane)? != 0 {
                    self.eval(a, lane)?
                } else {
                    self.eval(b, lane)?
                }
            }
        })
    }

    /// Charges issue slots for executing a statement whose expressions
    /// contain `expr_ops` operator nodes, with `mask` lanes active.
    #[inline]
    fn charge(&mut self, expr_ops: u64, mask: u32) {
        let ops = 1 + expr_ops;
        self.cost.issue_cycles += ops;
        self.cost.stats.instructions += ops;
        self.cost.stats.active_lane_instructions += ops * mask.count_ones() as u64;
    }

    /// Appends one access to the race log, if detection is enabled.
    #[inline]
    fn log_access(&mut self, buf: u16, word: u32, kind: AccessKind, value: u32) {
        let (block, warp, epoch, seq) = (
            self.block_idx,
            self.warp_base / WARP,
            *self.epoch,
            *self.seq,
        );
        if let Some(log) = self.log.as_deref_mut() {
            log.push(AccessRecord {
                buf,
                word,
                kind,
                value,
                block,
                warp,
                epoch,
                seq,
            });
        }
    }

    fn oob(&self, buf_slot: u8, index: u64) -> SimError {
        SimError::OutOfBounds {
            kernel: self.g.kernel.name.clone(),
            buffer: self.g.bufs[buf_slot as usize].label.clone(),
            index,
            len: self.g.bufs[buf_slot as usize].data.len(),
        }
    }

    /// Collects byte addresses for the active lanes of a global access and
    /// charges coalesced transactions. Returns per-lane word indices in
    /// `idxs` (parallel to lane numbers; inactive lanes untouched).
    fn global_indices(
        &mut self,
        buf_slot: u8,
        index: &Expr,
        mask: u32,
        idxs: &mut [u32; 32],
    ) -> Result<u32, SimError> {
        let buf = self.g.bufs[buf_slot as usize];
        let len = buf.data.len();
        let mut addrs = [0u64; 32];
        let mut n = 0usize;
        for lane in 0..WARP {
            if mask & (1 << lane) != 0 {
                let i = self.eval(index, lane)?;
                if (i as usize) >= len {
                    return Err(self.oob(buf_slot, i as u64));
                }
                idxs[lane as usize] = i;
                // Buffer id in the high bits keeps distinct buffers in
                // distinct segments.
                addrs[n] = ((buf_slot as u64) << 40) | (i as u64 * 4);
                n += 1;
            }
        }
        let tx = transactions_for(&addrs[..n], self.g.cfg.transaction_bytes);
        self.cost.stats.mem_transactions += tx as u64;
        self.cost.stats.mem_bytes += tx as u64 * self.g.cfg.transaction_bytes as u64;
        self.cost.issue_cycles += tx as u64 * self.g.cfg.mem_issue_cycles;
        Ok(tx)
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], mask_in: u32) -> Result<(), SimError> {
        for s in stmts {
            let mask = mask_in & !*self.returned;
            if mask == 0 {
                return Ok(());
            }
            self.exec_stmt(s, mask)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, mask: u32) -> Result<(), SimError> {
        *self.seq = self.seq.wrapping_add(1);
        match s {
            Stmt::Assign(dst, e) => {
                self.charge(e.op_count(), mask);
                for lane in 0..WARP {
                    if mask & (1 << lane) != 0 {
                        let v = self.eval(e, lane)?;
                        self.set_reg(dst.0, lane, v);
                    }
                }
            }
            Stmt::Load { dst, buf, index } => {
                self.charge(index.op_count(), mask);
                self.cost.stats.loads += 1;
                let mut idxs = [0u32; 32];
                self.global_indices(buf.0, index, mask, &mut idxs)?;
                self.cost.stall_cycles += self.g.cfg.mem_latency_cycles;
                let b = self.g.bufs[buf.0 as usize];
                for lane in 0..WARP {
                    if mask & (1 << lane) != 0 {
                        let v = b.data[idxs[lane as usize] as usize].load(Ordering::Relaxed);
                        self.set_reg(dst.0, lane, v);
                        if self.log.is_some() {
                            self.log_access(buf.0 as u16, idxs[lane as usize], AccessKind::Read, 0);
                        }
                    }
                }
            }
            Stmt::Store { buf, index, value } => {
                self.charge(index.op_count() + value.op_count(), mask);
                self.cost.stats.stores += 1;
                let mut idxs = [0u32; 32];
                self.global_indices(buf.0, index, mask, &mut idxs)?;
                let b = self.g.bufs[buf.0 as usize];
                for lane in 0..WARP {
                    if mask & (1 << lane) != 0 {
                        let v = self.eval(value, lane)?;
                        b.data[idxs[lane as usize] as usize].store(v, Ordering::Relaxed);
                        if self.log.is_some() {
                            self.log_access(
                                buf.0 as u16,
                                idxs[lane as usize],
                                AccessKind::Write,
                                v,
                            );
                        }
                    }
                }
            }
            Stmt::Atomic {
                op,
                buf,
                index,
                value,
                compare,
                old,
            } => {
                let ops = index.op_count()
                    + value.op_count()
                    + compare.as_ref().map_or(0, |c| c.op_count());
                self.charge(ops, mask);
                let bslot = buf.0;
                let blen = self.g.bufs[bslot as usize].data.len();
                // Evaluate operands, apply lane by lane (hardware order is
                // unspecified; ascending lane order is our deterministic
                // choice), and measure address conflicts.
                let mut sorted_idx = [0u32; 32];
                let mut n = 0usize;
                for lane in 0..WARP {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let i = self.eval(index, lane)?;
                    if (i as usize) >= blen {
                        return Err(self.oob(bslot, i as u64));
                    }
                    let v = self.eval(value, lane)?;
                    let cell = &self.g.bufs[bslot as usize].data[i as usize];
                    let prev = match op {
                        AtomicOp::Add => cell.fetch_add(v, Ordering::Relaxed),
                        AtomicOp::Min => cell.fetch_min(v, Ordering::Relaxed),
                        AtomicOp::Max => cell.fetch_max(v, Ordering::Relaxed),
                        AtomicOp::Exch => cell.swap(v, Ordering::Relaxed),
                        AtomicOp::FAdd => {
                            let mut prev = cell.load(Ordering::Relaxed);
                            loop {
                                let next = (f32::from_bits(prev) + f32::from_bits(v)).to_bits();
                                match cell.compare_exchange_weak(
                                    prev,
                                    next,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => break prev,
                                    Err(p) => prev = p,
                                }
                            }
                        }
                        AtomicOp::Cas => {
                            let cmp = self
                                .eval(compare.as_ref().expect("CAS carries a comparand"), lane)?;
                            match cell.compare_exchange(
                                cmp,
                                v,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(o) | Err(o) => o,
                            }
                        }
                    };
                    if let Some(dst) = old {
                        self.set_reg(dst.0, lane, prev);
                    }
                    if self.log.is_some() {
                        self.log_access(bslot as u16, i, AccessKind::Atomic, v);
                    }
                    sorted_idx[n] = i;
                    n += 1;
                }
                sorted_idx[..n].sort_unstable();
                let groups = {
                    let mut g = 0u64;
                    let mut prev = None;
                    for &i in &sorted_idx[..n] {
                        if Some(i) != prev {
                            g += 1;
                            prev = Some(i);
                        }
                    }
                    g
                };
                let conflicts = n as u64 - groups;
                self.cost.stats.atomics += n as u64;
                self.cost.stats.atomic_conflicts += conflicts;
                self.cost.stats.mem_bytes += n as u64 * 4;
                self.cost.issue_cycles += groups * self.g.cfg.atomic_issue_cycles
                    + conflicts * self.g.cfg.atomic_conflict_cycles;
                self.cost.stall_cycles += self.g.cfg.mem_latency_cycles;
            }
            Stmt::SharedLoad { dst, index } => {
                self.charge(index.op_count(), mask);
                self.cost.stats.shared_accesses += 1;
                let replays = self.shared_access(
                    index,
                    mask,
                    |w, lane, dst_reg, v| w.set_reg(dst_reg, lane, v),
                    Some(dst.0),
                    None,
                )?;
                self.cost.stats.shared_replays += replays as u64;
                self.cost.issue_cycles += replays as u64 * self.g.cfg.shared_conflict_cycles;
            }
            Stmt::SharedStore { index, value } => {
                self.charge(index.op_count() + value.op_count(), mask);
                self.cost.stats.shared_accesses += 1;
                let replays =
                    self.shared_access(index, mask, |_, _, _, _| {}, None, Some(value))?;
                self.cost.stats.shared_replays += replays as u64;
                self.cost.issue_cycles += replays as u64 * self.g.cfg.shared_conflict_cycles;
            }
            Stmt::If { cond, then_, else_ } => {
                self.charge(cond.op_count(), mask);
                let mut m_then = 0u32;
                for lane in 0..WARP {
                    if mask & (1 << lane) != 0 && self.eval(cond, lane)? != 0 {
                        m_then |= 1 << lane;
                    }
                }
                let m_else = mask & !m_then;
                if m_then != 0 && m_else != 0 {
                    self.cost.stats.divergent_branches += 1;
                }
                if m_then != 0 {
                    self.exec_stmts(then_, m_then)?;
                }
                if m_else != 0 && !else_.is_empty() {
                    self.exec_stmts(else_, m_else)?;
                }
            }
            Stmt::While { cond, body } => {
                let mut live = mask;
                let mut first = true;
                loop {
                    live &= !*self.returned;
                    self.charge(cond.op_count(), live);
                    let mut m = 0u32;
                    for lane in 0..WARP {
                        if live & (1 << lane) != 0 && self.eval(cond, lane)? != 0 {
                            m |= 1 << lane;
                        }
                    }
                    if !first && m != live && m != 0 {
                        // some lanes left while others loop on: divergence
                        self.cost.stats.divergent_branches += 1;
                    }
                    first = false;
                    live = m;
                    if live == 0 {
                        break;
                    }
                    self.exec_stmts(body, live)?;
                }
            }
            Stmt::Return => {
                self.charge(0, mask);
                *self.returned |= mask;
            }
            Stmt::SyncThreads => {
                self.charge(0, mask);
                self.cost.stats.syncs += 1;
                self.cost.issue_cycles += self.g.cfg.sync_cycles;
                // Happens-before edge: everything this warp did before the
                // sync is ordered before everything any warp does after it.
                // All warps execute the same top-level sync, so their
                // epochs advance in lockstep.
                *self.epoch += 1;
            }
            Stmt::Barrier { .. } => {
                unreachable!("barriers are phase-split before warp execution")
            }
        }
        Ok(())
    }

    /// Shared memory access helper: evaluates indices, bounds-checks,
    /// performs the load (via `sink`) or store (via `value`), and returns
    /// the bank-conflict replay count.
    fn shared_access(
        &mut self,
        index: &Expr,
        mask: u32,
        sink: impl Fn(&mut Self, u32, u16, u32),
        load_dst: Option<u16>,
        value: Option<&Expr>,
    ) -> Result<u32, SimError> {
        let len = self.shared.len();
        let mut words = [0u64; 32];
        let mut lanes = [0u32; 32];
        let mut n = 0usize;
        for lane in 0..WARP {
            if mask & (1 << lane) != 0 {
                let i = self.eval(index, lane)?;
                if (i as usize) >= len {
                    return Err(SimError::SharedOutOfBounds {
                        kernel: self.g.kernel.name.clone(),
                        index: i as u64,
                        len,
                    });
                }
                words[n] = i as u64;
                lanes[n] = lane;
                n += 1;
            }
        }
        let replays = bank_conflict_replays(&words[..n], 32);
        for k in 0..n {
            let (lane, word) = (lanes[k], words[k] as usize);
            if let Some(dst) = load_dst {
                let v = self.shared[word];
                sink(self, lane, dst, v);
                if self.log.is_some() {
                    self.log_access(SHARED_SLOT, word as u32, AccessKind::Read, 0);
                }
            } else if let Some(val) = value {
                let v = self.eval(val, lane)?;
                self.shared[word] = v;
                if self.log.is_some() {
                    self.log_access(SHARED_SLOT, word as u32, AccessKind::Write, v);
                }
            }
        }
        Ok(replays)
    }
}

/// Executes one block of the launch, reusing `scratch` between calls.
/// `log` collects per-word access records when race detection is on.
pub fn run_block(
    g: &GridCtx<'_>,
    block_idx: u32,
    scratch: &mut Scratch,
    mut log: Option<&mut Vec<AccessRecord>>,
) -> Result<BlockCost, SimError> {
    let kernel = g.kernel;
    let warps = g.cfg.warps_for(g.block_dim).max(1);
    let regs_len = kernel.num_regs as usize * WARP as usize * warps as usize;
    scratch.regs.clear();
    scratch.regs.resize(regs_len, 0);
    scratch.shared.clear();
    scratch.shared.resize(kernel.shared_words as usize, 0);
    scratch.returned.clear();
    scratch.returned.resize(warps as usize, 0);
    scratch.epochs.clear();
    scratch.epochs.resize(warps as usize, 0);
    scratch.seqs.clear();
    scratch.seqs.resize(warps as usize, 0);

    let mut cost = BlockCost::default();
    let phases = kernel.phases();
    let regs_per_warp = kernel.num_regs as usize * WARP as usize;

    for (segment, barrier) in phases {
        for w in 0..warps {
            let warp_base = w * WARP;
            let lanes_in_warp = (g.block_dim.saturating_sub(warp_base)).min(WARP);
            if lanes_in_warp == 0 {
                continue;
            }
            let init_mask = if lanes_in_warp == WARP {
                FULL_MASK
            } else {
                (1u32 << lanes_in_warp) - 1
            };
            let (regs, shared, returned) = (
                &mut scratch.regs[w as usize * regs_per_warp..(w as usize + 1) * regs_per_warp],
                &mut scratch.shared,
                &mut scratch.returned[w as usize],
            );
            let mut ctx = WarpCtx {
                g,
                block_idx,
                warp_base,
                regs,
                shared,
                returned,
                cost: &mut cost,
                epoch: &mut scratch.epochs[w as usize],
                seq: &mut scratch.seqs[w as usize],
                log: log.as_deref_mut(),
            };
            ctx.exec_stmts(segment, init_mask)?;
        }
        if let Some(Stmt::Barrier { op, value, dst }) = barrier {
            apply_barrier(g, block_idx, *op, value, dst.0, scratch, warps, &mut cost)?;
            // A block-wide collective synchronizes all warps: re-align the
            // epochs past the highest any warp reached (warps that
            // returned early skipped their in-segment syncs).
            let next = scratch.epochs.iter().copied().max().unwrap_or(0) + 1;
            scratch.epochs.iter_mut().for_each(|e| *e = next);
        }
    }
    Ok(cost)
}

/// Applies a block-wide collective across all warps' live lanes.
#[allow(clippy::too_many_arguments)]
fn apply_barrier(
    g: &GridCtx<'_>,
    block_idx: u32,
    op: BarrierOp,
    value: &Expr,
    dst: u16,
    scratch: &mut Scratch,
    warps: u32,
    cost: &mut BlockCost,
) -> Result<(), SimError> {
    let regs_per_warp = g.kernel.num_regs as usize * WARP as usize;
    // Gather contributions in thread order.
    let mut contributions: Vec<(u32, u32, u32)> = Vec::with_capacity(g.block_dim as usize);
    for w in 0..warps {
        let warp_base = w * WARP;
        let lanes_in_warp = (g.block_dim.saturating_sub(warp_base)).min(WARP);
        let returned = scratch.returned[w as usize];
        for lane in 0..lanes_in_warp {
            let alive = returned & (1 << lane) == 0;
            let (regs, shared) = (
                &mut scratch.regs[w as usize * regs_per_warp..(w as usize + 1) * regs_per_warp],
                &mut scratch.shared,
            );
            let mut ret = returned;
            let mut throwaway = BlockCost::default();
            let (mut epoch0, mut seq0) = (0u32, 0u32);
            let ctx = WarpCtx {
                g,
                block_idx,
                warp_base,
                regs,
                shared,
                returned: &mut ret,
                cost: &mut throwaway,
                epoch: &mut epoch0,
                seq: &mut seq0,
                log: None,
            };
            let v = if alive {
                ctx.eval(value, lane)?
            } else {
                match op {
                    BarrierOp::ReduceMin => u32::MAX,
                    BarrierOp::ReduceAdd | BarrierOp::ScanExclAdd => 0,
                }
            };
            contributions.push((w, lane, v));
        }
    }
    // Compute per-thread results.
    let results: Vec<u32> = match op {
        BarrierOp::ReduceMin => {
            let m = contributions
                .iter()
                .map(|&(_, _, v)| v)
                .min()
                .unwrap_or(u32::MAX);
            vec![m; contributions.len()]
        }
        BarrierOp::ReduceAdd => {
            let s = contributions
                .iter()
                .fold(0u32, |a, &(_, _, v)| a.wrapping_add(v));
            vec![s; contributions.len()]
        }
        BarrierOp::ScanExclAdd => {
            let mut acc = 0u32;
            contributions
                .iter()
                .map(|&(_, _, v)| {
                    let out = acc;
                    acc = acc.wrapping_add(v);
                    out
                })
                .collect()
        }
    };
    for (&(w, lane, _), &r) in contributions.iter().zip(&results) {
        let base = w as usize * regs_per_warp;
        scratch.regs[base + dst as usize * WARP as usize + lane as usize] = r;
    }
    // Analytic cost: a log-depth shared-memory tree with a sync per level,
    // issued once per warp per level (what a hand-written reduction costs).
    let levels = (32 - (g.block_dim.max(2) - 1).leading_zeros()) as u64;
    let per_level = warps as u64 * 3 + g.cfg.sync_cycles;
    cost.issue_cycles += levels * per_level;
    cost.stats.barriers += 1;
    cost.stats.instructions += levels * warps as u64 * 3;
    cost.stats.active_lane_instructions += levels * warps as u64 * 3 * WARP as u64 / 2;
    cost.stats.syncs += levels;
    cost.stats.shared_accesses += levels * warps as u64 * 2;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::ir::builder::{Kernel, KernelBuilder};
    use crate::mem::global::GlobalMemory;

    fn ctx_and_run(
        kernel: &Kernel,
        mem: &GlobalMemory,
        bufs: &[crate::mem::global::DevicePtr],
        scalars: &[u32],
        grid_dim: u32,
        block_dim: u32,
    ) -> Result<Vec<BlockCost>, SimError> {
        let cfg = DeviceConfig::tesla_c2070();
        let g = GridCtx {
            cfg: &cfg,
            kernel,
            bufs: bufs.iter().map(|&p| mem.buffer(p).unwrap()).collect(),
            scalars,
            grid_dim,
            block_dim,
        };
        let mut scratch = Scratch::default();
        (0..grid_dim)
            .map(|b| run_block(&g, b, &mut scratch, None))
            .collect()
    }

    #[test]
    fn assign_and_store_roundtrip() {
        let mut k = KernelBuilder::new("t");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        k.store(out, tid.clone(), tid.clone().mul(3u32));
        let kernel = k.build().unwrap();

        let mut mem = GlobalMemory::new();
        let p = mem.alloc("out", 64);
        ctx_and_run(&kernel, &mem, &[p], &[], 2, 32).unwrap();
        let v = mem.read(p).unwrap();
        assert_eq!(v[0], 0);
        assert_eq!(v[10], 30);
        assert_eq!(v[63], 189);
    }

    #[test]
    fn divergent_if_executes_both_paths_and_counts() {
        // even lanes write 1, odd lanes write 2
        let mut k = KernelBuilder::new("div");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        k.if_else(
            tid.clone().rem(2u32).eq(0u32),
            |k| k.store(out, tid.clone(), 1u32),
            |k| k.store(out, tid.clone(), 2u32),
        );
        let kernel = k.build().unwrap();

        let mut mem = GlobalMemory::new();
        let p = mem.alloc("out", 32);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        let v = mem.read(p).unwrap();
        assert!(v.iter().step_by(2).all(|&x| x == 1));
        assert!(v.iter().skip(1).step_by(2).all(|&x| x == 2));
        assert_eq!(costs[0].stats.divergent_branches, 1);
        assert_eq!(costs[0].stats.stores, 2); // both sides issued
    }

    #[test]
    fn uniform_if_takes_one_path() {
        let mut k = KernelBuilder::new("uni");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        k.if_else(
            Expr::imm(1),
            |k| k.store(out, tid.clone(), 7u32),
            |k| k.store(out, tid.clone(), 9u32),
        );
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("out", 32);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        assert_eq!(costs[0].stats.divergent_branches, 0);
        assert_eq!(costs[0].stats.stores, 1);
        assert!(mem.read(p).unwrap().iter().all(|&x| x == 7));
    }

    #[test]
    fn while_runs_to_slowest_lane() {
        // lane i increments a counter i times; warp pays max iterations.
        let mut k = KernelBuilder::new("w");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        let i = k.let_(0u32);
        k.while_(Expr::Reg(i).lt(tid.clone()), |k| {
            k.assign(i, Expr::Reg(i).add(1u32));
        });
        k.store(out, tid.clone(), i);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("out", 32);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        let v = mem.read(p).unwrap();
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
        // 31 iterations of (cond + body) issued at warp level at least.
        assert!(costs[0].stats.instructions >= 31 * 2);
        assert!(costs[0].stats.divergent_branches >= 1);
    }

    #[test]
    fn return_deactivates_lanes() {
        let mut k = KernelBuilder::new("r");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        k.if_(tid.clone().ge(16u32), |k| k.ret());
        k.store(out, tid.clone(), 5u32);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("out", 32);
        ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        let v = mem.read(p).unwrap();
        assert!(v[..16].iter().all(|&x| x == 5));
        assert!(v[16..].iter().all(|&x| x == 0));
    }

    #[test]
    fn coalesced_vs_scattered_loads() {
        // contiguous: out[tid] = in[tid]
        let mut k = KernelBuilder::new("co");
        let (inp, out) = (k.buf_param(), k.buf_param());
        let tid = k.global_thread_id();
        let v = k.load(inp, tid.clone());
        k.store(out, tid.clone(), v);
        let contiguous = k.build().unwrap();

        // scattered: out[tid] = in[tid * 64]
        let mut k = KernelBuilder::new("sc");
        let (inp, out) = (k.buf_param(), k.buf_param());
        let tid = k.global_thread_id();
        let v = k.load(inp, tid.clone().mul(64u32));
        k.store(out, tid.clone(), v);
        let scattered = k.build().unwrap();

        let mut mem = GlobalMemory::new();
        let big = mem.alloc("in", 64 * 32);
        let out1 = mem.alloc("o1", 32);
        let out2 = mem.alloc("o2", 32);
        let c1 = ctx_and_run(&contiguous, &mem, &[big, out1], &[], 1, 32).unwrap();
        let c2 = ctx_and_run(&scattered, &mem, &[big, out2], &[], 1, 32).unwrap();
        // contiguous: 1 tx for the load; scattered: 32.
        assert!(c2[0].stats.mem_transactions >= c1[0].stats.mem_transactions + 31);
        assert!(c2[0].stats.mem_bytes > c1[0].stats.mem_bytes * 10);
    }

    #[test]
    fn atomics_serialize_on_conflict_and_produce_correct_sum() {
        let mut k = KernelBuilder::new("at");
        let out = k.buf_param();
        k.atomic_add(out, 0u32, 1u32);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("ctr", 1);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 4, 32).unwrap();
        assert_eq!(mem.read_word(p, 0).unwrap(), 128);
        // all 32 lanes hit the same word: 31 conflicts per warp
        assert_eq!(costs[0].stats.atomic_conflicts, 31);
        assert_eq!(costs[0].stats.atomics, 32);
    }

    #[test]
    fn atomics_to_distinct_addresses_do_not_conflict() {
        let mut k = KernelBuilder::new("at2");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        k.atomic_add(out, tid.clone(), 1u32);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("c", 32);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        assert_eq!(costs[0].stats.atomic_conflicts, 0);
        assert_eq!(mem.read(p).unwrap(), vec![1; 32]);
    }

    #[test]
    fn atomic_cas_and_exch_return_old_values() {
        let mut k = KernelBuilder::new("cas");
        let (buf, out) = (k.buf_param(), k.buf_param());
        let lane = k.lane_id();
        // Only lane 0 active via guard.
        k.if_(lane.clone().eq(0u32), |k| {
            let old1 = k.atomic_cas(buf, 0u32, 7u32, 99u32); // matches -> swaps
            k.store(out, 0u32, old1);
            let old2 = k.atomic_cas(buf, 0u32, 7u32, 55u32); // no match
            k.store(out, 1u32, old2);
            let old3 = k.atomic_exch(buf, 0u32, 11u32);
            k.store(out, 2u32, old3);
        });
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let b = mem.alloc_from_slice("b", &[7]);
        let o = mem.alloc("o", 3);
        ctx_and_run(&kernel, &mem, &[b, o], &[], 1, 32).unwrap();
        assert_eq!(mem.read(o).unwrap(), vec![7, 99, 99]);
        assert_eq!(mem.read_word(b, 0).unwrap(), 11);
    }

    #[test]
    fn atomic_fadd_accumulates_floats_across_warps() {
        let mut k = KernelBuilder::new("fadd");
        let out = k.buf_param();
        k.atomic_fadd(out, 0u32, Expr::fimm(0.25));
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("acc", 1);
        ctx_and_run(&kernel, &mem, &[p], &[], 3, 64).unwrap();
        // 3 blocks x 64 threads x 0.25 = 48.0 (exact in binary fp)
        let bits = mem.read_word(p, 0).unwrap();
        assert_eq!(f32::from_bits(bits), 48.0);
    }

    #[test]
    fn float_expressions_flow_through_registers() {
        // out[tid] = bits( (tid as f32) * 1.5 + 0.5 )
        let mut k = KernelBuilder::new("fexpr");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        let f = tid
            .clone()
            .u2f()
            .fmul(Expr::fimm(1.5))
            .fadd(Expr::fimm(0.5));
        k.store(out, tid.clone(), f);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 8);
        ctx_and_run(&kernel, &mem, &[p], &[], 1, 8).unwrap();
        let v = mem.read(p).unwrap();
        for (i, &bits) in v.iter().enumerate() {
            assert_eq!(f32::from_bits(bits), i as f32 * 1.5 + 0.5);
        }
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut k = KernelBuilder::new("oob");
        let b = k.buf_param();
        let tid = k.global_thread_id();
        let v = k.load(b, tid.clone().add(100u32));
        k.store(b, 0u32, v);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("small", 4);
        let err = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut k = KernelBuilder::new("dz");
        let b = k.buf_param();
        let tid = k.global_thread_id();
        k.store(b, 0u32, Expr::imm(4).div(tid.clone()));
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("x", 1);
        let err = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap_err();
        assert!(matches!(err, SimError::DivisionByZero { .. }));
    }

    #[test]
    fn shared_memory_within_block() {
        // shared[tid] = tid; out[tid] = shared[31 - tid]
        let mut k = KernelBuilder::new("sh");
        let out = k.buf_param();
        let base = k.shared_alloc(32);
        let tid = k.thread_idx();
        k.shared_store(tid.clone().add(base), tid.clone());
        k.sync_threads();
        let v = k.shared_load(Expr::imm(31).sub(tid.clone()).add(base));
        k.store(out, tid.clone(), v);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 32);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        let v = mem.read(p).unwrap();
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 31 - i as u32);
        }
        assert!(costs[0].stats.shared_accesses >= 2);
        assert_eq!(costs[0].stats.syncs, 1);
    }

    #[test]
    fn shared_out_of_bounds_traps() {
        let mut k = KernelBuilder::new("shoob");
        let _ = k.buf_param();
        k.shared_alloc(4);
        let tid = k.thread_idx();
        k.shared_store(tid.clone(), 1u32);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 1);
        let err = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap_err();
        assert!(matches!(err, SimError::SharedOutOfBounds { .. }));
    }

    #[test]
    fn block_reduce_min_spans_warps() {
        let mut k = KernelBuilder::new("rmin");
        let out = k.buf_param();
        let tid = k.thread_idx();
        let v = k.let_(Expr::imm(100).sub(tid.clone()));
        let m = k.block_reduce_min(v);
        k.store(out, tid.clone(), m);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 96);
        // one block of 96 threads = 3 warps; min = 100 - 95 = 5
        ctx_and_run(&kernel, &mem, &[p], &[], 1, 96).unwrap();
        assert!(mem.read(p).unwrap().iter().all(|&x| x == 5));
    }

    #[test]
    fn block_scan_excl_add_is_thread_ordered() {
        let mut k = KernelBuilder::new("scan");
        let out = k.buf_param();
        let tid = k.thread_idx();
        let s = k.block_scan_excl_add(1u32);
        k.store(out, tid.clone(), s);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 64);
        ctx_and_run(&kernel, &mem, &[p], &[], 1, 64).unwrap();
        let v = mem.read(p).unwrap();
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
    }

    #[test]
    fn returned_lanes_contribute_identity_to_barrier() {
        let mut k = KernelBuilder::new("rbar");
        let out = k.buf_param();
        let tid = k.thread_idx();
        k.if_(tid.clone().ge(4u32), |k| k.ret());
        let m = k.block_reduce_min(tid.clone());
        k.store(out, tid.clone(), m);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc_filled("o", 32, 77);
        ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        let v = mem.read(p).unwrap();
        assert!(v[..4].iter().all(|&x| x == 0)); // min over lanes 0..4
        assert!(v[4..].iter().all(|&x| x == 77)); // returned lanes did not store
    }

    #[test]
    fn return_inside_while_deactivates_lane_for_rest_of_kernel() {
        // lanes loop until counter == lane; lane 5 returns inside the loop
        // and must not execute the final store.
        let mut k = KernelBuilder::new("ret-in-while");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        let i = k.let_(0u32);
        k.while_(Expr::Reg(i).lt(tid.clone()), |k| {
            k.if_(Expr::Reg(i).eq(4u32).and(tid.clone().eq(5u32)), |k| k.ret());
            k.assign(i, Expr::Reg(i).add(1u32));
        });
        k.store(out, tid.clone(), Expr::Reg(i).add(100u32));
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 8);
        ctx_and_run(&kernel, &mem, &[p], &[], 1, 8).unwrap();
        let v = mem.read(p).unwrap();
        for (lane, &x) in v.iter().enumerate() {
            if lane == 5 {
                assert_eq!(x, 0, "lane 5 returned, no store");
            } else {
                assert_eq!(x, lane as u32 + 100);
            }
        }
    }

    #[test]
    fn nested_divergence_restores_parent_masks() {
        // out[tid] = (tid < 16 ? (tid % 2 ? 1 : 2) : 3) + 10 for all lanes:
        // the trailing store must see the FULL mask again.
        let mut k = KernelBuilder::new("nested");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        let r = k.reg();
        k.if_else(
            tid.clone().lt(16u32),
            |k| {
                k.if_else(
                    tid.clone().rem(2u32).eq(1u32),
                    |k| k.assign(r, 1u32),
                    |k| k.assign(r, 2u32),
                );
            },
            |k| k.assign(r, 3u32),
        );
        k.store(out, tid.clone(), Expr::Reg(r).add(10u32));
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 32);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        let v = mem.read(p).unwrap();
        for (lane, &x) in v.iter().enumerate() {
            let expect = if lane < 16 {
                if lane % 2 == 1 {
                    11
                } else {
                    12
                }
            } else {
                13
            };
            assert_eq!(x, expect, "lane {lane}");
        }
        assert_eq!(costs[0].stats.divergent_branches, 2); // outer + inner
    }

    #[test]
    fn uniform_while_costs_less_than_divergent_while() {
        // uniform: every lane loops 16 times; divergent: lane i loops i times.
        // Same total lane-iterations? No — compare ISSUE cost where the
        // divergent warp pays full-warp issue slots for its longest lane.
        let build = |divergent: bool| {
            let mut k = KernelBuilder::new("w");
            let out = k.buf_param();
            let tid = k.global_thread_id();
            let i = k.let_(0u32);
            let bound = if divergent {
                tid.clone()
            } else {
                Expr::imm(31)
            };
            k.while_(Expr::Reg(i).lt(bound), |k| {
                k.assign(i, Expr::Reg(i).add(1u32));
            });
            k.store(out, tid.clone(), i);
            k.build().unwrap()
        };
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 32);
        let uniform = ctx_and_run(&build(false), &mem, &[p], &[], 1, 32).unwrap();
        let divergent = ctx_and_run(&build(true), &mem, &[p], &[], 1, 32).unwrap();
        // Divergent lanes do HALF the lane-work (avg 15.5 vs 31 iterations)
        // but issue the same number of warp instructions: its SIMT
        // efficiency must be visibly worse, issue cycles about equal.
        let eu = uniform[0].stats.simt_efficiency(32);
        let ed = divergent[0].stats.simt_efficiency(32);
        assert!(ed < 0.75 * eu, "divergent eff {ed} vs uniform {eu}");
        let ratio = divergent[0].issue_cycles as f64 / uniform[0].issue_cycles as f64;
        assert!((0.9..=1.1).contains(&ratio), "issue ratio {ratio}");
    }

    #[test]
    fn kernels_serde_round_trip() {
        let mut k = KernelBuilder::new("serde");
        let b = k.buf_param();
        let n = k.scalar_param();
        let tid = k.global_thread_id();
        k.if_(tid.clone().lt(n), |k| {
            let v = k.load(b, tid.clone());
            k.store(b, tid.clone(), v.add(1u32));
        });
        let m = k.block_reduce_min(0u32);
        let _ = k.let_(m);
        let kernel = k.build().unwrap();
        // The IR derives Serialize/Deserialize; structural equality via
        // Clone exercises the same recursive machinery without adding a
        // serializer dependency.
        let cloned = kernel.clone();
        assert_eq!(kernel, cloned);
        assert!(kernel.to_pseudo_code().contains("blockReduceMin"));
    }

    #[test]
    fn select_is_predication_not_divergence() {
        let mut k = KernelBuilder::new("sel");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        k.store(out, tid.clone(), tid.clone().rem(2u32).select(7u32, 9u32));
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 32);
        let costs = ctx_and_run(&kernel, &mem, &[p], &[], 1, 32).unwrap();
        assert_eq!(costs[0].stats.divergent_branches, 0);
        let v = mem.read(p).unwrap();
        assert!(v
            .iter()
            .enumerate()
            .all(|(i, &x)| x == if i % 2 == 1 { 7 } else { 9 }));
    }

    #[test]
    fn partial_last_warp_masks_extra_lanes() {
        let mut k = KernelBuilder::new("partial");
        let out = k.buf_param();
        let tid = k.global_thread_id();
        k.store(out, tid.clone(), 1u32);
        let kernel = k.build().unwrap();
        let mut mem = GlobalMemory::new();
        let p = mem.alloc("o", 40);
        // 40 threads in one block: warp 1 has only 8 lanes.
        ctx_and_run(&kernel, &mem, &[p], &[], 1, 40).unwrap();
        assert_eq!(mem.read(p).unwrap(), vec![1; 40]);
    }
}
