//! Kernel execution: the warp-synchronous interpreter and the grid
//! scheduler.

pub mod grid;
pub mod interp;

pub use grid::{Grid, LaunchArgs};
