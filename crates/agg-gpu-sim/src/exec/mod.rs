//! Kernel execution: the bytecode engine (compiler + timed/functional
//! drivers), the grid scheduler, and — behind the `interp-oracle`
//! feature — the original tree-walking interpreter kept as a
//! differential oracle.

pub(crate) mod bytecode;
pub mod grid;
#[cfg(any(test, feature = "interp-oracle"))]
pub mod interp;

pub use grid::{Grid, LaunchArgs};
