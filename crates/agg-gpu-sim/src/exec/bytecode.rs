//! The bytecode execution engine: a flat, cache-friendly lowering of the
//! kernel IR, compiled once per [`Kernel`] and memoized.
//!
//! # Why
//!
//! The tree-walking interpreter (`exec/interp.rs`) re-traverses the
//! `Stmt`/`Expr` AST for every warp of every block — recursive dispatch,
//! pointer chasing through `Box`ed expression nodes, and re-evaluation of
//! loop-invariant leaves (immediates, params, specials) on every
//! statement. The bytecode engine removes all of that:
//!
//! * Statements and expressions are flattened into a linear op array per
//!   phase; execution is a `pc` loop over a dense `Vec<Op>`.
//! * Each warp gets a flat *virtual register file* (`num_vregs * 32`
//!   words, lane-minor). The kernel's IR registers occupy the first
//!   `num_regs` vregs at the same indices the interpreter uses; distinct
//!   `Imm`/`Param`/`Special` leaves are materialized once per warp by a
//!   cost-free prologue; flattened expression temporaries follow.
//! * Hot memory paths (global load/store/atomic with coalescing lookup,
//!   shared accesses with bank-conflict modeling) are dedicated opcodes
//!   that iterate active lanes with bit tricks instead of testing all 32.
//!
//! # Fidelity
//!
//! One op array serves two drivers selected by a const generic:
//!
//! * **timed** (`TIMED = true`) reproduces the interpreter's
//!   [`BlockCost`] stream *bit- and time-identically*: the same charge
//!   points, the same coalescing/bank-conflict/atomic-serialization
//!   accounting in the same order, the same divergence counting, and the
//!   same race-detection access log (epoch/seq happens-before clocks).
//! * **fast-functional** (`TIMED = false`) keeps the memory semantics —
//!   masks, `Return` deactivation, deterministic ascending-lane atomic
//!   order, bounds checks and traps, barrier collectives — but skips
//!   every cost, coalescing, occupancy, and race bookkeeping.
//!
//! The equivalence is enforced by the property tests at the bottom of
//! this file (micro-kernels) and by the full-suite tests in
//! `agg-kernels`/`agg-bench`, with the interpreter kept behind the
//! `interp-oracle` feature as the oracle.
//!
//! # Accepted divergences from the interpreter (trap paths only)
//!
//! Successful launches are bit-identical. When a launch *traps*, the
//! engines agree that it traps, but may differ in which fault is
//! reported when a single statement faults in two ways at once (e.g. an
//! out-of-bounds index on one lane and a division by zero on another):
//! the interpreter interleaves evaluation lane-by-lane, the bytecode
//! engine op-by-op. Partially completed stores before a trap may also
//! differ. Expressions where eager evaluation could *introduce* a trap
//! the interpreter would skip (a `Select` with `Div`/`Rem` in an arm)
//! are compiled to a lazy [`Op::EvalTree`] instead, so trap existence
//! never differs.

use crate::error::SimError;
use crate::ir::builder::Kernel;
use crate::ir::expr::{apply_binop, apply_unop, Binop, Expr, Special, Unop};
use crate::ir::stmt::{AtomicOp, BarrierOp, Stmt};
use crate::mem::coalesce::{transactions_for_words, PatternCache};
use crate::mem::global::Buffer;
use crate::mem::race::{AccessKind, AccessRecord, SHARED_SLOT};
use crate::mem::shared::bank_conflict_replays;
use crate::timing::cost::BlockCost;
use std::sync::atomic::Ordering;

use super::grid::GridCtx;

const WARP: u32 = 32;
const FULL_MASK: u32 = u32::MAX;
/// Sentinel for "no register" in [`Op::AtomicApply`]'s `cmp`/`old`.
const NO_REG: u16 = u16::MAX;

/// One flat instruction. `u16` operands index vregs; `u32` operands are
/// op-array offsets (jump targets) or side-table indices.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Statement prologue: recompute the active mask from the enclosing
    /// list mask and `returned`; if empty, abort the rest of the
    /// enclosing statement list (jump to `end`); otherwise charge
    /// `1 + expr_ops` issue slots and bump the dynamic statement counter.
    Begin { expr_ops: u32, end: u32 },
    /// Folded prologue of a straight-line run of statements whose active
    /// mask provably cannot change mid-run (no control flow, no `Ret`):
    /// one mask recompute and abort check, then the whole run's
    /// compile-time issue-slot total `ops` charged at once, scaled by the
    /// live mask population. Later statements in the run keep only an
    /// [`Op::SeqTick`]. Totals are bit-identical to per-statement
    /// [`Op::Begin`]s because every folded statement would have charged
    /// under the same mask ([`CostStats`](crate::timing::cost::CostStats)
    /// counters are order-independent sums, and traps discard the
    /// launch's costs entirely).
    BeginRun { ops: u32, end: u32 },
    /// Later statement of a folded run: bump the dynamic statement
    /// counter (race-log `seq` identity) — its cost is already charged by
    /// the run's [`Op::BeginRun`].
    SeqTick,
    /// [`Op::Begin`] for `While`: bumps the statement counter but leaves
    /// charging to [`Op::WhileHead`] (the interpreter charges the
    /// condition per iteration, not the statement itself).
    BeginW { end: u32 },
    /// Masked register copy (the root of an `Assign`).
    Mov { dst: u16, src: u16 },
    /// Masked binary ALU op. `Div`/`Rem` trap per ascending active lane.
    Bin { op: Binop, dst: u16, a: u16, b: u16 },
    /// Masked unary ALU op.
    Un { op: Unop, dst: u16, a: u16 },
    /// Masked eager select (both arms proven trap-free at compile time).
    Blend { dst: u16, c: u16, a: u16, b: u16 },
    /// Masked lazy evaluation of `exprs[expr]` — the fallback for
    /// expressions whose eager flattening could introduce a trap the
    /// interpreter's lazy `Select` would skip.
    EvalTree { dst: u16, expr: u32 },
    /// Branch split: partition the statement mask by `c`, count
    /// divergence, and enter the then/else lists.
    IfSplit {
        c: u16,
        else_t: u32,
        end_t: u32,
        has_else: bool,
    },
    /// End of a then-list when an else-list exists: either switch to the
    /// pending else mask or restore the parent list mask and skip it.
    EndThen { end_t: u32 },
    /// End of an `If`: restore the parent list mask.
    EndIf,
    /// Push a loop frame capturing the parent list mask and the entry
    /// live mask.
    WhileEnter,
    /// Loop head: filter the live mask by `returned` and charge the
    /// condition (the interpreter charges even when no lane is live).
    WhileHead { cond_ops: u32 },
    /// Loop test: shrink the live mask by the condition, count
    /// divergence, and exit when empty.
    WhileTest { c: u16, exit: u32 },
    /// Back edge to [`Op::WhileHead`].
    WhileJump { head: u32 },
    /// Global load with coalescing lookup. `site` indexes the per-launch
    /// coalescing-pattern cache.
    LoadG { dst: u16, buf: u8, idx: u16, site: u32 },
    /// Global-store bounds check + coalescing lookup (indices already
    /// flattened; values follow). `site` as in [`Op::LoadG`].
    StoreCheck { buf: u8, idx: u16, site: u32 },
    /// Global store (bounds already checked by [`Op::StoreCheck`]).
    StoreG { buf: u8, idx: u16, val: u16 },
    /// Atomic read-modify-write with serialization accounting. `cmp` and
    /// `old` are [`NO_REG`] when absent.
    AtomicApply {
        op: AtomicOp,
        buf: u8,
        idx: u16,
        val: u16,
        cmp: u16,
        old: u16,
    },
    /// Shared-memory load with bank-conflict modeling.
    LoadS { dst: u16, idx: u16 },
    /// Shared-memory store with bank-conflict modeling.
    StoreS { idx: u16, val: u16 },
    /// Deactivate the active lanes for the rest of the kernel.
    Ret,
    /// `__syncthreads()`: charge sync cycles and advance the barrier
    /// epoch (happens-before clock).
    Sync,
}

/// Per-warp initialization of one leaf vreg (runs once per block per
/// warp, cost-free — leaves are free in the interpreter too, it just
/// re-evaluates them on every use).
#[derive(Debug, Clone)]
enum LeafInit {
    Imm { dst: u16, val: u32 },
    Param { dst: u16, slot: u8 },
    Special { dst: u16, s: Special },
}

/// Block-wide collective closing a phase (run host-side, like the
/// interpreter's `apply_barrier`).
#[derive(Debug, Clone)]
struct BarrierCode {
    op: BarrierOp,
    value: Expr,
    dst: u16,
}

/// One barrier-delimited phase: a flat op array plus the optional
/// collective that closes it.
#[derive(Debug, Clone)]
struct PhaseCode {
    ops: Vec<Op>,
    barrier: Option<BarrierCode>,
}

/// A compiled kernel: flat per-phase op arrays, the leaf prologue, the
/// side table of lazily-evaluated expressions, and the vreg file size.
#[derive(Debug, Clone)]
pub(crate) struct Bytecode {
    phases: Vec<PhaseCode>,
    prologue: Vec<LeafInit>,
    exprs: Vec<Expr>,
    num_vregs: u16,
    /// Global-access sites (one per `LoadG`/`StoreCheck`), sizing the
    /// per-launch coalescing-pattern cache.
    num_sites: u32,
}

impl Bytecode {
    /// Total op count across phases (diagnostics only).
    #[cfg(test)]
    fn op_count(&self) -> usize {
        self.phases.iter().map(|p| p.ops.len()).sum()
    }
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

/// Interned leaf expressions (deduped kernel-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeafKey {
    Imm(u32),
    Param(u8),
    Special(Special),
}

struct Compiler {
    ops: Vec<Op>,
    exprs: Vec<Expr>,
    leaves: Vec<(LeafKey, u16)>,
    num_regs: u16,
    /// First temp vreg: `num_regs + leaves.len()` (temps reset per
    /// statement).
    temp_base: u16,
    /// High-water mark of the vreg file.
    max_vregs: u16,
    /// Next global-access site id.
    sites: u32,
}

/// True if eagerly evaluating `e` could trap (`Div`/`Rem` anywhere in
/// the subtree).
fn contains_trap(e: &Expr) -> bool {
    match e {
        Expr::Imm(_) | Expr::Reg(_) | Expr::Param(_) | Expr::Special(_) => false,
        Expr::Unop(_, a) => contains_trap(a),
        Expr::Binop(op, a, b) => {
            matches!(op, Binop::Div | Binop::Rem) || contains_trap(a) || contains_trap(b)
        }
        Expr::Select(c, a, b) => contains_trap(c) || contains_trap(a) || contains_trap(b),
    }
}

impl Compiler {
    fn intern_leaf(&mut self, key: LeafKey) {
        if !self.leaves.iter().any(|(k, _)| *k == key) {
            let vreg = self
                .num_regs
                .checked_add(self.leaves.len() as u16)
                .expect("vreg file overflow");
            self.leaves.push((key, vreg));
        }
    }

    fn leaf(&self, key: LeafKey) -> u16 {
        self.leaves
            .iter()
            .find(|(k, _)| *k == key)
            .expect("leaf interned during collection")
            .1
    }

    fn collect_leaves_expr(&mut self, e: &Expr) {
        match e {
            Expr::Imm(v) => self.intern_leaf(LeafKey::Imm(*v)),
            Expr::Reg(_) => {}
            Expr::Param(p) => self.intern_leaf(LeafKey::Param(*p)),
            Expr::Special(s) => self.intern_leaf(LeafKey::Special(*s)),
            Expr::Unop(_, a) => self.collect_leaves_expr(a),
            Expr::Binop(_, a, b) => {
                self.collect_leaves_expr(a);
                self.collect_leaves_expr(b);
            }
            // Interning a superset (arms that end up lazily evaluated)
            // only costs idle vregs, never correctness.
            Expr::Select(c, a, b) => {
                self.collect_leaves_expr(c);
                self.collect_leaves_expr(a);
                self.collect_leaves_expr(b);
            }
        }
    }

    fn collect_leaves_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(_, e) => self.collect_leaves_expr(e),
            Stmt::Load { index, .. } | Stmt::SharedLoad { index, .. } => {
                self.collect_leaves_expr(index)
            }
            Stmt::Store { index, value, .. } | Stmt::SharedStore { index, value } => {
                self.collect_leaves_expr(index);
                self.collect_leaves_expr(value);
            }
            Stmt::Atomic {
                index,
                value,
                compare,
                ..
            } => {
                self.collect_leaves_expr(index);
                self.collect_leaves_expr(value);
                if let Some(c) = compare {
                    self.collect_leaves_expr(c);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                self.collect_leaves_expr(cond);
                then_.iter().for_each(|s| self.collect_leaves_stmt(s));
                else_.iter().for_each(|s| self.collect_leaves_stmt(s));
            }
            Stmt::While { cond, body } => {
                self.collect_leaves_expr(cond);
                body.iter().for_each(|s| self.collect_leaves_stmt(s));
            }
            // Barrier values are evaluated lazily host-side.
            Stmt::Return | Stmt::SyncThreads | Stmt::Barrier { .. } => {}
        }
    }

    fn site(&mut self) -> u32 {
        let s = self.sites;
        self.sites += 1;
        s
    }

    fn alloc_temp(&mut self, temp: &mut u16) -> u16 {
        let t = *temp;
        *temp = temp.checked_add(1).expect("vreg file overflow");
        self.max_vregs = self.max_vregs.max(*temp);
        t
    }

    /// Flattens `e` into ops writing its value to the returned vreg.
    fn expr(&mut self, e: &Expr, temp: &mut u16) -> u16 {
        match e {
            Expr::Imm(v) => self.leaf(LeafKey::Imm(*v)),
            Expr::Reg(r) => r.0,
            Expr::Param(p) => self.leaf(LeafKey::Param(*p)),
            Expr::Special(s) => self.leaf(LeafKey::Special(*s)),
            Expr::Unop(op, a) => {
                let va = self.expr(a, temp);
                let dst = self.alloc_temp(temp);
                self.ops.push(Op::Un { op: *op, dst, a: va });
                dst
            }
            Expr::Binop(op, a, b) => {
                let va = self.expr(a, temp);
                let vb = self.expr(b, temp);
                let dst = self.alloc_temp(temp);
                self.ops.push(Op::Bin {
                    op: *op,
                    dst,
                    a: va,
                    b: vb,
                });
                dst
            }
            Expr::Select(c, a, b) => {
                if contains_trap(a) || contains_trap(b) {
                    // Eager evaluation could trap where the interpreter's
                    // lazy Select would not: fall back to tree evaluation
                    // of this subtree.
                    let id = self.exprs.len() as u32;
                    self.exprs.push(e.clone());
                    let dst = self.alloc_temp(temp);
                    self.ops.push(Op::EvalTree { dst, expr: id });
                    dst
                } else {
                    let vc = self.expr(c, temp);
                    let va = self.expr(a, temp);
                    let vb = self.expr(b, temp);
                    let dst = self.alloc_temp(temp);
                    self.ops.push(Op::Blend {
                        dst,
                        c: vc,
                        a: va,
                        b: vb,
                    });
                    dst
                }
            }
        }
    }

    /// Compiles a statement list; every statement's `Begin` aborts to the
    /// end of the list (matching `exec_stmts`, which stops executing the
    /// remaining statements once the mask empties).
    fn stmt_list(&mut self, list: &[Stmt]) {
        let mut begins = Vec::with_capacity(list.len());
        for s in list {
            begins.push(self.stmt(s));
        }
        let end = self.ops.len() as u32;
        for bi in begins {
            match &mut self.ops[bi] {
                Op::Begin { end: e, .. } | Op::BeginW { end: e } => *e = end,
                _ => unreachable!("statement entry is a Begin"),
            }
        }
    }

    /// Compiles one statement, returning the index of its `Begin` op
    /// (patched by [`Compiler::stmt_list`] with the list-end target).
    fn stmt(&mut self, s: &Stmt) -> usize {
        let mut temp = self.temp_base;
        let begin = self.ops.len();
        match s {
            Stmt::Assign(dst, e) => {
                self.ops.push(Op::Begin {
                    expr_ops: e.op_count() as u32,
                    end: 0,
                });
                let src = self.expr(e, &mut temp);
                self.ops.push(Op::Mov { dst: dst.0, src });
            }
            Stmt::Load { dst, buf, index } => {
                self.ops.push(Op::Begin {
                    expr_ops: index.op_count() as u32,
                    end: 0,
                });
                let idx = self.expr(index, &mut temp);
                let site = self.site();
                self.ops.push(Op::LoadG {
                    dst: dst.0,
                    buf: buf.0,
                    idx,
                    site,
                });
            }
            Stmt::Store { buf, index, value } => {
                self.ops.push(Op::Begin {
                    expr_ops: (index.op_count() + value.op_count()) as u32,
                    end: 0,
                });
                let idx = self.expr(index, &mut temp);
                let site = self.site();
                self.ops.push(Op::StoreCheck {
                    buf: buf.0,
                    idx,
                    site,
                });
                let val = self.expr(value, &mut temp);
                self.ops.push(Op::StoreG {
                    buf: buf.0,
                    idx,
                    val,
                });
            }
            Stmt::Atomic {
                op,
                buf,
                index,
                value,
                compare,
                old,
            } => {
                let ops = index.op_count()
                    + value.op_count()
                    + compare.as_ref().map_or(0, |c| c.op_count());
                self.ops.push(Op::Begin {
                    expr_ops: ops as u32,
                    end: 0,
                });
                let idx = self.expr(index, &mut temp);
                let val = self.expr(value, &mut temp);
                let cmp = compare
                    .as_ref()
                    .map_or(NO_REG, |c| self.expr(c, &mut temp));
                self.ops.push(Op::AtomicApply {
                    op: *op,
                    buf: buf.0,
                    idx,
                    val,
                    cmp,
                    old: old.map_or(NO_REG, |r| r.0),
                });
            }
            Stmt::SharedLoad { dst, index } => {
                self.ops.push(Op::Begin {
                    expr_ops: index.op_count() as u32,
                    end: 0,
                });
                let idx = self.expr(index, &mut temp);
                self.ops.push(Op::LoadS { dst: dst.0, idx });
            }
            Stmt::SharedStore { index, value } => {
                self.ops.push(Op::Begin {
                    expr_ops: (index.op_count() + value.op_count()) as u32,
                    end: 0,
                });
                let idx = self.expr(index, &mut temp);
                let val = self.expr(value, &mut temp);
                self.ops.push(Op::StoreS { idx, val });
            }
            Stmt::If { cond, then_, else_ } => {
                self.ops.push(Op::Begin {
                    expr_ops: cond.op_count() as u32,
                    end: 0,
                });
                let c = self.expr(cond, &mut temp);
                let has_else = !else_.is_empty();
                let split = self.ops.len();
                self.ops.push(Op::IfSplit {
                    c,
                    else_t: 0,
                    end_t: 0,
                    has_else,
                });
                self.stmt_list(then_);
                let end_then = if has_else {
                    let i = self.ops.len();
                    self.ops.push(Op::EndThen { end_t: 0 });
                    Some(i)
                } else {
                    None
                };
                let else_t = self.ops.len() as u32;
                if has_else {
                    self.stmt_list(else_);
                }
                self.ops.push(Op::EndIf);
                let end_t = self.ops.len() as u32;
                match &mut self.ops[split] {
                    Op::IfSplit {
                        else_t: et,
                        end_t: en,
                        ..
                    } => {
                        *et = else_t;
                        *en = end_t;
                    }
                    _ => unreachable!(),
                }
                if let Some(i) = end_then {
                    match &mut self.ops[i] {
                        Op::EndThen { end_t: en } => *en = end_t,
                        _ => unreachable!(),
                    }
                }
            }
            Stmt::While { cond, body } => {
                self.ops.push(Op::BeginW { end: 0 });
                self.ops.push(Op::WhileEnter);
                let head = self.ops.len() as u32;
                self.ops.push(Op::WhileHead {
                    cond_ops: cond.op_count() as u32,
                });
                let c = self.expr(cond, &mut temp);
                let test = self.ops.len();
                self.ops.push(Op::WhileTest { c, exit: 0 });
                self.stmt_list(body);
                self.ops.push(Op::WhileJump { head });
                let exit = self.ops.len() as u32;
                match &mut self.ops[test] {
                    Op::WhileTest { exit: e, .. } => *e = exit,
                    _ => unreachable!(),
                }
                // BeginW's list-end patch (from stmt_list) would target
                // the *enclosing* list end; an empty statement mask must
                // instead skip just this statement, which is the same
                // thing because the next Begin re-checks the mask — but
                // the enclosing-list target is what exec_stmts does, so
                // leave it to stmt_list.
            }
            Stmt::Return => {
                self.ops.push(Op::Begin {
                    expr_ops: 0,
                    end: 0,
                });
                self.ops.push(Op::Ret);
            }
            Stmt::SyncThreads => {
                self.ops.push(Op::Begin {
                    expr_ops: 0,
                    end: 0,
                });
                self.ops.push(Op::Sync);
            }
            Stmt::Barrier { .. } => {
                unreachable!("barriers are phase-split before compilation")
            }
        }
        begin
    }
}

/// Cost-folding peephole: rewrites each maximal straight-line run of
/// two or more statements into one [`Op::BeginRun`] (charging the run's
/// compile-time issue-slot total) followed by [`Op::SeqTick`]s at the
/// later statement boundaries.
///
/// A run extends over consecutive [`Op::Begin`]s whose intervening ops
/// are ALU/memory/`Sync` only: nothing in the run can change the active
/// mask (`lmask` moves only at control-flow ops, `returned` only at
/// `Ret`, and both end the run), so every folded statement would have
/// charged under the run-entry mask. Ops are replaced 1:1 in place —
/// jump targets never shift.
fn fold_costs(ops: &mut [Op]) {
    let mut i = 0;
    while i < ops.len() {
        if !matches!(ops[i], Op::Begin { .. }) {
            i += 1;
            continue;
        }
        let mut begins: Vec<usize> = Vec::new();
        let mut total: u64 = 0;
        let mut j = i;
        while j < ops.len() {
            match &ops[j] {
                Op::Begin { expr_ops, .. } => {
                    begins.push(j);
                    total += 1 + *expr_ops as u64;
                }
                Op::Mov { .. }
                | Op::Bin { .. }
                | Op::Un { .. }
                | Op::Blend { .. }
                | Op::EvalTree { .. }
                | Op::LoadG { .. }
                | Op::StoreCheck { .. }
                | Op::StoreG { .. }
                | Op::AtomicApply { .. }
                | Op::LoadS { .. }
                | Op::StoreS { .. }
                | Op::Sync => {}
                _ => break,
            }
            j += 1;
        }
        if begins.len() > 1 {
            let end = match ops[begins[0]] {
                Op::Begin { end, .. } => end,
                _ => unreachable!(),
            };
            ops[begins[0]] = Op::BeginRun {
                ops: u32::try_from(total).expect("folded cost overflow"),
                end,
            };
            for &b in &begins[1..] {
                ops[b] = Op::SeqTick;
            }
        }
        i = j.max(i + 1);
    }
}

/// Compiles `kernel` to bytecode. Pure function of the kernel body —
/// memoized on the kernel via [`Kernel::bytecode`].
pub(crate) fn compile(kernel: &Kernel) -> Bytecode {
    let mut c = Compiler {
        ops: Vec::new(),
        exprs: Vec::new(),
        leaves: Vec::new(),
        num_regs: kernel.num_regs,
        temp_base: 0,
        max_vregs: 0,
        sites: 0,
    };
    for s in &kernel.body {
        c.collect_leaves_stmt(s);
    }
    c.temp_base = c
        .num_regs
        .checked_add(c.leaves.len() as u16)
        .expect("vreg file overflow");
    c.max_vregs = c.temp_base;
    let mut phases = Vec::new();
    for (segment, barrier) in kernel.phases() {
        c.ops = Vec::new();
        c.stmt_list(segment);
        fold_costs(&mut c.ops);
        let barrier = barrier.map(|b| match b {
            Stmt::Barrier { op, value, dst } => BarrierCode {
                op: *op,
                value: value.clone(),
                dst: dst.0,
            },
            _ => unreachable!("phases() only yields Barrier separators"),
        });
        phases.push(PhaseCode {
            ops: std::mem::take(&mut c.ops),
            barrier,
        });
    }
    let prologue = c
        .leaves
        .iter()
        .map(|&(key, dst)| match key {
            LeafKey::Imm(val) => LeafInit::Imm { dst, val },
            LeafKey::Param(slot) => LeafInit::Param { dst, slot },
            LeafKey::Special(s) => LeafInit::Special { dst, s },
        })
        .collect();
    Bytecode {
        phases,
        prologue,
        exprs: c.exprs,
        num_vregs: c.max_vregs,
        num_sites: c.sites,
    }
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

/// Reusable per-worker scratch space (vreg file, shared memory, per-warp
/// masks and clocks), so running millions of small blocks does not
/// allocate per block.
#[derive(Default)]
pub struct BcScratch {
    vregs: Vec<u32>,
    shared: Vec<u32>,
    returned: Vec<u32>,
    epochs: Vec<u32>,
    seqs: Vec<u32>,
    frames: Vec<Frame>,
    /// Per-site coalescing-pattern memo, indexed by `Op::LoadG`/
    /// `Op::StoreCheck` site id. Sound across the blocks of one launch
    /// (same bytecode): `run_blocks` creates a fresh scratch per launch.
    coalesce: Vec<PatternCache>,
}

/// Control-flow frame (per warp, reset per phase segment).
#[derive(Debug, Clone)]
enum Frame {
    If {
        /// Enclosing list mask to restore at `EndIf`/`EndThen`.
        saved: u32,
        /// Pending else mask (0 once entered or absent).
        else_mask: u32,
    },
    Loop {
        /// Enclosing list mask to restore at loop exit.
        saved: u32,
        /// Lanes still iterating.
        live: u32,
        /// First iteration (the first mask shrink is not divergence).
        first: bool,
    },
}

/// The value of a `Special` for one lane.
#[inline]
fn special_value(s: Special, g: &GridCtx<'_>, block_idx: u32, warp_base: u32, lane: u32) -> u32 {
    let thread_idx = warp_base + lane;
    match s {
        Special::ThreadIdx => thread_idx,
        Special::BlockIdx => block_idx,
        Special::BlockDim => g.block_dim,
        Special::GridDim => g.grid_dim,
        Special::LaneId => lane,
        Special::GlobalThreadId => block_idx
            .wrapping_mul(g.block_dim)
            .wrapping_add(thread_idx),
    }
}

/// Lazy recursive evaluation over a warp's vreg file — identical to the
/// interpreter's `eval` (used by [`Op::EvalTree`] and barrier values).
fn eval_expr(
    g: &GridCtx<'_>,
    block_idx: u32,
    warp_base: u32,
    vr: &[u32],
    e: &Expr,
    lane: u32,
) -> Result<u32, SimError> {
    Ok(match e {
        Expr::Imm(v) => *v,
        Expr::Reg(r) => vr[r.0 as usize * WARP as usize + lane as usize],
        Expr::Param(p) => g.scalars[*p as usize],
        Expr::Special(s) => special_value(*s, g, block_idx, warp_base, lane),
        Expr::Unop(op, a) => apply_unop(*op, eval_expr(g, block_idx, warp_base, vr, a, lane)?),
        Expr::Binop(op, a, b) => {
            let x = eval_expr(g, block_idx, warp_base, vr, a, lane)?;
            let y = eval_expr(g, block_idx, warp_base, vr, b, lane)?;
            apply_binop(*op, x, y).ok_or_else(|| SimError::DivisionByZero {
                kernel: g.kernel.name.clone(),
            })?
        }
        Expr::Select(c, a, b) => {
            if eval_expr(g, block_idx, warp_base, vr, c, lane)? != 0 {
                eval_expr(g, block_idx, warp_base, vr, a, lane)?
            } else {
                eval_expr(g, block_idx, warp_base, vr, b, lane)?
            }
        }
    })
}

/// Per-warp mutable view during op execution.
///
/// Costs accumulate in the by-value `acc` (register-friendly: no stores
/// through `&mut BlockCost` on the hot path) and flush into `cost` once
/// per [`WarpExec::exec`] call — i.e. at phase boundaries. `BlockCost`
/// is a sum of order-independent counters, so batched flushing is
/// bit-identical; a trapped launch discards its costs entirely, so the
/// unflushed remainder on the error path is never observable.
struct WarpExec<'a, 'g> {
    g: &'a GridCtx<'g>,
    bc: &'a Bytecode,
    block_idx: u32,
    warp_base: u32,
    /// This warp's vreg file, `num_vregs * 32`, lane-minor.
    vr: &'a mut [u32],
    shared: &'a mut [u32],
    returned: &'a mut u32,
    cost: &'a mut BlockCost,
    /// Batched charges, flushed to `cost` at the end of each phase.
    acc: BlockCost,
    epoch: &'a mut u32,
    seq: &'a mut u32,
    log: Option<&'a mut Vec<AccessRecord>>,
    frames: &'a mut Vec<Frame>,
    coalesce: &'a mut [PatternCache],
}

impl<'a, 'g> WarpExec<'a, 'g> {
    #[inline]
    fn charge(&mut self, expr_ops: u64, mask: u32) {
        let ops = 1 + expr_ops;
        self.acc.issue_cycles += ops;
        self.acc.stats.instructions += ops;
        self.acc.stats.active_lane_instructions += ops * mask.count_ones() as u64;
    }

    /// Charges a folded straight-line run: `ops` total issue slots, all
    /// under one mask.
    #[inline]
    fn charge_run(&mut self, ops: u64, mask: u32) {
        self.acc.issue_cycles += ops;
        self.acc.stats.instructions += ops;
        self.acc.stats.active_lane_instructions += ops * mask.count_ones() as u64;
    }

    #[inline]
    fn log_access(&mut self, buf: u16, word: u32, kind: AccessKind, value: u32) {
        let (block, warp, epoch, seq) = (
            self.block_idx,
            self.warp_base / WARP,
            *self.epoch,
            *self.seq,
        );
        if let Some(log) = self.log.as_deref_mut() {
            log.push(AccessRecord {
                buf,
                word,
                kind,
                value,
                block,
                warp,
                epoch,
                seq,
            });
        }
    }

    fn oob(&self, buf_slot: u8, index: u64) -> SimError {
        SimError::OutOfBounds {
            kernel: self.g.kernel.name.clone(),
            buffer: self.g.bufs[buf_slot as usize].label.clone(),
            index,
            len: self.g.bufs[buf_slot as usize].data.len(),
        }
    }

    fn div0(&self) -> SimError {
        SimError::DivisionByZero {
            kernel: self.g.kernel.name.clone(),
        }
    }

    #[inline]
    fn row(r: u16, lane: u32) -> usize {
        r as usize * WARP as usize + lane as usize
    }

    /// Bounds-checks the active lanes of a global access and (timed)
    /// charges coalesced transactions via the pattern classifier and the
    /// site's pattern cache. All of a warp's addresses target one buffer,
    /// so the word indices alone determine the segment count — no tagged
    /// 64-bit addresses, and no sort for affine/monotone patterns.
    fn global_check<const TIMED: bool>(
        &mut self,
        buf: u8,
        idx: u16,
        site: u32,
        mask: u32,
    ) -> Result<(), SimError> {
        let len = self.g.bufs[buf as usize].data.len();
        let mut words = [0u32; 32];
        let mut n = 0usize;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let i = self.vr[Self::row(idx, lane)];
            if (i as usize) >= len {
                return Err(self.oob(buf, i as u64));
            }
            if TIMED {
                words[n] = i;
                n += 1;
            }
        }
        if TIMED {
            let tx = transactions_for_words(
                &words[..n],
                self.g.cfg.transaction_bytes,
                mask,
                self.coalesce.get_mut(site as usize),
            );
            self.acc.stats.mem_transactions += tx as u64;
            self.acc.stats.mem_bytes += tx as u64 * self.g.cfg.transaction_bytes as u64;
            self.acc.issue_cycles += tx as u64 * self.g.cfg.mem_issue_cycles;
        }
        Ok(())
    }

    fn load_global<const TIMED: bool>(
        &mut self,
        dst: u16,
        buf: u8,
        idx: u16,
        site: u32,
        mask: u32,
    ) -> Result<(), SimError> {
        if TIMED {
            self.acc.stats.loads += 1;
        }
        self.global_check::<TIMED>(buf, idx, site, mask)?;
        if TIMED {
            self.acc.stall_cycles += self.g.cfg.mem_latency_cycles;
        }
        let b: &Buffer = self.g.bufs[buf as usize];
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let i = self.vr[Self::row(idx, lane)];
            let v = b.data[i as usize].load(Ordering::Relaxed);
            self.vr[Self::row(dst, lane)] = v;
            if TIMED && self.log.is_some() {
                self.log_access(buf as u16, i, AccessKind::Read, 0);
            }
        }
        Ok(())
    }

    fn store_global<const TIMED: bool>(&mut self, buf: u8, idx: u16, val: u16, mask: u32) {
        let b: &Buffer = self.g.bufs[buf as usize];
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let i = self.vr[Self::row(idx, lane)];
            let v = self.vr[Self::row(val, lane)];
            b.data[i as usize].store(v, Ordering::Relaxed);
            if TIMED && self.log.is_some() {
                self.log_access(buf as u16, i, AccessKind::Write, v);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn atomic_apply<const TIMED: bool>(
        &mut self,
        op: AtomicOp,
        buf: u8,
        idx: u16,
        val: u16,
        cmp: u16,
        old: u16,
        mask: u32,
    ) -> Result<(), SimError> {
        let b: &Buffer = self.g.bufs[buf as usize];
        let len = b.data.len();
        // Apply lane by lane (hardware order is unspecified; ascending
        // lane order is our deterministic choice), and measure address
        // conflicts.
        let mut sorted_idx = [0u32; 32];
        let mut monotone = true;
        let mut groups_inline = 0u64;
        let mut n = 0usize;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let i = self.vr[Self::row(idx, lane)];
            if (i as usize) >= len {
                return Err(self.oob(buf, i as u64));
            }
            let v = self.vr[Self::row(val, lane)];
            let cell = &b.data[i as usize];
            let prev = match op {
                AtomicOp::Add => cell.fetch_add(v, Ordering::Relaxed),
                AtomicOp::Min => cell.fetch_min(v, Ordering::Relaxed),
                AtomicOp::Max => cell.fetch_max(v, Ordering::Relaxed),
                AtomicOp::Exch => cell.swap(v, Ordering::Relaxed),
                AtomicOp::FAdd => {
                    let mut prev = cell.load(Ordering::Relaxed);
                    loop {
                        let next = (f32::from_bits(prev) + f32::from_bits(v)).to_bits();
                        match cell.compare_exchange_weak(
                            prev,
                            next,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break prev,
                            Err(p) => prev = p,
                        }
                    }
                }
                AtomicOp::Cas => {
                    let c = self.vr[Self::row(cmp, lane)];
                    match cell.compare_exchange(c, v, Ordering::Relaxed, Ordering::Relaxed) {
                        Ok(o) | Err(o) => o,
                    }
                }
            };
            if old != NO_REG {
                self.vr[Self::row(old, lane)] = prev;
            }
            if TIMED && self.log.is_some() {
                self.log_access(buf as u16, i, AccessKind::Atomic, v);
            }
            if TIMED {
                if n == 0 {
                    groups_inline = 1;
                } else if i < sorted_idx[n - 1] {
                    monotone = false;
                } else if i != sorted_idx[n - 1] {
                    groups_inline += 1;
                }
            }
            sorted_idx[n] = i;
            n += 1;
        }
        if TIMED {
            // Distinct-address count: ascending index vectors (the common
            // scatter shape) are counted inline; irregular ones sort.
            let groups = if monotone {
                groups_inline
            } else {
                sorted_idx[..n].sort_unstable();
                let mut g = 0u64;
                let mut prev = None;
                for &i in &sorted_idx[..n] {
                    if Some(i) != prev {
                        g += 1;
                        prev = Some(i);
                    }
                }
                g
            };
            let conflicts = n as u64 - groups;
            self.acc.stats.atomics += n as u64;
            self.acc.stats.atomic_conflicts += conflicts;
            self.acc.stats.mem_bytes += n as u64 * 4;
            self.acc.issue_cycles += groups * self.g.cfg.atomic_issue_cycles
                + conflicts * self.g.cfg.atomic_conflict_cycles;
            self.acc.stall_cycles += self.g.cfg.mem_latency_cycles;
        }
        Ok(())
    }

    /// Shared access: bounds-checks indices, performs the load or store,
    /// and (timed) models bank-conflict replays.
    fn shared_access<const TIMED: bool>(
        &mut self,
        idx: u16,
        load_dst: Option<u16>,
        store_val: Option<u16>,
        mask: u32,
    ) -> Result<(), SimError> {
        if TIMED {
            self.acc.stats.shared_accesses += 1;
        }
        let len = self.shared.len();
        let mut words = [0u64; 32];
        let mut lanes = [0u32; 32];
        let mut n = 0usize;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let i = self.vr[Self::row(idx, lane)];
            if (i as usize) >= len {
                return Err(SimError::SharedOutOfBounds {
                    kernel: self.g.kernel.name.clone(),
                    index: i as u64,
                    len,
                });
            }
            words[n] = i as u64;
            lanes[n] = lane;
            n += 1;
        }
        let replays = if TIMED {
            bank_conflict_replays(&words[..n], 32)
        } else {
            0
        };
        for k in 0..n {
            let (lane, word) = (lanes[k], words[k] as usize);
            if let Some(dst) = load_dst {
                let v = self.shared[word];
                self.vr[Self::row(dst, lane)] = v;
                if TIMED && self.log.is_some() {
                    self.log_access(SHARED_SLOT, word as u32, AccessKind::Read, 0);
                }
            } else if let Some(val) = store_val {
                let v = self.vr[Self::row(val, lane)];
                self.shared[word] = v;
                if TIMED && self.log.is_some() {
                    self.log_access(SHARED_SLOT, word as u32, AccessKind::Write, v);
                }
            }
        }
        if TIMED {
            self.acc.stats.shared_replays += replays as u64;
            self.acc.issue_cycles += replays as u64 * self.g.cfg.shared_conflict_cycles;
        }
        Ok(())
    }

    /// Executes one phase segment's ops with `init_mask` active lanes,
    /// then flushes the batched charges into the block cost.
    fn exec<const TIMED: bool>(&mut self, ops: &[Op], init_mask: u32) -> Result<(), SimError> {
        self.exec_inner::<TIMED>(ops, init_mask)?;
        if TIMED {
            *self.cost += self.acc;
            self.acc = BlockCost::default();
        }
        Ok(())
    }

    fn exec_inner<const TIMED: bool>(&mut self, ops: &[Op], init_mask: u32) -> Result<(), SimError> {
        self.frames.clear();
        let mut lmask = init_mask;
        let mut mask = init_mask;
        let mut pc = 0usize;
        while pc < ops.len() {
            match &ops[pc] {
                Op::Begin { expr_ops, end } => {
                    mask = lmask & !*self.returned;
                    if mask == 0 {
                        pc = *end as usize;
                        continue;
                    }
                    if TIMED {
                        *self.seq = self.seq.wrapping_add(1);
                        self.charge(*expr_ops as u64, mask);
                    }
                }
                Op::BeginRun { ops, end } => {
                    mask = lmask & !*self.returned;
                    if mask == 0 {
                        pc = *end as usize;
                        continue;
                    }
                    if TIMED {
                        *self.seq = self.seq.wrapping_add(1);
                        self.charge_run(*ops as u64, mask);
                    }
                }
                Op::SeqTick => {
                    if TIMED {
                        *self.seq = self.seq.wrapping_add(1);
                    }
                }
                Op::BeginW { end } => {
                    mask = lmask & !*self.returned;
                    if mask == 0 {
                        pc = *end as usize;
                        continue;
                    }
                    if TIMED {
                        *self.seq = self.seq.wrapping_add(1);
                    }
                }
                Op::Mov { dst, src } => {
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        self.vr[Self::row(*dst, lane)] = self.vr[Self::row(*src, lane)];
                    }
                }
                Op::Bin { op, dst, a, b } => {
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let x = self.vr[Self::row(*a, lane)];
                        let y = self.vr[Self::row(*b, lane)];
                        let v = apply_binop(*op, x, y).ok_or_else(|| self.div0())?;
                        self.vr[Self::row(*dst, lane)] = v;
                    }
                }
                Op::Un { op, dst, a } => {
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let x = self.vr[Self::row(*a, lane)];
                        self.vr[Self::row(*dst, lane)] = apply_unop(*op, x);
                    }
                }
                Op::Blend { dst, c, a, b } => {
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let v = if self.vr[Self::row(*c, lane)] != 0 {
                            self.vr[Self::row(*a, lane)]
                        } else {
                            self.vr[Self::row(*b, lane)]
                        };
                        self.vr[Self::row(*dst, lane)] = v;
                    }
                }
                Op::EvalTree { dst, expr } => {
                    let e = &self.bc.exprs[*expr as usize];
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let v =
                            eval_expr(self.g, self.block_idx, self.warp_base, self.vr, e, lane)?;
                        self.vr[Self::row(*dst, lane)] = v;
                    }
                }
                Op::IfSplit {
                    c,
                    else_t,
                    end_t,
                    has_else,
                } => {
                    let mut m_then = 0u32;
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        if self.vr[Self::row(*c, lane)] != 0 {
                            m_then |= 1 << lane;
                        }
                    }
                    let m_else = mask & !m_then;
                    if TIMED && m_then != 0 && m_else != 0 {
                        self.acc.stats.divergent_branches += 1;
                    }
                    let enter_else = *has_else && m_else != 0;
                    if m_then != 0 {
                        self.frames.push(Frame::If {
                            saved: lmask,
                            else_mask: if enter_else { m_else } else { 0 },
                        });
                        lmask = m_then;
                    } else if enter_else {
                        self.frames.push(Frame::If {
                            saved: lmask,
                            else_mask: 0,
                        });
                        lmask = m_else;
                        pc = *else_t as usize;
                        continue;
                    } else {
                        pc = *end_t as usize;
                        continue;
                    }
                }
                Op::EndThen { end_t } => {
                    match self.frames.last_mut() {
                        Some(Frame::If { saved, else_mask }) => {
                            if *else_mask != 0 {
                                lmask = *else_mask;
                                *else_mask = 0;
                                // fall through into the else list
                            } else {
                                lmask = *saved;
                                self.frames.pop();
                                pc = *end_t as usize;
                                continue;
                            }
                        }
                        _ => unreachable!("EndThen without If frame"),
                    }
                }
                Op::EndIf => match self.frames.pop() {
                    Some(Frame::If { saved, .. }) => lmask = saved,
                    _ => unreachable!("EndIf without If frame"),
                },
                Op::WhileEnter => {
                    self.frames.push(Frame::Loop {
                        saved: lmask,
                        live: mask,
                        first: true,
                    });
                }
                Op::WhileHead { cond_ops } => {
                    let live = match self.frames.last() {
                        Some(Frame::Loop { live, .. }) => *live & !*self.returned,
                        _ => unreachable!("WhileHead without Loop frame"),
                    };
                    // The interpreter charges the condition even when no
                    // lane is live anymore (the final, failing test).
                    if TIMED {
                        self.charge(*cond_ops as u64, live);
                    }
                    mask = live;
                }
                Op::WhileTest { c, exit } => {
                    let mut m = 0u32;
                    let mut it = mask;
                    while it != 0 {
                        let lane = it.trailing_zeros();
                        it &= it - 1;
                        if self.vr[Self::row(*c, lane)] != 0 {
                            m |= 1 << lane;
                        }
                    }
                    let diverged = match self.frames.last_mut() {
                        Some(Frame::Loop { live, first, .. }) => {
                            let d = !*first && m != mask && m != 0;
                            *first = false;
                            *live = m;
                            d
                        }
                        _ => unreachable!("WhileTest without Loop frame"),
                    };
                    if TIMED && diverged {
                        // some lanes left while others loop on: divergence
                        self.acc.stats.divergent_branches += 1;
                    }
                    if m == 0 {
                        match self.frames.pop() {
                            Some(Frame::Loop { saved, .. }) => lmask = saved,
                            _ => unreachable!(),
                        }
                        pc = *exit as usize;
                        continue;
                    }
                    lmask = m;
                }
                Op::WhileJump { head } => {
                    pc = *head as usize;
                    continue;
                }
                Op::LoadG {
                    dst,
                    buf,
                    idx,
                    site,
                } => {
                    self.load_global::<TIMED>(*dst, *buf, *idx, *site, mask)?;
                }
                Op::StoreCheck { buf, idx, site } => {
                    if TIMED {
                        self.acc.stats.stores += 1;
                    }
                    self.global_check::<TIMED>(*buf, *idx, *site, mask)?;
                }
                Op::StoreG { buf, idx, val } => {
                    self.store_global::<TIMED>(*buf, *idx, *val, mask);
                }
                Op::AtomicApply {
                    op,
                    buf,
                    idx,
                    val,
                    cmp,
                    old,
                } => {
                    self.atomic_apply::<TIMED>(*op, *buf, *idx, *val, *cmp, *old, mask)?;
                }
                Op::LoadS { dst, idx } => {
                    self.shared_access::<TIMED>(*idx, Some(*dst), None, mask)?;
                }
                Op::StoreS { idx, val } => {
                    self.shared_access::<TIMED>(*idx, None, Some(*val), mask)?;
                }
                Op::Ret => {
                    *self.returned |= mask;
                }
                Op::Sync => {
                    if TIMED {
                        self.acc.stats.syncs += 1;
                        self.acc.issue_cycles += self.g.cfg.sync_cycles;
                        // Happens-before edge: everything this warp did
                        // before the sync is ordered before everything
                        // any warp does after it.
                        *self.epoch += 1;
                    }
                }
            }
            pc += 1;
        }
        Ok(())
    }
}

/// Runs one per-warp leaf prologue (cost-free; all 32 lanes written
/// unconditionally — inactive lanes' values are never observed).
fn run_prologue(bc: &Bytecode, g: &GridCtx<'_>, block_idx: u32, warp_base: u32, vr: &mut [u32]) {
    for init in &bc.prologue {
        match *init {
            LeafInit::Imm { dst, val } => {
                let base = dst as usize * WARP as usize;
                vr[base..base + WARP as usize].fill(val);
            }
            LeafInit::Param { dst, slot } => {
                let base = dst as usize * WARP as usize;
                vr[base..base + WARP as usize].fill(g.scalars[slot as usize]);
            }
            LeafInit::Special { dst, s } => {
                let base = dst as usize * WARP as usize;
                for lane in 0..WARP {
                    vr[base + lane as usize] = special_value(s, g, block_idx, warp_base, lane);
                }
            }
        }
    }
}

/// Executes one block of the launch on the bytecode engine, reusing
/// `scratch` between calls. `timed` selects the timed or fast-functional
/// driver; `log` collects access records when race detection is on
/// (timed only).
pub(crate) fn run_block(
    g: &GridCtx<'_>,
    bc: &Bytecode,
    block_idx: u32,
    scratch: &mut BcScratch,
    log: Option<&mut Vec<AccessRecord>>,
    timed: bool,
) -> Result<BlockCost, SimError> {
    if timed {
        run_block_impl::<true>(g, bc, block_idx, scratch, log)
    } else {
        run_block_impl::<false>(g, bc, block_idx, scratch, log)
    }
}

fn run_block_impl<const TIMED: bool>(
    g: &GridCtx<'_>,
    bc: &Bytecode,
    block_idx: u32,
    scratch: &mut BcScratch,
    mut log: Option<&mut Vec<AccessRecord>>,
) -> Result<BlockCost, SimError> {
    let warps = g.cfg.warps_for(g.block_dim).max(1);
    let vregs_per_warp = bc.num_vregs as usize * WARP as usize;
    scratch.vregs.clear();
    scratch.vregs.resize(vregs_per_warp * warps as usize, 0);
    scratch.shared.clear();
    scratch.shared.resize(g.kernel.shared_words as usize, 0);
    scratch.returned.clear();
    scratch.returned.resize(warps as usize, 0);
    scratch.epochs.clear();
    scratch.epochs.resize(warps as usize, 0);
    scratch.seqs.clear();
    scratch.seqs.resize(warps as usize, 0);
    // Pattern memos survive across the blocks of a launch (entries stay
    // valid: one launch, one bytecode).
    scratch
        .coalesce
        .resize(bc.num_sites as usize, PatternCache::default());

    let mut cost = BlockCost::default();
    for (pi, phase) in bc.phases.iter().enumerate() {
        for w in 0..warps {
            let warp_base = w * WARP;
            let lanes_in_warp = (g.block_dim.saturating_sub(warp_base)).min(WARP);
            if lanes_in_warp == 0 {
                continue;
            }
            let init_mask = if lanes_in_warp == WARP {
                FULL_MASK
            } else {
                (1u32 << lanes_in_warp) - 1
            };
            let vr = &mut scratch.vregs
                [w as usize * vregs_per_warp..(w as usize + 1) * vregs_per_warp];
            if pi == 0 {
                run_prologue(bc, g, block_idx, warp_base, vr);
            }
            let mut ctx = WarpExec {
                g,
                bc,
                block_idx,
                warp_base,
                vr,
                shared: &mut scratch.shared,
                returned: &mut scratch.returned[w as usize],
                cost: &mut cost,
                acc: BlockCost::default(),
                epoch: &mut scratch.epochs[w as usize],
                seq: &mut scratch.seqs[w as usize],
                log: log.as_deref_mut(),
                frames: &mut scratch.frames,
                coalesce: &mut scratch.coalesce,
            };
            ctx.exec::<TIMED>(&phase.ops, init_mask)?;
        }
        if let Some(bar) = &phase.barrier {
            apply_barrier::<TIMED>(g, bc, block_idx, bar, scratch, warps, &mut cost)?;
            // A block-wide collective synchronizes all warps: re-align
            // the epochs past the highest any warp reached (warps that
            // returned early skipped their in-segment syncs).
            if TIMED {
                let next = scratch.epochs.iter().copied().max().unwrap_or(0) + 1;
                scratch.epochs.iter_mut().for_each(|e| *e = next);
            }
        }
    }
    Ok(cost)
}

/// Applies a block-wide collective across all warps' live lanes —
/// contributions in thread order, returned lanes contributing the
/// identity, results written back to every participating thread.
fn apply_barrier<const TIMED: bool>(
    g: &GridCtx<'_>,
    bc: &Bytecode,
    block_idx: u32,
    bar: &BarrierCode,
    scratch: &mut BcScratch,
    warps: u32,
    cost: &mut BlockCost,
) -> Result<(), SimError> {
    let vregs_per_warp = bc.num_vregs as usize * WARP as usize;
    // Gather contributions in thread order.
    let mut contributions: Vec<(u32, u32, u32)> = Vec::with_capacity(g.block_dim as usize);
    for w in 0..warps {
        let warp_base = w * WARP;
        let lanes_in_warp = (g.block_dim.saturating_sub(warp_base)).min(WARP);
        let returned = scratch.returned[w as usize];
        let vr = &scratch.vregs[w as usize * vregs_per_warp..(w as usize + 1) * vregs_per_warp];
        for lane in 0..lanes_in_warp {
            let alive = returned & (1 << lane) == 0;
            let v = if alive {
                eval_expr(g, block_idx, warp_base, vr, &bar.value, lane)?
            } else {
                match bar.op {
                    BarrierOp::ReduceMin => u32::MAX,
                    BarrierOp::ReduceAdd | BarrierOp::ScanExclAdd => 0,
                }
            };
            contributions.push((w, lane, v));
        }
    }
    // Compute per-thread results.
    let results: Vec<u32> = match bar.op {
        BarrierOp::ReduceMin => {
            let m = contributions
                .iter()
                .map(|&(_, _, v)| v)
                .min()
                .unwrap_or(u32::MAX);
            vec![m; contributions.len()]
        }
        BarrierOp::ReduceAdd => {
            let s = contributions
                .iter()
                .fold(0u32, |a, &(_, _, v)| a.wrapping_add(v));
            vec![s; contributions.len()]
        }
        BarrierOp::ScanExclAdd => {
            let mut acc = 0u32;
            contributions
                .iter()
                .map(|&(_, _, v)| {
                    let out = acc;
                    acc = acc.wrapping_add(v);
                    out
                })
                .collect()
        }
    };
    for (&(w, lane, _), &r) in contributions.iter().zip(&results) {
        let base = w as usize * vregs_per_warp;
        scratch.vregs[base + bar.dst as usize * WARP as usize + lane as usize] = r;
    }
    if TIMED {
        // Analytic cost: a log-depth shared-memory tree with a sync per
        // level, issued once per warp per level (what a hand-written
        // reduction costs).
        let levels = (32 - (g.block_dim.max(2) - 1).leading_zeros()) as u64;
        let per_level = warps as u64 * 3 + g.cfg.sync_cycles;
        cost.issue_cycles += levels * per_level;
        cost.stats.barriers += 1;
        cost.stats.instructions += levels * warps as u64 * 3;
        cost.stats.active_lane_instructions += levels * warps as u64 * 3 * WARP as u64 / 2;
        cost.stats.syncs += levels;
        cost.stats.shared_accesses += levels * warps as u64 * 2;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Equivalence property tests: bytecode ≡ interpreter
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::exec::interp;
    use crate::ir::builder::KernelBuilder;
    use crate::mem::global::GlobalMemory;

    /// Runs `kernel` under both engines on identical memory images and
    /// asserts bit-identical buffers, per-block costs, and race logs;
    /// returns the (shared) per-block costs and the final memory image.
    fn assert_equiv(
        kernel: &Kernel,
        bufs_init: &[Vec<u32>],
        scalars: &[u32],
        grid_dim: u32,
        block_dim: u32,
    ) -> (Vec<BlockCost>, Vec<Vec<u32>>) {
        type EquivRun = (Vec<BlockCost>, Vec<Vec<u32>>, Vec<AccessRecord>);
        let cfg = DeviceConfig::tesla_c2070();
        let run = |engine: &str| -> Result<EquivRun, SimError> {
            let mut mem = GlobalMemory::new();
            let ptrs: Vec<_> = bufs_init
                .iter()
                .enumerate()
                .map(|(i, b)| mem.alloc_from_slice(format!("b{i}"), b))
                .collect();
            let bufs = ptrs.iter().map(|&p| mem.buffer(p).unwrap()).collect();
            let g = GridCtx {
                cfg: &cfg,
                kernel,
                bufs,
                scalars,
                grid_dim,
                block_dim,
            };
            let mut log = Vec::new();
            let mut costs = Vec::new();
            if engine == "interp" {
                let mut scratch = interp::Scratch::default();
                for b in 0..grid_dim {
                    costs.push(interp::run_block(&g, b, &mut scratch, Some(&mut log))?);
                }
            } else {
                let bc = compile(kernel);
                let mut scratch = BcScratch::default();
                for b in 0..grid_dim {
                    costs.push(run_block(&g, &bc, b, &mut scratch, Some(&mut log), true)?);
                }
            }
            drop(g);
            let imgs = ptrs.iter().map(|&p| mem.read(p).unwrap()).collect();
            Ok((costs, imgs, log))
        };
        let (ci, mi, li) = run("interp").expect("interpreter run succeeds");
        let (cb, mb, lb) = run("bytecode").expect("bytecode run succeeds");
        assert_eq!(mi, mb, "output buffers differ for '{}'", kernel.name);
        assert_eq!(ci, cb, "block costs differ for '{}'", kernel.name);
        assert_eq!(li, lb, "race logs differ for '{}'", kernel.name);

        // Fast-functional: same buffers, zero cost.
        let mut mem = GlobalMemory::new();
        let ptrs: Vec<_> = bufs_init
            .iter()
            .enumerate()
            .map(|(i, b)| mem.alloc_from_slice(format!("b{i}"), b))
            .collect();
        let bufs = ptrs.iter().map(|&p| mem.buffer(p).unwrap()).collect();
        let g = GridCtx {
            cfg: &cfg,
            kernel,
            bufs,
            scalars,
            grid_dim,
            block_dim,
        };
        let bc = compile(kernel);
        let mut scratch = BcScratch::default();
        for b in 0..grid_dim {
            let c = run_block(&g, &bc, b, &mut scratch, None, false)
                .expect("functional run succeeds");
            assert_eq!(c, BlockCost::default(), "functional driver charges cost");
        }
        drop(g);
        let mf: Vec<Vec<u32>> = ptrs.iter().map(|&p| mem.read(p).unwrap()).collect();
        assert_eq!(mi, mf, "functional buffers differ for '{}'", kernel.name);

        (ci, mi)
    }

    fn trap_equiv(kernel: &Kernel, bufs_init: &[Vec<u32>], scalars: &[u32], block_dim: u32) {
        let cfg = DeviceConfig::tesla_c2070();
        let run = |engine: &str, timed: bool| -> Result<(), SimError> {
            let mut mem = GlobalMemory::new();
            let ptrs: Vec<_> = bufs_init
                .iter()
                .enumerate()
                .map(|(i, b)| mem.alloc_from_slice(format!("b{i}"), b))
                .collect();
            let bufs = ptrs.iter().map(|&p| mem.buffer(p).unwrap()).collect();
            let g = GridCtx {
                cfg: &cfg,
                kernel,
                bufs,
                scalars,
                grid_dim: 1,
                block_dim,
            };
            if engine == "interp" {
                interp::run_block(&g, 0, &mut interp::Scratch::default(), None)?;
            } else {
                let bc = compile(kernel);
                run_block(&g, &bc, 0, &mut BcScratch::default(), None, timed)?;
            }
            Ok(())
        };
        let ei = run("interp", true);
        let eb = run("bytecode", true);
        let ef = run("bytecode", false);
        assert_eq!(
            ei.is_err(),
            eb.is_err(),
            "trap existence differs for '{}'",
            kernel.name
        );
        assert_eq!(
            ei.is_err(),
            ef.is_err(),
            "functional trap existence differs for '{}'",
            kernel.name
        );
    }

    #[test]
    fn straight_line_assign_store() {
        let mut k = KernelBuilder::new("straight");
        let buf = k.buf_param();
        let n = k.scalar_param();
        let tid = k.global_thread_id();
        k.if_(tid.clone().lt(n), |k| {
            let v = k.load(buf, tid.clone());
            k.store(buf, tid.clone(), v.mul(3u32).add(7u32));
        });
        let kernel = k.build().unwrap();
        let init: Vec<u32> = (0..100).collect();
        let (_, m) = assert_equiv(&kernel, &[init], &[100], 4, 32);
        assert_eq!(m[0][5], 5 * 3 + 7);
    }

    #[test]
    fn divergent_if_else_nested() {
        let mut k = KernelBuilder::new("diverge");
        let buf = k.buf_param();
        let tid = k.thread_idx();
        k.if_else(
            tid.clone().rem(2u32).eq(0u32),
            |k| {
                k.if_(tid.clone().lt(8u32), |k| {
                    k.store(buf, tid.clone(), 100u32);
                });
            },
            |k| {
                k.store(buf, tid.clone(), 200u32);
            },
        );
        let kernel = k.build().unwrap();
        let (costs, _) = assert_equiv(&kernel, &[vec![0; 32]], &[], 1, 32);
        assert!(costs[0].stats.divergent_branches >= 1);
    }

    #[test]
    fn while_loop_with_return_inside() {
        let mut k = KernelBuilder::new("loopret");
        let buf = k.buf_param();
        let tid = k.thread_idx();
        let i = k.reg();
        k.assign(i, 0u32);
        k.while_(Expr::from(i).lt(tid.clone().add(1u32)), |k| {
            k.if_(Expr::from(i).eq(5u32), |k| {
                k.ret();
            });
            k.atomic_add(buf, tid.clone(), 1u32);
            k.assign(i, Expr::from(i).add(1u32));
        });
        k.store(buf, tid.clone().add(32u32), Expr::from(i));
        let kernel = k.build().unwrap();
        assert_equiv(&kernel, &[vec![0; 64]], &[], 1, 32);
    }

    #[test]
    fn atomics_all_ops_with_conflicts() {
        for (name, which) in [
            ("a_add", 0u32),
            ("a_min", 1),
            ("a_max", 2),
            ("a_exch", 3),
            ("a_cas", 4),
            ("a_fadd", 5),
        ] {
            let mut k = KernelBuilder::new(name);
            let buf = k.buf_param();
            let tid = k.thread_idx();
            // Half the lanes hit cell 0 (conflicts), half spread out.
            let idx = tid.clone().rem(2u32).mul(tid.clone());
            let old = match which {
                0 => k.atomic_add(buf, idx, tid.clone().add(1u32)),
                1 => k.atomic_min(buf, idx, tid.clone()),
                2 => k.atomic_max(buf, idx, tid.clone()),
                3 => k.atomic_exch(buf, idx, tid.clone()),
                4 => k.atomic_cas(buf, idx, 0u32, tid.clone().add(9u32)),
                5 => k.atomic_fadd(buf, idx, Expr::from(1u32).u2f()),
                _ => unreachable!(),
            };
            k.store(buf, tid.clone().add(40u32), old);
            let kernel = k.build().unwrap();
            assert_equiv(&kernel, &[vec![0; 80]], &[], 1, 32);
        }
    }

    #[test]
    fn shared_memory_and_sync() {
        let mut k = KernelBuilder::new("smem");
        let buf = k.buf_param();
        k.shared_alloc(64);
        let tid = k.thread_idx();
        k.shared_store(tid.clone(), tid.clone().mul(2u32));
        k.sync_threads();
        let v = k.shared_load(Expr::from(63u32).sub(tid.clone()));
        k.store(buf, tid.clone(), v);
        let kernel = k.build().unwrap();
        assert_equiv(&kernel, &[vec![0; 64]], &[], 1, 64);
    }

    #[test]
    fn barriers_reduce_and_scan_with_returned_lanes() {
        for (name, which) in [("b_min", 0u32), ("b_add", 1), ("b_scan", 2)] {
            let mut k = KernelBuilder::new(name);
            let buf = k.buf_param();
            let tid = k.thread_idx();
            k.if_(tid.clone().ge(48u32), |k| {
                k.ret();
            });
            let dst = match which {
                0 => k.block_reduce_min(tid.clone().add(10u32)),
                1 => k.block_reduce_add(tid.clone()),
                2 => k.block_scan_excl_add(1u32),
                _ => unreachable!(),
            };
            k.store(buf, tid.clone(), dst);
            let kernel = k.build().unwrap();
            assert_equiv(&kernel, &[vec![0; 64]], &[], 1, 64);
        }
    }

    #[test]
    fn select_lazy_arms_do_not_trap() {
        // tid / (tid % 2): traps eagerly on odd lanes' neighbors; the
        // Select guards it, so the interpreter never evaluates the
        // trapping arm. The bytecode must agree (EvalTree fallback).
        let mut k = KernelBuilder::new("sel_guard");
        let buf = k.buf_param();
        let tid = k.thread_idx();
        let guard = tid.clone().rem(2u32);
        let v = guard
            .clone()
            .select(tid.clone().div(guard.clone()), 7u32);
        k.store(buf, tid.clone(), v);
        let kernel = k.build().unwrap();
        assert_equiv(&kernel, &[vec![0; 32]], &[], 1, 32);
    }

    #[test]
    fn trap_existence_matches() {
        // Unconditional division by zero.
        let mut k = KernelBuilder::new("div0");
        let buf = k.buf_param();
        let tid = k.thread_idx();
        k.store(buf, tid.clone(), tid.clone().div(0u32));
        trap_equiv(&k.build().unwrap(), &[vec![0; 32]], &[], 32);

        // Out-of-bounds store.
        let mut k = KernelBuilder::new("oob");
        let buf = k.buf_param();
        let tid = k.thread_idx();
        k.store(buf, tid.clone().add(1000u32), 1u32);
        trap_equiv(&k.build().unwrap(), &[vec![0; 32]], &[], 32);

        // Shared out-of-bounds.
        let mut k = KernelBuilder::new("soob");
        k.buf_param();
        k.shared_alloc(4);
        let tid = k.thread_idx();
        k.shared_store(tid.clone().add(100u32), 1u32);
        trap_equiv(&k.build().unwrap(), &[vec![0; 4]], &[], 32);
    }

    #[test]
    fn partial_warp_and_multi_warp_blocks() {
        let mut k = KernelBuilder::new("partial");
        let buf = k.buf_param();
        let n = k.scalar_param();
        let tid = k.global_thread_id();
        k.if_(tid.clone().lt(n), |k| {
            k.store(buf, tid.clone(), tid.clone().add(1u32));
        });
        let kernel = k.build().unwrap();
        for (grid, block, n) in [(1u32, 33u32, 33u32), (3, 50, 140), (2, 192, 383)] {
            assert_equiv(&kernel, &[vec![0; 400]], &[n], grid, block);
        }
    }

    #[test]
    fn uniform_vs_divergent_while_costs_match_interpreter() {
        let build = |uniform: bool| {
            let mut k = KernelBuilder::new(if uniform { "uni" } else { "div" });
            let buf = k.buf_param();
            let tid = k.thread_idx();
            let i = k.reg();
            k.assign(i, 0u32);
            let bound = if uniform {
                Expr::from(16u32)
            } else {
                tid.clone().rem(16u32).add(1u32)
            };
            k.while_(Expr::from(i).lt(bound), |k| {
                k.atomic_add(buf, 0u32, 1u32);
                k.assign(i, Expr::from(i).add(1u32));
            });
            let _ = tid;
            k.build().unwrap()
        };
        assert_equiv(&build(true), &[vec![0; 4]], &[], 1, 32);
        assert_equiv(&build(false), &[vec![0; 4]], &[], 1, 32);
    }

    #[test]
    fn float_pipeline_matches() {
        let mut k = KernelBuilder::new("floats");
        let buf = k.buf_param();
        let tid = k.thread_idx();
        let f = k.reg();
        k.assign(f, tid.clone().u2f());
        let v = Expr::from(f)
            .fmul(Expr::from(f))
            .fadd(Expr::from(2u32).u2f())
            .fdiv(Expr::from(3u32).u2f());
        k.store(buf, tid.clone(), v.f2u());
        let kernel = k.build().unwrap();
        assert_equiv(&kernel, &[vec![0; 32]], &[], 1, 32);
    }

    #[test]
    fn compiled_form_is_compact_and_memoized() {
        let mut k = KernelBuilder::new("memo");
        let buf = k.buf_param();
        let tid = k.thread_idx();
        k.store(buf, tid.clone(), tid.clone().add(1u32));
        let kernel = k.build().unwrap();
        let bc = kernel.bytecode();
        assert!(bc.op_count() > 0);
        let again = kernel.bytecode();
        assert!(std::ptr::eq(bc, again), "bytecode is compiled once");
        // A clone shares the memoized compilation.
        let clone = kernel.clone();
        assert!(std::ptr::eq(clone.bytecode(), bc));
        assert_eq!(kernel, clone);
    }
}
