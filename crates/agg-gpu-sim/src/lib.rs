#![warn(missing_docs)]

//! A warp-level SIMT GPU simulator.
//!
//! This crate stands in for the CUDA device the paper ran on (an NVIDIA
//! Tesla C2070, Fermi). Kernels are written in a small structured IR
//! ([`ir`]) and executed warp-synchronously: all 32 lanes of a warp step
//! through the same instruction under an active-lane mask, exactly like
//! SIMT hardware. The properties the paper's analysis depends on are
//! *mechanisms* here, not assumptions:
//!
//! * **Branch divergence** — a warp whose lanes disagree on an `if`
//!   executes *both* sides, and a `while` runs until its slowest lane
//!   finishes, charging issue slots for the whole warp each iteration.
//! * **Memory coalescing** — every global access groups the active lanes'
//!   byte addresses into aligned 128-byte segments; each distinct segment
//!   is one memory transaction that costs pipeline slots and bandwidth.
//! * **Atomic serialization** — lanes whose atomics hit the same address
//!   serialize; the queue-based working set generation pays for this.
//! * **Occupancy & latency hiding** — memory stall cycles are divided by
//!   the number of resident warps per SM, so small launches (small working
//!   sets) expose latency while large launches hide it.
//! * **Launch overhead** — every kernel launch pays a fixed host-side
//!   cost, which is what makes high-diameter road networks GPU-hostile.
//!
//! Functional results are exact (kernels really execute against device
//! buffers); timing is analytic and configurable via [`DeviceConfig`].
//! Kernels are compiled once to a flat bytecode and memoized; launches
//! run the bytecode either fully timed or fast-functional depending on
//! the configured [`SimFidelity`]. See `DESIGN.md` §5 for the model
//! summary and §5g for the bytecode engine.
//!
//! # Example
//!
//! ```
//! use agg_gpu_sim::prelude::*;
//!
//! // out[i] = a[i] + b[i]
//! let mut k = KernelBuilder::new("vec_add");
//! let (a, b, out) = (k.buf_param(), k.buf_param(), k.buf_param());
//! let n = k.scalar_param();
//! let tid = k.global_thread_id();
//! k.if_(tid.clone().lt(n), |k| {
//!     let x = k.load(a, tid.clone());
//!     let y = k.load(b, tid.clone());
//!     k.store(out, tid.clone(), x.add(y));
//! });
//! let kernel = k.build().unwrap();
//!
//! let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
//! let da = dev.alloc_from_slice("a", &[1, 2, 3, 4]);
//! let db = dev.alloc_from_slice("b", &[10, 20, 30, 40]);
//! let dout = dev.alloc("out", 4);
//! let report = dev
//!     .launch(&kernel, Grid::linear(4, 128), &LaunchArgs::new().bufs([da, db, dout]).scalars([4]))
//!     .unwrap();
//! assert_eq!(dev.read(dout), vec![11, 22, 33, 44]);
//! assert!(report.time_ns > 0.0);
//! ```

pub mod config;
pub mod device;
pub mod error;
pub mod exec;
pub mod ir;
pub mod json;
pub mod mem;
pub mod timing;

pub use config::{DeviceConfig, ExecEngine, ExecMode, SimFidelity};
pub use device::Device;
pub use error::SimError;
pub use exec::grid::{Grid, LaunchArgs};
pub use ir::builder::{Kernel, KernelBuilder};
pub use json::{Json, JsonError};
pub use mem::race::{RaceClass, RaceFinding, RaceReport, RaceSummary};
pub use mem::transfer::Interconnect;
pub use timing::report::{KernelStats, LaunchProfile, LaunchReport, ProfileReport};

/// Convenient imports for writing and launching kernels.
pub mod prelude {
    pub use crate::config::{DeviceConfig, ExecEngine, ExecMode, SimFidelity};
    pub use crate::device::Device;
    pub use crate::error::SimError;
    pub use crate::exec::grid::{Grid, LaunchArgs};
    pub use crate::ir::builder::{Kernel, KernelBuilder};
    pub use crate::ir::expr::Expr;
    pub use crate::mem::global::DevicePtr;
    pub use crate::mem::race::{RaceClass, RaceFinding, RaceReport, RaceSummary};
    pub use crate::mem::transfer::Interconnect;
    pub use crate::timing::report::{KernelStats, LaunchProfile, LaunchReport, ProfileReport};
}
