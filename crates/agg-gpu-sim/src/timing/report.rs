//! Launch reports: the timing and statistics returned by every kernel
//! launch, the model that turns per-block costs into kernel time, and the
//! per-kernel [`ProfileReport`] the device accumulates across launches.

use crate::config::DeviceConfig;
use crate::json::Json;
use crate::mem::race::RaceReport;
use crate::timing::cost::{BlockCost, CostStats};
use crate::timing::occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// Aggregated kernel statistics (all blocks).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Summed event counters.
    pub totals: CostStats,
    /// Summed issue cycles across blocks.
    pub issue_cycles: u64,
    /// Summed raw stall cycles across blocks (pre-hiding).
    pub stall_cycles: u64,
}

impl std::ops::AddAssign for KernelStats {
    fn add_assign(&mut self, o: KernelStats) {
        self.totals += o.totals;
        self.issue_cycles += o.issue_cycles;
        self.stall_cycles += o.stall_cycles;
    }
}

/// The result of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchReport {
    /// Kernel name.
    pub kernel: String,
    /// Number of blocks launched.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Modeled wall time of the launch in nanoseconds (including launch
    /// overhead).
    pub time_ns: f64,
    /// Compute-path time (issue + exposed stalls), ns.
    pub compute_ns: f64,
    /// Bandwidth-path time (bytes / BW), ns.
    pub mem_ns: f64,
    /// Fixed launch overhead, ns.
    pub overhead_ns: f64,
    /// Residency used for latency hiding.
    pub occupancy: Occupancy,
    /// Aggregated statistics.
    pub stats: KernelStats,
    /// Race analysis of this launch; `Some` only under
    /// [`crate::SimFidelity::TimedWithRaces`].
    pub races: Option<RaceReport>,
}

/// Combines per-block costs into a launch report.
///
/// Model (DESIGN.md §5):
/// * Blocks are assigned to SMs round-robin; each SM's serial issue
///   pipeline processes its blocks' `issue_cycles` back to back.
/// * Raw stall cycles are divided by the number of resident warps (latency
///   hiding): small launches expose DRAM latency, saturated launches hide
///   it.
/// * The kernel's compute time is the busiest SM's total; memory time is
///   total bytes over device bandwidth; the kernel overlaps the two, so
///   wall time is their max plus fixed launch overhead.
pub fn finalize_launch(
    cfg: &DeviceConfig,
    kernel: &str,
    grid_blocks: u32,
    block_threads: u32,
    shared_bytes: u32,
    block_costs: &[BlockCost],
) -> LaunchReport {
    let occ = Occupancy::compute(cfg, block_threads, shared_bytes);
    let mut stats = KernelStats::default();
    let mut sm_cycles = vec![0f64; cfg.num_sms as usize];
    let hiding = occ.warps_per_sm.max(1) as f64;
    for (i, bc) in block_costs.iter().enumerate() {
        stats.totals += bc.stats;
        stats.issue_cycles += bc.issue_cycles;
        stats.stall_cycles += bc.stall_cycles;
        let exposed = bc.issue_cycles as f64 + bc.stall_cycles as f64 / hiding;
        let slot = i % cfg.num_sms as usize;
        sm_cycles[slot] += exposed;
    }
    let busiest = sm_cycles.iter().copied().fold(0.0f64, f64::max);
    let compute_ns = cfg.cycles_to_ns(busiest);
    let mem_ns = stats.totals.mem_bytes as f64 / cfg.mem_bandwidth_gbps;
    let overhead_ns = cfg.launch_overhead_us * 1_000.0;
    LaunchReport {
        kernel: kernel.to_string(),
        grid_blocks,
        block_threads,
        time_ns: overhead_ns + compute_ns.max(mem_ns),
        compute_ns,
        mem_ns,
        overhead_ns,
        occupancy: occ,
        stats,
        races: None,
    }
}

/// Profile of one kernel aggregated over every launch it has had.
///
/// This is the "nvprof row" for a kernel: where its time went
/// (compute vs. bandwidth vs. launch overhead), how well its accesses
/// coalesced, and what residency it achieved. Built by
/// [`ProfileReport::record`] from each [`LaunchReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchProfile {
    /// Kernel name.
    pub kernel: String,
    /// Number of launches recorded.
    pub launches: u64,
    /// Total blocks across launches.
    pub blocks: u64,
    /// Total modeled wall time, ns (compute/mem overlap + overhead).
    pub time_ns: f64,
    /// Total compute-path time (issue + exposed stalls), ns.
    pub compute_ns: f64,
    /// Total bandwidth-path time (bytes / BW), ns.
    pub mem_ns: f64,
    /// Total fixed launch overhead, ns.
    pub overhead_ns: f64,
    /// Summed issue-pipeline cycles.
    pub issue_cycles: u64,
    /// Summed raw stall cycles (pre-hiding).
    pub stall_cycles: u64,
    /// Residency of the most recent launch (launch geometry is stable per
    /// kernel in this workspace, so this is representative).
    pub occupancy: Occupancy,
    /// Occupancy of the most recent launch as a fraction of the device's
    /// maximum resident warps.
    pub occupancy_fraction: f64,
    /// Summed event counters.
    pub stats: CostStats,
}

impl LaunchProfile {
    fn new(kernel: &str) -> LaunchProfile {
        LaunchProfile {
            kernel: kernel.to_string(),
            launches: 0,
            blocks: 0,
            time_ns: 0.0,
            compute_ns: 0.0,
            mem_ns: 0.0,
            overhead_ns: 0.0,
            issue_cycles: 0,
            stall_cycles: 0,
            occupancy: Occupancy {
                blocks_per_sm: 0,
                warps_per_sm: 0,
            },
            occupancy_fraction: 0.0,
            stats: CostStats::default(),
        }
    }

    fn record(&mut self, cfg: &DeviceConfig, r: &LaunchReport) {
        self.launches += 1;
        self.blocks += r.grid_blocks as u64;
        self.time_ns += r.time_ns;
        self.compute_ns += r.compute_ns;
        self.mem_ns += r.mem_ns;
        self.overhead_ns += r.overhead_ns;
        self.issue_cycles += r.stats.issue_cycles;
        self.stall_cycles += r.stats.stall_cycles;
        self.occupancy = r.occupancy;
        self.occupancy_fraction = r.occupancy.fraction(cfg);
        self.stats += r.stats.totals;
    }

    /// Memory transactions per warp-level global access: 1.0 is perfectly
    /// coalesced, 32.0 is fully scattered 4-byte accesses. Returns 0 for
    /// kernels that never touch global memory.
    pub fn transactions_per_access(&self) -> f64 {
        let accesses = self.stats.loads + self.stats.stores;
        if accesses == 0 {
            return 0.0;
        }
        self.stats.mem_transactions as f64 / accesses as f64
    }

    /// Coalescing efficiency in `(0, 1]`: the reciprocal of
    /// [`LaunchProfile::transactions_per_access`] (1.0 for kernels with no
    /// global traffic — nothing was wasted).
    pub fn coalescing_efficiency(&self) -> f64 {
        let tpa = self.transactions_per_access();
        if tpa <= 1.0 {
            1.0
        } else {
            1.0 / tpa
        }
    }

    /// This profile as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kernel", self.kernel.as_str().into()),
            ("launches", self.launches.into()),
            ("blocks", self.blocks.into()),
            ("time_ns", self.time_ns.into()),
            ("compute_ns", self.compute_ns.into()),
            ("mem_ns", self.mem_ns.into()),
            ("overhead_ns", self.overhead_ns.into()),
            ("issue_cycles", self.issue_cycles.into()),
            ("stall_cycles", self.stall_cycles.into()),
            ("blocks_per_sm", self.occupancy.blocks_per_sm.into()),
            ("warps_per_sm", self.occupancy.warps_per_sm.into()),
            ("occupancy_fraction", self.occupancy_fraction.into()),
            ("coalescing_efficiency", self.coalescing_efficiency().into()),
            ("instructions", self.stats.instructions.into()),
            ("mem_transactions", self.stats.mem_transactions.into()),
            ("mem_bytes", self.stats.mem_bytes.into()),
            ("atomics", self.stats.atomics.into()),
            ("atomic_conflicts", self.stats.atomic_conflicts.into()),
            ("divergent_branches", self.stats.divergent_branches.into()),
            ("simt_efficiency", self.stats.simt_efficiency(32).into()),
        ])
    }
}

/// Per-kernel profiles for a span of device activity.
///
/// The device keeps one of these running from construction (or the last
/// [`crate::Device::reset_clock`]); callers snapshot it and use
/// [`ProfileReport::since`] to attribute launches to a single run.
/// Kernels are kept in first-launch order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    kernels: Vec<LaunchProfile>,
}

impl ProfileReport {
    /// Folds one launch report into the profile for its kernel.
    pub fn record(&mut self, cfg: &DeviceConfig, r: &LaunchReport) {
        let entry = match self.kernels.iter_mut().find(|p| p.kernel == r.kernel) {
            Some(p) => p,
            None => {
                self.kernels.push(LaunchProfile::new(&r.kernel));
                self.kernels.last_mut().unwrap()
            }
        };
        entry.record(cfg, r);
    }

    /// Profiles in first-launch order.
    pub fn kernels(&self) -> &[LaunchProfile] {
        &self.kernels
    }

    /// The profile for a kernel, if it has launched.
    pub fn get(&self, kernel: &str) -> Option<&LaunchProfile> {
        self.kernels.iter().find(|p| p.kernel == kernel)
    }

    /// True if nothing has launched in this span.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Total launches across all kernels.
    pub fn total_launches(&self) -> u64 {
        self.kernels.iter().map(|p| p.launches).sum()
    }

    /// Total modeled kernel time across all kernels, ns.
    pub fn total_time_ns(&self) -> f64 {
        self.kernels.iter().map(|p| p.time_ns).sum()
    }

    /// The activity recorded in `self` but not in the `earlier` snapshot
    /// of the same monotonic profile: per-kernel counter subtraction.
    /// Kernels whose launch count did not change are dropped.
    pub fn since(&self, earlier: &ProfileReport) -> ProfileReport {
        let mut out = ProfileReport::default();
        for now in &self.kernels {
            let before = earlier.get(&now.kernel);
            let launches_before = before.map_or(0, |p| p.launches);
            if now.launches == launches_before {
                continue;
            }
            let mut delta = now.clone();
            if let Some(b) = before {
                delta.launches -= b.launches;
                delta.blocks -= b.blocks;
                delta.time_ns -= b.time_ns;
                delta.compute_ns -= b.compute_ns;
                delta.mem_ns -= b.mem_ns;
                delta.overhead_ns -= b.overhead_ns;
                delta.issue_cycles -= b.issue_cycles;
                delta.stall_cycles -= b.stall_cycles;
                delta.stats = subtract_stats(now.stats, b.stats);
            }
            out.kernels.push(delta);
        }
        out
    }

    /// Sums another profile into this one, matching kernels by name and
    /// appending unseen kernels in first-appearance order. Merging the
    /// per-query [`ProfileReport::since`] slices of a batch reproduces the
    /// device-level delta spanning the whole batch (ns fields up to float
    /// summation order, counters exactly).
    pub fn merge(&mut self, other: &ProfileReport) {
        for p in &other.kernels {
            match self.kernels.iter_mut().find(|q| q.kernel == p.kernel) {
                Some(q) => {
                    q.launches += p.launches;
                    q.blocks += p.blocks;
                    q.time_ns += p.time_ns;
                    q.compute_ns += p.compute_ns;
                    q.mem_ns += p.mem_ns;
                    q.overhead_ns += p.overhead_ns;
                    q.issue_cycles += p.issue_cycles;
                    q.stall_cycles += p.stall_cycles;
                    q.occupancy = p.occupancy;
                    q.occupancy_fraction = p.occupancy_fraction;
                    q.stats += p.stats;
                }
                None => self.kernels.push(p.clone()),
            }
        }
    }

    /// The whole report as a JSON array of per-kernel objects.
    pub fn to_json(&self) -> Json {
        Json::arr(self.kernels.iter().map(|p| p.to_json()))
    }
}

fn subtract_stats(a: CostStats, b: CostStats) -> CostStats {
    CostStats {
        instructions: a.instructions - b.instructions,
        active_lane_instructions: a.active_lane_instructions - b.active_lane_instructions,
        loads: a.loads - b.loads,
        stores: a.stores - b.stores,
        mem_transactions: a.mem_transactions - b.mem_transactions,
        mem_bytes: a.mem_bytes - b.mem_bytes,
        atomics: a.atomics - b.atomics,
        atomic_conflicts: a.atomic_conflicts - b.atomic_conflicts,
        divergent_branches: a.divergent_branches - b.divergent_branches,
        shared_accesses: a.shared_accesses - b.shared_accesses,
        shared_replays: a.shared_replays - b.shared_replays,
        syncs: a.syncs - b.syncs,
        barriers: a.barriers - b.barriers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(issue: u64, stall: u64, bytes: u64) -> BlockCost {
        BlockCost {
            issue_cycles: issue,
            stall_cycles: stall,
            stats: CostStats {
                mem_bytes: bytes,
                ..Default::default()
            },
        }
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let cfg = DeviceConfig::tesla_c2070();
        let r = finalize_launch(&cfg, "k", 0, 32, 0, &[]);
        assert!((r.time_ns - 7_000.0).abs() < 1e-9);
        assert_eq!(r.compute_ns, 0.0);
    }

    #[test]
    fn single_block_uses_one_sm() {
        let cfg = DeviceConfig::tesla_c2070();
        let one = finalize_launch(&cfg, "k", 1, 32, 0, &[block(1150, 0, 0)]);
        // 1150 cycles at 1.15 GHz = 1000 ns + 7000 overhead
        assert!((one.time_ns - 8_000.0).abs() < 1.0);
    }

    #[test]
    fn blocks_spread_over_sms() {
        let cfg = DeviceConfig::tesla_c2070();
        let blocks: Vec<_> = (0..14).map(|_| block(1150, 0, 0)).collect();
        let spread = finalize_launch(&cfg, "k", 14, 32, 0, &blocks);
        // 14 blocks over 14 SMs: same busiest-SM time as one block.
        assert!((spread.compute_ns - 1000.0).abs() < 1.0);
        let blocks: Vec<_> = (0..28).map(|_| block(1150, 0, 0)).collect();
        let double = finalize_launch(&cfg, "k", 28, 32, 0, &blocks);
        assert!((double.compute_ns - 2000.0).abs() < 1.0);
    }

    #[test]
    fn latency_hiding_scales_with_occupancy() {
        let cfg = DeviceConfig::tesla_c2070();
        // 32-thread blocks: 8 warps resident. 192-thread blocks: 48 warps.
        let small = finalize_launch(&cfg, "k", 1, 32, 0, &[block(0, 48_000, 0)]);
        let big = finalize_launch(&cfg, "k", 1, 192, 0, &[block(0, 48_000, 0)]);
        assert!(
            small.compute_ns > big.compute_ns * 5.0,
            "{} vs {}",
            small.compute_ns,
            big.compute_ns
        );
    }

    #[test]
    fn bandwidth_bound_kernels_report_mem_time() {
        let cfg = DeviceConfig::tesla_c2070();
        // 144 GB/s = 144 bytes/ns; 14.4 MB -> 100 us
        let r = finalize_launch(&cfg, "k", 1, 192, 0, &[block(10, 0, 14_400_000)]);
        assert!((r.mem_ns - 100_000.0).abs() < 1.0);
        assert!(r.time_ns >= r.mem_ns);
    }

    #[test]
    fn stats_aggregate_across_blocks() {
        let cfg = DeviceConfig::tesla_c2070();
        let r = finalize_launch(&cfg, "k", 2, 32, 0, &[block(5, 0, 10), block(7, 0, 20)]);
        assert_eq!(r.stats.issue_cycles, 12);
        assert_eq!(r.stats.totals.mem_bytes, 30);
    }

    #[test]
    fn profile_accumulates_per_kernel() {
        let cfg = DeviceConfig::tesla_c2070();
        let mut prof = ProfileReport::default();
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "a", 2, 192, 0, &[block(5, 0, 10)]),
        );
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "b", 1, 32, 0, &[block(7, 0, 20)]),
        );
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "a", 3, 192, 0, &[block(9, 0, 30)]),
        );
        assert_eq!(prof.kernels().len(), 2);
        assert_eq!(prof.total_launches(), 3);
        let a = prof.get("a").unwrap();
        assert_eq!(a.launches, 2);
        assert_eq!(a.blocks, 5);
        assert_eq!(a.issue_cycles, 14);
        assert_eq!(a.stats.mem_bytes, 40);
        assert!((a.occupancy_fraction - 1.0).abs() < 1e-12); // 192 tpb saturates
        assert!(a.time_ns > 0.0 && a.overhead_ns > 0.0);
        assert_eq!(prof.get("b").unwrap().launches, 1);
        assert!(prof.get("c").is_none());
    }

    #[test]
    fn profile_since_subtracts_snapshots() {
        let cfg = DeviceConfig::tesla_c2070();
        let mut prof = ProfileReport::default();
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "a", 1, 32, 0, &[block(5, 0, 10)]),
        );
        let snap = prof.clone();
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "a", 1, 32, 0, &[block(6, 0, 14)]),
        );
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "b", 1, 32, 0, &[block(7, 0, 20)]),
        );
        let delta = prof.since(&snap);
        // "a" keeps only the second launch; "b" is new in the delta.
        let a = delta.get("a").unwrap();
        assert_eq!(a.launches, 1);
        assert_eq!(a.issue_cycles, 6);
        assert_eq!(a.stats.mem_bytes, 14);
        assert_eq!(delta.get("b").unwrap().stats.mem_bytes, 20);
        // a snapshot minus itself is empty
        assert!(prof.since(&prof).is_empty());
    }

    #[test]
    fn merged_slices_reproduce_the_spanning_delta() {
        // Two consecutive since() slices, merged, equal the one delta
        // spanning both — the identity batch profile attribution rests on.
        let cfg = DeviceConfig::tesla_c2070();
        let mut prof = ProfileReport::default();
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "a", 1, 32, 0, &[block(5, 0, 10)]),
        );
        let snap0 = prof.clone();
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "a", 1, 32, 0, &[block(6, 0, 14)]),
        );
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "b", 1, 32, 0, &[block(7, 0, 20)]),
        );
        let snap1 = prof.clone();
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "b", 1, 32, 0, &[block(8, 0, 4)]),
        );
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "c", 2, 192, 0, &[block(9, 0, 6)]),
        );

        let mut merged = snap1.since(&snap0);
        merged.merge(&prof.since(&snap1));
        let spanning = prof.since(&snap0);
        assert_eq!(merged.kernels().len(), spanning.kernels().len());
        for (m, s) in merged.kernels().iter().zip(spanning.kernels()) {
            assert_eq!(m.kernel, s.kernel);
            assert_eq!(m.launches, s.launches);
            assert_eq!(m.blocks, s.blocks);
            assert_eq!(m.issue_cycles, s.issue_cycles);
            assert_eq!(m.stats, s.stats);
            assert!((m.time_ns - s.time_ns).abs() <= 1e-6 * s.time_ns.max(1.0));
        }
        assert_eq!(merged.total_launches(), spanning.total_launches());

        // Merging into an empty report copies the other side.
        let mut empty = ProfileReport::default();
        empty.merge(&spanning);
        assert_eq!(empty, spanning);
    }

    #[test]
    fn coalescing_efficiency_from_counters() {
        let mut p = LaunchProfile::new("k");
        assert_eq!(p.transactions_per_access(), 0.0);
        assert_eq!(p.coalescing_efficiency(), 1.0);
        p.stats.loads = 10;
        p.stats.mem_transactions = 40; // 4 transactions per warp access
        assert!((p.transactions_per_access() - 4.0).abs() < 1e-12);
        assert!((p.coalescing_efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn profile_json_has_the_acceptance_fields() {
        let cfg = DeviceConfig::tesla_c2070();
        let mut prof = ProfileReport::default();
        prof.record(
            &cfg,
            &finalize_launch(&cfg, "k", 1, 192, 0, &[block(5, 3, 10)]),
        );
        let s = prof.to_json().render();
        for field in [
            "\"kernel\":\"k\"",
            "\"compute_ns\":",
            "\"mem_ns\":",
            "\"issue_cycles\":5",
            "\"stall_cycles\":3",
            "\"occupancy_fraction\":1",
            "\"coalescing_efficiency\":",
        ] {
            assert!(s.contains(field), "missing {field} in {s}");
        }
    }
}
