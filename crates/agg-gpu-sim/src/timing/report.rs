//! Launch reports: the timing and statistics returned by every kernel
//! launch, and the model that turns per-block costs into kernel time.

use crate::config::DeviceConfig;
use crate::timing::cost::{BlockCost, CostStats};
use crate::timing::occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// Aggregated kernel statistics (all blocks).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Summed event counters.
    pub totals: CostStats,
    /// Summed issue cycles across blocks.
    pub issue_cycles: u64,
    /// Summed raw stall cycles across blocks (pre-hiding).
    pub stall_cycles: u64,
}

impl std::ops::AddAssign for KernelStats {
    fn add_assign(&mut self, o: KernelStats) {
        self.totals += o.totals;
        self.issue_cycles += o.issue_cycles;
        self.stall_cycles += o.stall_cycles;
    }
}

/// The result of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchReport {
    /// Kernel name.
    pub kernel: String,
    /// Number of blocks launched.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Modeled wall time of the launch in nanoseconds (including launch
    /// overhead).
    pub time_ns: f64,
    /// Compute-path time (issue + exposed stalls), ns.
    pub compute_ns: f64,
    /// Bandwidth-path time (bytes / BW), ns.
    pub mem_ns: f64,
    /// Fixed launch overhead, ns.
    pub overhead_ns: f64,
    /// Residency used for latency hiding.
    pub occupancy: Occupancy,
    /// Aggregated statistics.
    pub stats: KernelStats,
}

/// Combines per-block costs into a launch report.
///
/// Model (DESIGN.md §5):
/// * Blocks are assigned to SMs round-robin; each SM's serial issue
///   pipeline processes its blocks' `issue_cycles` back to back.
/// * Raw stall cycles are divided by the number of resident warps (latency
///   hiding): small launches expose DRAM latency, saturated launches hide
///   it.
/// * The kernel's compute time is the busiest SM's total; memory time is
///   total bytes over device bandwidth; the kernel overlaps the two, so
///   wall time is their max plus fixed launch overhead.
pub fn finalize_launch(
    cfg: &DeviceConfig,
    kernel: &str,
    grid_blocks: u32,
    block_threads: u32,
    shared_bytes: u32,
    block_costs: &[BlockCost],
) -> LaunchReport {
    let occ = Occupancy::compute(cfg, block_threads, shared_bytes);
    let mut stats = KernelStats::default();
    let mut sm_cycles = vec![0f64; cfg.num_sms as usize];
    let hiding = occ.warps_per_sm.max(1) as f64;
    for (i, bc) in block_costs.iter().enumerate() {
        stats.totals += bc.stats;
        stats.issue_cycles += bc.issue_cycles;
        stats.stall_cycles += bc.stall_cycles;
        let exposed = bc.issue_cycles as f64 + bc.stall_cycles as f64 / hiding;
        let slot = i % cfg.num_sms as usize;
        sm_cycles[slot] += exposed;
    }
    let busiest = sm_cycles.iter().copied().fold(0.0f64, f64::max);
    let compute_ns = cfg.cycles_to_ns(busiest);
    let mem_ns = stats.totals.mem_bytes as f64 / cfg.mem_bandwidth_gbps;
    let overhead_ns = cfg.launch_overhead_us * 1_000.0;
    LaunchReport {
        kernel: kernel.to_string(),
        grid_blocks,
        block_threads,
        time_ns: overhead_ns + compute_ns.max(mem_ns),
        compute_ns,
        mem_ns,
        overhead_ns,
        occupancy: occ,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(issue: u64, stall: u64, bytes: u64) -> BlockCost {
        BlockCost {
            issue_cycles: issue,
            stall_cycles: stall,
            stats: CostStats {
                mem_bytes: bytes,
                ..Default::default()
            },
        }
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let cfg = DeviceConfig::tesla_c2070();
        let r = finalize_launch(&cfg, "k", 0, 32, 0, &[]);
        assert!((r.time_ns - 7_000.0).abs() < 1e-9);
        assert_eq!(r.compute_ns, 0.0);
    }

    #[test]
    fn single_block_uses_one_sm() {
        let cfg = DeviceConfig::tesla_c2070();
        let one = finalize_launch(&cfg, "k", 1, 32, 0, &[block(1150, 0, 0)]);
        // 1150 cycles at 1.15 GHz = 1000 ns + 7000 overhead
        assert!((one.time_ns - 8_000.0).abs() < 1.0);
    }

    #[test]
    fn blocks_spread_over_sms() {
        let cfg = DeviceConfig::tesla_c2070();
        let blocks: Vec<_> = (0..14).map(|_| block(1150, 0, 0)).collect();
        let spread = finalize_launch(&cfg, "k", 14, 32, 0, &blocks);
        // 14 blocks over 14 SMs: same busiest-SM time as one block.
        assert!((spread.compute_ns - 1000.0).abs() < 1.0);
        let blocks: Vec<_> = (0..28).map(|_| block(1150, 0, 0)).collect();
        let double = finalize_launch(&cfg, "k", 28, 32, 0, &blocks);
        assert!((double.compute_ns - 2000.0).abs() < 1.0);
    }

    #[test]
    fn latency_hiding_scales_with_occupancy() {
        let cfg = DeviceConfig::tesla_c2070();
        // 32-thread blocks: 8 warps resident. 192-thread blocks: 48 warps.
        let small = finalize_launch(&cfg, "k", 1, 32, 0, &[block(0, 48_000, 0)]);
        let big = finalize_launch(&cfg, "k", 1, 192, 0, &[block(0, 48_000, 0)]);
        assert!(
            small.compute_ns > big.compute_ns * 5.0,
            "{} vs {}",
            small.compute_ns,
            big.compute_ns
        );
    }

    #[test]
    fn bandwidth_bound_kernels_report_mem_time() {
        let cfg = DeviceConfig::tesla_c2070();
        // 144 GB/s = 144 bytes/ns; 14.4 MB -> 100 us
        let r = finalize_launch(&cfg, "k", 1, 192, 0, &[block(10, 0, 14_400_000)]);
        assert!((r.mem_ns - 100_000.0).abs() < 1.0);
        assert!(r.time_ns >= r.mem_ns);
    }

    #[test]
    fn stats_aggregate_across_blocks() {
        let cfg = DeviceConfig::tesla_c2070();
        let r = finalize_launch(&cfg, "k", 2, 32, 0, &[block(5, 0, 10), block(7, 0, 20)]);
        assert_eq!(r.stats.issue_cycles, 12);
        assert_eq!(r.stats.totals.mem_bytes, 30);
    }
}
