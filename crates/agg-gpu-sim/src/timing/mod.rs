//! Timing model: per-warp cost counters, SM occupancy, and launch reports.

pub mod cost;
pub mod occupancy;
pub mod report;

pub use cost::{BlockCost, CostStats};
pub use occupancy::Occupancy;
pub use report::{KernelStats, LaunchReport};
