//! SM occupancy: how many blocks/warps are concurrently resident, which
//! determines memory-latency hiding. This is the simulator's counterpart
//! of the CUDA Occupancy Calculator the paper used to pick kernel
//! configurations (Section VII.A).

use crate::config::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Residency figures for one kernel configuration on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Concurrently resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Concurrently resident warps per SM.
    pub warps_per_sm: u32,
}

impl Occupancy {
    /// Computes residency limits for a block of `threads_per_block` threads
    /// using `shared_bytes` of shared memory.
    pub fn compute(cfg: &DeviceConfig, threads_per_block: u32, shared_bytes: u32) -> Occupancy {
        let tpb = threads_per_block.max(1);
        let by_threads = cfg.max_threads_per_sm / tpb;
        let by_shared = cfg
            .shared_mem_per_sm
            .checked_div(shared_bytes)
            .unwrap_or(cfg.max_blocks_per_sm);
        let blocks = cfg.max_blocks_per_sm.min(by_threads).min(by_shared).max(1);
        let warps_per_block = cfg.warps_for(tpb);
        let warps = (blocks * warps_per_block).min(cfg.max_warps_per_sm).max(1);
        Occupancy {
            blocks_per_sm: blocks,
            warps_per_sm: warps,
        }
    }

    /// Occupancy as a fraction of the device's maximum resident warps.
    pub fn fraction(&self, cfg: &DeviceConfig) -> f64 {
        self.warps_per_sm as f64 / cfg.max_warps_per_sm as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_blocks_limited_by_block_slots() {
        let cfg = DeviceConfig::tesla_c2070();
        let o = Occupancy::compute(&cfg, 32, 0);
        assert_eq!(o.blocks_per_sm, 8); // 8-block cap, not threads
        assert_eq!(o.warps_per_sm, 8);
    }

    #[test]
    fn large_blocks_limited_by_threads() {
        let cfg = DeviceConfig::tesla_c2070();
        let o = Occupancy::compute(&cfg, 512, 0);
        assert_eq!(o.blocks_per_sm, 3); // 1536 / 512
        assert_eq!(o.warps_per_sm, 48);
    }

    #[test]
    fn shared_memory_limits_blocks() {
        let cfg = DeviceConfig::tesla_c2070();
        let o = Occupancy::compute(&cfg, 64, 24 * 1024);
        assert_eq!(o.blocks_per_sm, 2); // 48K / 24K
    }

    #[test]
    fn paper_config_192_threads() {
        // The paper's best thread-mapping config: 192 threads/block.
        let cfg = DeviceConfig::tesla_c2070();
        let o = Occupancy::compute(&cfg, 192, 0);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.warps_per_sm, 48); // 8 blocks * 6 warps = full
        assert!((o.fraction(&cfg) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_zero() {
        let cfg = DeviceConfig::tesla_c2070();
        let o = Occupancy::compute(&cfg, 2048, 0); // oversized block
        assert!(o.blocks_per_sm >= 1 && o.warps_per_sm >= 1);
        let o = Occupancy::compute(&cfg, 0, 0);
        assert!(o.warps_per_sm >= 1);
    }
}
