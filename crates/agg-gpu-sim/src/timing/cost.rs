//! Cost counters accumulated during warp execution.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Raw event counters for a unit of execution (warp, block, or kernel —
/// they add associatively).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostStats {
    /// Warp-instructions issued (each costs one pipeline slot regardless of
    /// how many lanes are active — the SIMT underutilization penalty).
    pub instructions: u64,
    /// Sum over issued instructions of the number of active lanes; divided
    /// by `instructions * warp_size` this gives SIMT efficiency.
    pub active_lane_instructions: u64,
    /// Global load instructions executed (warp-level).
    pub loads: u64,
    /// Global store instructions executed (warp-level).
    pub stores: u64,
    /// Memory transactions after coalescing.
    pub mem_transactions: u64,
    /// Bytes moved to/from DRAM (transactions × segment size).
    pub mem_bytes: u64,
    /// Atomic operations executed (lane-level).
    pub atomics: u64,
    /// Lane-level atomic operations that had to wait behind a conflicting
    /// lane in the same warp (serialization events).
    pub atomic_conflicts: u64,
    /// Warp branches whose lanes disagreed (both paths executed).
    pub divergent_branches: u64,
    /// Shared-memory access instructions (warp-level).
    pub shared_accesses: u64,
    /// Shared-memory replays due to bank conflicts.
    pub shared_replays: u64,
    /// `__syncthreads()` executions (warp-level).
    pub syncs: u64,
    /// Block-wide barrier intrinsics executed (block-level).
    pub barriers: u64,
}

impl AddAssign for CostStats {
    fn add_assign(&mut self, o: CostStats) {
        self.instructions += o.instructions;
        self.active_lane_instructions += o.active_lane_instructions;
        self.loads += o.loads;
        self.stores += o.stores;
        self.mem_transactions += o.mem_transactions;
        self.mem_bytes += o.mem_bytes;
        self.atomics += o.atomics;
        self.atomic_conflicts += o.atomic_conflicts;
        self.divergent_branches += o.divergent_branches;
        self.shared_accesses += o.shared_accesses;
        self.shared_replays += o.shared_replays;
        self.syncs += o.syncs;
        self.barriers += o.barriers;
    }
}

impl CostStats {
    /// Fraction of issued lane slots that carried an active lane
    /// (1.0 = divergence-free, fully occupied warps).
    pub fn simt_efficiency(&self, warp_size: u32) -> f64 {
        if self.instructions == 0 {
            return 1.0;
        }
        self.active_lane_instructions as f64 / (self.instructions * warp_size as u64) as f64
    }
}

/// Per-block aggregate the scheduler consumes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Issue-pipeline cycles: one per warp-instruction, plus transaction,
    /// atomic, conflict, and sync surcharges.
    pub issue_cycles: u64,
    /// Raw memory-latency cycles (before occupancy-based hiding).
    pub stall_cycles: u64,
    /// Event counters.
    pub stats: CostStats,
}

impl AddAssign for BlockCost {
    fn add_assign(&mut self, o: BlockCost) {
        self.issue_cycles += o.issue_cycles;
        self.stall_cycles += o.stall_cycles;
        self.stats += o.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_add_componentwise() {
        let mut a = CostStats {
            instructions: 5,
            mem_bytes: 100,
            ..Default::default()
        };
        let b = CostStats {
            instructions: 3,
            atomics: 2,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.instructions, 8);
        assert_eq!(a.mem_bytes, 100);
        assert_eq!(a.atomics, 2);
    }

    #[test]
    fn simt_efficiency_bounds() {
        let full = CostStats {
            instructions: 10,
            active_lane_instructions: 320,
            ..Default::default()
        };
        assert!((full.simt_efficiency(32) - 1.0).abs() < 1e-12);
        let half = CostStats {
            instructions: 10,
            active_lane_instructions: 160,
            ..Default::default()
        };
        assert!((half.simt_efficiency(32) - 0.5).abs() < 1e-12);
        let empty = CostStats::default();
        assert_eq!(empty.simt_efficiency(32), 1.0);
    }

    #[test]
    fn block_cost_adds() {
        let mut a = BlockCost {
            issue_cycles: 10,
            stall_cycles: 100,
            ..Default::default()
        };
        a += BlockCost {
            issue_cycles: 5,
            stall_cycles: 50,
            ..Default::default()
        };
        assert_eq!(a.issue_cycles, 15);
        assert_eq!(a.stall_cycles, 150);
    }
}
