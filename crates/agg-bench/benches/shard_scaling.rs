//! Criterion bench for multi-device sharded execution: host-side
//! simulation cost of an adaptive BFS split over 1/2/4/8 simulated
//! devices (modeled scaling numbers come from `repro shard`).

use agg_core::{Query, RunOptions, ShardedGraph};
use agg_graph::{Dataset, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let graph = Dataset::Amazon.generate_weighted(Scale::Tiny, 42, 64);
    let opts = RunOptions::default();
    let mut g = c.benchmark_group("shard_scaling/amazon-tiny-bfs");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(format!("{shards}-shards"), |b| {
            b.iter(|| {
                let mut sg = ShardedGraph::new(&graph, shards).expect("sharded upload");
                sg.run(Query::Bfs { src: 0 }, &opts).expect("sharded run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
