//! Criterion bench behind Table 2: BFS across all 8 static variants.
//! Criterion measures host-side simulation wall time; the *modeled* GPU
//! speedups of the paper's table come from `repro table2`.

use agg_bench::workloads::load;
use agg_bench::{cpu_baseline_ns, gpu_static_run};
use agg_core::Algo;
use agg_graph::{Dataset, Scale};
use agg_kernels::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = load(Dataset::P2p, Scale::Tiny, 42);
    let mut g = c.benchmark_group("table2_bfs/p2p-tiny");
    g.sample_size(10);
    for v in Variant::ALL {
        g.bench_function(v.name(), |b| {
            b.iter(|| gpu_static_run(&w, Algo::Bfs, v).expect("bfs run"))
        });
    }
    g.bench_function("cpu_baseline", |b| {
        b.iter(|| cpu_baseline_ns(&w, Algo::Bfs))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
