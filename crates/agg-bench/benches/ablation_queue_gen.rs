//! Criterion bench behind ablation X1: atomic vs scan-based queue
//! generation, host-side simulation cost (modeled kernel times come from
//! `repro ablation-queue`).

use agg_gpu_sim::prelude::*;
use agg_kernels::GpuKernels;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let kernels = GpuKernels::build();
    let n: u32 = 20_000;
    let update: Vec<u32> = (0..n).map(|i| (i % 5 == 0) as u32).collect();
    let mut g = c.benchmark_group("queue_gen/20k-nodes-20pct");
    g.sample_size(10);
    for (name, kernel) in [
        ("atomic", &kernels.gen_queue),
        ("scan", &kernels.gen_queue_scan),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
                let u = dev.alloc_from_slice("update", &update);
                let q = dev.alloc("queue", n as usize);
                let len = dev.alloc("len", 1);
                dev.launch(
                    kernel,
                    Grid::linear(n as u64, 192),
                    &LaunchArgs::new().bufs([u, q, len]).scalars([n]),
                )
                .expect("gen")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
