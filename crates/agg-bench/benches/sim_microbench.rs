//! Simulator microbenchmarks: interpreter throughput on characteristic
//! kernel shapes (streaming, divergent, atomic-heavy) and generator
//! throughput. These bound how large a `--scale paper` run can be.

use agg_gpu_sim::ir::expr::Expr;
use agg_gpu_sim::prelude::*;
use agg_graph::{Dataset, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn streaming_kernel() -> Kernel {
    let mut k = KernelBuilder::new("stream");
    let (a, b) = (k.buf_param(), k.buf_param());
    let n = k.scalar_param();
    let tid = k.global_thread_id();
    k.if_(tid.clone().lt(n), |k| {
        let x = k.load(a, tid.clone());
        k.store(b, tid.clone(), x.mul(3u32).add(1u32));
    });
    k.build().unwrap()
}

fn divergent_kernel() -> Kernel {
    let mut k = KernelBuilder::new("divergent");
    let out = k.buf_param();
    let n = k.scalar_param();
    let tid = k.global_thread_id();
    k.if_(tid.clone().lt(n), |k| {
        let i = k.let_(0u32);
        k.while_(Expr::Reg(i).lt(tid.clone().rem(32u32)), |k| {
            k.assign(i, Expr::Reg(i).add(1u32));
        });
        k.store(out, tid.clone(), i);
    });
    k.build().unwrap()
}

fn atomic_kernel() -> Kernel {
    let mut k = KernelBuilder::new("atomic");
    let out = k.buf_param();
    let n = k.scalar_param();
    let tid = k.global_thread_id();
    k.if_(tid.clone().lt(n), |k| {
        k.atomic_add(out, tid.clone().rem(64u32), 1u32);
    });
    k.build().unwrap()
}

fn bench(c: &mut Criterion) {
    let n: u32 = 16_384;
    let mut g = c.benchmark_group("sim_interpreter/16k-threads");
    g.sample_size(10);
    for (name, kernel, words) in [
        ("streaming", streaming_kernel(), n as usize),
        ("divergent", divergent_kernel(), n as usize),
        ("atomic", atomic_kernel(), 64),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
                let a = dev.alloc("a", n as usize);
                let out = dev.alloc("out", words);
                let args = if kernel.num_bufs == 2 {
                    LaunchArgs::new().bufs([a, out]).scalars([n])
                } else {
                    LaunchArgs::new().bufs([out]).scalars([n])
                };
                dev.launch(&kernel, Grid::linear(n as u64, 192), &args)
                    .expect("launch")
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("graph_generation");
    g.sample_size(10);
    for d in [Dataset::CoRoad, Dataset::Google, Dataset::Sns] {
        g.bench_function(d.name(), |b| b.iter(|| d.generate(Scale::Tiny, 42)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
