//! Criterion bench behind Figure 13: adaptive SSSP under different T3
//! settings (the full 1-13% sweep with modeled times is `repro fig13`).

use agg_bench::runner::gpu_run;
use agg_bench::workloads::load;
use agg_core::{AdaptiveConfig, Algo, RunOptions};
use agg_graph::{Dataset, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = load(Dataset::Google, Scale::Tiny, 42);
    let mut g = c.benchmark_group("fig13_t3/google-tiny");
    g.sample_size(10);
    for pct in [1u32, 6, 13] {
        let tuning = AdaptiveConfig {
            t3_fraction: pct as f64 / 100.0,
            ..Default::default()
        };
        let opts = RunOptions::builder().tuning(tuning).build();
        g.bench_function(format!("t3={pct}%"), |b| {
            b.iter(|| gpu_run(&w, Algo::Sssp, &opts).expect("adaptive sssp"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
