//! Criterion bench for the batched-query session layer: a mixed
//! BFS/SSSP/CC/PageRank batch served one-by-one on fresh uploads, through
//! a sequential [`Session`], and through a parallel one. The queries/sec
//! numbers of modeled time are what `repro batch` tabulates; this bench
//! tracks the *host-side* cost of the three serving paths.

use agg_core::{GpuGraph, Query, RunOptions, Session};
use agg_gpu_sim::DeviceConfig;
use agg_graph::{Dataset, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn mixed_batch(n: u32) -> Vec<Query> {
    vec![
        Query::Bfs { src: 0 },
        Query::Bfs { src: n / 2 },
        Query::Sssp { src: 0 },
        Query::Sssp { src: n / 3 },
        Query::Cc,
        Query::pagerank(),
    ]
}

fn bench(c: &mut Criterion) {
    let graph = Dataset::Amazon.generate_weighted(Scale::Tiny, 42, 64);
    let queries = mixed_batch(graph.node_count() as u32);
    let opts = RunOptions::default();
    let mut g = c.benchmark_group("batch_throughput/amazon-tiny");
    g.sample_size(10);
    g.bench_function("one_by_one_fresh_graph", |b| {
        b.iter(|| {
            for q in &queries {
                let mut gg = GpuGraph::new(&graph).expect("upload");
                gg.run(*q, &opts).expect("single run");
            }
        })
    });
    g.bench_function("session_sequential", |b| {
        let mut session = Session::new(&graph).expect("session");
        b.iter(|| session.run_batch(&queries, &opts).expect("batch"))
    });
    g.bench_function("session_parallel_4", |b| {
        let mut session =
            Session::parallel(&graph, DeviceConfig::tesla_c2070(), 4).expect("session");
        b.iter(|| session.run_batch(&queries, &opts).expect("batch"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
