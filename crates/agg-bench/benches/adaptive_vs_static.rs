//! Criterion bench behind the adaptive-vs-static comparison (Section
//! VII.C): the adaptive runtime against representative static variants.

use agg_bench::runner::{gpu_run, gpu_static_run};
use agg_bench::workloads::load;
use agg_core::{Algo, RunOptions};
use agg_graph::{Dataset, Scale};
use agg_kernels::Variant;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let w = load(Dataset::Amazon, Scale::Tiny, 42);
    let mut g = c.benchmark_group("adaptive_vs_static/amazon-tiny");
    g.sample_size(10);
    g.bench_function("adaptive", |b| {
        b.iter(|| gpu_run(&w, Algo::Bfs, &RunOptions::default()).expect("adaptive"))
    });
    for name in ["U_T_BM", "U_B_QU"] {
        let v = Variant::parse(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| gpu_static_run(&w, Algo::Bfs, v).expect("static"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
