//! Criterion bench behind Figure 12: adaptive traversal across all six
//! dataset analogs (the per-dataset best processing speed comes from
//! `repro fig12`).

use agg_bench::runner::gpu_run;
use agg_bench::workloads::load;
use agg_core::{Algo, RunOptions};
use agg_graph::{Dataset, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_adaptive_bfs");
    g.sample_size(10);
    for d in Dataset::ALL {
        let w = load(d, Scale::Tiny, 42);
        g.bench_function(d.name(), |b| {
            b.iter(|| gpu_run(&w, Algo::Bfs, &RunOptions::default()).expect("adaptive bfs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
