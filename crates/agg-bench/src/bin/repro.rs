//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! repro <command> [--scale tiny|small|paper] [--seed N] [--out DIR]
//!
//! commands:
//!   table1           dataset characterization (paper Table 1)
//!   fig1             outdegree distributions (paper Figure 1)
//!   fig2             working-set size per iteration, unordered SSSP (Figure 2)
//!   table2           BFS speedups, 8 variants x 6 datasets (Table 2)
//!   table3           SSSP speedups, 8 variants x 6 datasets (Table 3)
//!   fig11            decision space rendering (Figure 11)
//!   fig12            processing speed of the best variant (Figure 12)
//!   fig13            SSSP execution time vs T3 (Figure 13)
//!   adaptive         adaptive vs best static (Section VII.C)
//!   sampling         inspector sampling-period sweep (Section VI.E)
//!   t2               T_QU vs B_QU per-iteration crossover (Section VII.B)
//!   ablation-queue   atomic vs scan-based queue generation (X1)
//!   ablation-launch  launch-overhead sensitivity on CO-road (X2)
//!   table-cc         connected-components speedups (extension)
//!   ablation-vwarp   virtual-warp mapping width sweep (extension)
//!   hybrid           CPU/GPU hybrid execution vs pure GPU (extension)
//!   table-pagerank   PageRank-delta speedups (extension)
//!   ablation-relabel BFS-order node renumbering vs coalescing (extension)
//!   stats            per-dataset divergence / traffic / atomics profile
//!   ablation-inspector  whole-graph vs working-set degree monitoring (VI.E)
//!   dump-kernels     write every kernel as pseudo-CUDA under --out
//!   paper-spot       paper-size spot checks (adaptive BFS/SSSP vs CPU)
//!   ablation-bottomup direction-optimizing BFS vs pure top-down (extension)
//!   telemetry        per-iteration trace + per-kernel profile capture
//!   batch            batched multi-query sessions: sequential vs parallel
//!                    vs one-by-one, queries/sec (--json PATH writes the
//!                    per-query telemetry artifact)
//!   differential     differential fuzzing: random graphs from all six
//!                    generators, every static variant + adaptive +
//!                    shuffled Session batches + sharded execution,
//!                    compared bit-for-bit against the CPU oracles
//!                    (--cases N, --race-detect; exits nonzero on
//!                    divergence; --json PATH writes the divergence
//!                    artifact)
//!   simbench         simulator speed: the differential suite wall-clocked
//!                    under the interpreter vs the bytecode engine (timed
//!                    and fast-functional legs); writes BENCH_sim.json at
//!                    the repository root (--cases N, --seed S)
//!   shard            multi-device sharded execution: BFS/SSSP scaling
//!                    table over 1/2/4/8 simulated devices (total and
//!                    exchange time, edge cut, speedup vs one device;
//!                    every run checked bit-for-bit against the
//!                    single-device result; --shards N caps the sweep,
//!                    --json PATH writes the per-run report artifact)
//!   serve            throughput serving: a deterministic open-loop
//!                    Poisson trace (mixed algorithms over two hosted
//!                    graphs) replayed through the agg-serve admission /
//!                    micro-batch / epoch-cache pipeline in virtual time,
//!                    cached vs uncached, with every cache hit verified
//!                    bit-identical to uncached recomputation; writes
//!                    BENCH_serve.json at the repository root
//!                    (--queries N, --rate QPS; --json PATH writes the
//!                    per-query latency artifact)
//!   dynamic          dynamic graphs: the incremental-repair identity gate
//!                    (random insert/delete batches over the fuzz corpus,
//!                    CPU incremental oracle + GPU warm repair vs
//!                    from-scratch recompute, ddmin on divergence) plus
//!                    the recompute-vs-incremental crossover sweep;
//!                    writes BENCH_dynamic.json at the repository root
//!                    (--cases N caps the identity corpus; --json PATH
//!                    writes the full artifact; exits nonzero on any
//!                    divergence)
//!   all              everything above (except telemetry, differential,
//!                    and dynamic)
//!
//! telemetry flags (usable with any command; `telemetry` runs only these):
//!   --trace-json PATH  write full run telemetry (per-iteration trace with
//!                      variant/region/exact + estimated ws size/timings,
//!                      always-on metrics, per-kernel profile) as JSON
//!   --profile          print the per-kernel profile table (compute vs
//!                      memory time, coalescing, occupancy)
//!
//! differential flags:
//!   --cases N          corpus size for `differential` (default 256)
//!   --race-detect      run every launch under the simulator's data-race
//!                      detector and report its counters
//!
//! serve flags:
//!   --queries N        query arrivals in the `serve` trace (default 600)
//!   --rate QPS         offered load of the `serve` trace in queries per
//!                      second of virtual time (default 2000)
//!
//! shard flags:
//!   --shards N         largest device count in the `shard` sweep
//!   --datasets A,B     restrict the `shard` sweep to the named datasets
//!   --partition S      partitioning for the `shard` sweep
//!                      (contiguous|degree|clustered; default degree)
//!                      (default 8; the sweep runs 1, 2, 4, 8 up to N)
//! ```
//!
//! Results are printed and written as CSV under `--out` (default
//! `results/`). Default scale is `small`; see EXPERIMENTS.md for the
//! scale-by-scale comparison against the paper's reported numbers.

use agg_bench::runner::{cpu_baseline_ns, gpu_run, speedup_table};
use agg_bench::tables::{format_table, write_csv};
use agg_bench::workloads::{load, load_all, DEFAULT_SEED};
use agg_core::{
    decision, AdaptiveConfig, Algo, CensusMode, GpuGraph, Query, RunOptions, Session, ShardedGraph,
    Strategy,
};
use agg_gpu_sim::prelude::*;
use agg_gpu_sim::Json;
use agg_graph::{stats, Dataset, GraphStats, Scale};
use agg_kernels::{GpuKernels, Variant};
use std::path::PathBuf;
use std::time::Instant;

struct Cli {
    command: String,
    scale: Scale,
    seed: u64,
    out: PathBuf,
    trace_json: Option<PathBuf>,
    json: Option<PathBuf>,
    profile: bool,
    cases: usize,
    race_detect: bool,
    shards: usize,
    datasets: Option<Vec<Dataset>>,
    partition: agg_graph::PartitionStrategy,
    queries: usize,
    rate_qps: f64,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut scale = Scale::Small;
    let mut seed = DEFAULT_SEED;
    let mut out = PathBuf::from("results");
    let mut trace_json = None;
    let mut json = None;
    let mut profile = false;
    let mut cases = 256usize;
    let mut race_detect = false;
    let mut shards = 8usize;
    let mut datasets = None;
    let mut partition = agg_graph::PartitionStrategy::DegreeBalanced;
    let mut queries = 600usize;
    let mut rate_qps = 2000.0f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--scale needs a value (tiny|small|paper)"));
                scale = Scale::parse(&v).unwrap_or_else(|| die(&format!("unknown scale '{v}'")));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| die("--seed needs a value"));
                seed = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--seed needs a u64, got '{v}'")));
            }
            "--out" => {
                out = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--out needs a directory")),
                )
            }
            "--trace-json" => {
                trace_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--trace-json needs a path")),
                ));
            }
            "--json" => {
                json = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--json needs a path")),
                ));
            }
            "--profile" => profile = true,
            "--cases" => {
                let v = args.next().unwrap_or_else(|| die("--cases needs a value"));
                cases = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--cases needs a usize, got '{v}'")));
            }
            "--race-detect" => race_detect = true,
            "--shards" => {
                let v = args.next().unwrap_or_else(|| die("--shards needs a value"));
                shards =
                    v.parse().ok().filter(|&s| s >= 1).unwrap_or_else(|| {
                        die(&format!("--shards needs a positive count, got '{v}'"))
                    });
            }
            "--datasets" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--datasets needs a comma-separated list"));
                let parsed: Vec<Dataset> = v
                    .split(',')
                    .map(|name| {
                        Dataset::parse(name.trim())
                            .unwrap_or_else(|| die(&format!("unknown dataset '{name}'")))
                    })
                    .collect();
                datasets = Some(parsed);
            }
            "--partition" => {
                let v = args.next().unwrap_or_else(|| {
                    die("--partition needs a value (contiguous|degree|clustered)")
                });
                partition = match v.as_str() {
                    "contiguous" => agg_graph::PartitionStrategy::Contiguous1D,
                    "degree" => agg_graph::PartitionStrategy::DegreeBalanced,
                    "clustered" => agg_graph::PartitionStrategy::ClusteredContiguous,
                    _ => die(&format!("unknown partition strategy '{v}'")),
                };
            }
            "--queries" => {
                let v = args.next().unwrap_or_else(|| die("--queries needs a value"));
                queries = v.parse().ok().filter(|&q| q >= 1).unwrap_or_else(|| {
                    die(&format!("--queries needs a positive count, got '{v}'"))
                });
            }
            "--rate" => {
                let v = args.next().unwrap_or_else(|| die("--rate needs a value"));
                rate_qps = v
                    .parse()
                    .ok()
                    .filter(|&r: &f64| r.is_finite() && r > 0.0)
                    .unwrap_or_else(|| die(&format!("--rate needs a positive qps, got '{v}'")));
            }
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    Cli {
        command,
        scale,
        seed,
        out,
        trace_json,
        json,
        profile,
        cases,
        race_detect,
        shards,
        datasets,
        partition,
        queries,
        rate_qps,
    }
}

fn main() {
    let cli = parse_cli();
    if cfg!(debug_assertions) {
        eprintln!("note: debug build — simulation is ~10x slower; use --release for full runs");
    }
    let t0 = Instant::now();
    match cli.command.as_str() {
        "table1" => table1(&cli),
        "fig1" => fig1(&cli),
        "fig2" => fig2(&cli),
        "table2" => speedups(&cli, Algo::Bfs),
        "table3" => speedups(&cli, Algo::Sssp),
        "fig11" => fig11(&cli),
        "fig12" => fig12(&cli),
        "fig13" => fig13(&cli),
        "adaptive" => adaptive(&cli),
        "sampling" => sampling(&cli),
        "t2" => t2_crossover(&cli),
        "ablation-queue" => ablation_queue(&cli),
        "ablation-launch" => ablation_launch(&cli),
        "table-cc" => table_cc(&cli),
        "ablation-vwarp" => ablation_vwarp(&cli),
        "hybrid" => hybrid(&cli),
        "table-pagerank" => table_pagerank(&cli),
        "ablation-relabel" => ablation_relabel(&cli),
        "stats" => stats_profile(&cli),
        "ablation-inspector" => ablation_inspector(&cli),
        "dump-kernels" => dump_kernels(&cli),
        "paper-spot" => paper_spot(&cli),
        "ablation-bottomup" => ablation_bottomup(&cli),
        "batch" => batch(&cli),
        "differential" => differential(&cli),
        "simbench" => simbench(&cli),
        "shard" => shard(&cli),
        "serve" => serve(&cli),
        "dynamic" => dynamic(&cli),
        "telemetry" => {} // the flag handling below does all the work
        "all" => {
            table1(&cli);
            fig1(&cli);
            fig2(&cli);
            speedups(&cli, Algo::Bfs);
            speedups(&cli, Algo::Sssp);
            fig11(&cli);
            fig12(&cli);
            fig13(&cli);
            adaptive(&cli);
            sampling(&cli);
            t2_crossover(&cli);
            ablation_queue(&cli);
            ablation_launch(&cli);
            table_cc(&cli);
            ablation_vwarp(&cli);
            hybrid(&cli);
            table_pagerank(&cli);
            ablation_relabel(&cli);
            stats_profile(&cli);
            ablation_inspector(&cli);
            ablation_bottomup(&cli);
            batch(&cli);
            shard(&cli);
            serve(&cli);
            dump_kernels(&cli);
        }
        other => {
            eprintln!("unknown command '{other}'; see the module docs for the list");
            std::process::exit(2);
        }
    }
    // Telemetry capture piggybacks on any command (and is all the bare
    // `telemetry` command does).
    if cli.trace_json.is_some() || cli.profile || cli.command == "telemetry" {
        telemetry(&cli);
    }
    eprintln!("\n[repro] finished in {:.1}s", t0.elapsed().as_secs_f64());
}

// ---------------------------------------------------------------- Telemetry

/// Runs the adaptive runtime with full instrumentation (per-iteration
/// trace with an exact census, always-on metrics, per-kernel profiles)
/// and serializes/prints the result per `--trace-json` / `--profile`.
fn telemetry(cli: &Cli) {
    banner("Telemetry: per-iteration trace + per-kernel launch profiles (adaptive)");
    let workloads = load_all(cli.scale, cli.seed);
    // An exact census every iteration: the trace then carries both the
    // exact ws size and the (possibly stale) estimate the decision
    // maker consumed, so sampling error is measurable offline.
    let opts = RunOptions::builder()
        .census(CensusMode::Every)
        .trace()
        .build();
    let mut runs = Vec::new();
    let mut profile_rows = Vec::new();
    for w in &workloads {
        for algo in [Algo::Bfs, Algo::Sssp] {
            let r = gpu_run(w, algo, &opts).expect("telemetry run");
            println!(
                "{} {:?}: {} iterations, {} switches, {} census launches, \
                 inspector {:.1}% of iteration time",
                w.dataset.name(),
                algo,
                r.iterations,
                r.switches,
                r.metrics.census_launches,
                100.0 * r.metrics.inspector_ns_total / r.metrics.iter_ns_total.max(1.0),
            );
            if cli.profile {
                for p in r.profile.kernels() {
                    profile_rows.push(vec![
                        w.dataset.name().to_string(),
                        format!("{algo:?}"),
                        p.kernel.clone(),
                        p.launches.to_string(),
                        format!("{:.1}", p.time_ns / 1e3),
                        format!("{:.1}", p.compute_ns / 1e3),
                        format!("{:.1}", p.mem_ns / 1e3),
                        format!("{:.2}", p.coalescing_efficiency()),
                        format!("{:.2}", p.occupancy_fraction),
                    ]);
                }
            }
            runs.push(Json::obj([
                ("dataset", w.dataset.name().into()),
                ("algo", format!("{algo:?}").into()),
                ("report", r.to_json()),
            ]));
        }
    }
    if cli.profile {
        let header: Vec<String> = [
            "network",
            "algo",
            "kernel",
            "launches",
            "time_us",
            "compute_us",
            "mem_us",
            "coalesce",
            "occupancy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        println!("\n{}", format_table(&header, &profile_rows, |_| None));
        println!("(compute_us = issue + exposed-stall time; mem_us = bytes / bandwidth;");
        println!(" coalesce = 1 / memory transactions per warp-level access)");
    }
    if let Some(path) = &cli.trace_json {
        let doc = Json::obj([
            ("scale", format!("{:?}", cli.scale).into()),
            ("seed", cli.seed.into()),
            ("runs", Json::Arr(runs)),
        ]);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create --trace-json directory");
        }
        std::fs::write(path, doc.render_pretty()).expect("write --trace-json file");
        println!("\n[json] {}", path.display());
    }
}

// ------------------------------------------------------------------ Batch

/// Batched multi-query sessions (the `Session` layer): a mixed
/// BFS/SSSP/CC/PageRank batch per dataset, one-by-one on fresh uploads vs
/// a sequential session vs a parallel session, reported as queries per
/// second of modeled time. `--json PATH` writes the per-query telemetry
/// artifact.
fn batch(cli: &Cli) {
    banner("Batched multi-query sessions: one-by-one vs Session (sequential | parallel)");
    const WORKERS: usize = 4;
    let workloads = load_all(cli.scale, cli.seed);
    let header: Vec<String> = [
        "network",
        "queries",
        "one_by_one_ms",
        "session_ms",
        "par_makespan_ms",
        "session_qps",
        "parallel_qps",
        "pool_hits",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut docs = Vec::new();
    let opts = RunOptions::default();
    for w in &workloads {
        let n = w.graph.node_count() as u32;
        let queries: Vec<Query> = vec![
            Query::Bfs { src: w.src },
            Query::Bfs { src: n / 2 },
            Query::Bfs {
                src: n.saturating_sub(1),
            },
            Query::Sssp { src: w.src },
            Query::Sssp { src: n / 3 },
            Query::Cc,
            Query::pagerank(),
        ];
        // Baseline: each query pays a fresh upload and allocation.
        let mut one_by_one_ns = 0.0;
        for q in &queries {
            let mut gg = GpuGraph::new(&w.graph).expect("upload");
            let r = gg.run(*q, &opts).expect("single run");
            one_by_one_ns += r.total_ns;
        }
        let mut seq = Session::new(&w.graph).expect("session");
        let bs = seq.run_batch(&queries, &opts).expect("sequential batch");
        let mut par =
            Session::parallel(&w.graph, DeviceConfig::tesla_c2070(), WORKERS).expect("session");
        let bp = par.run_batch(&queries, &opts).expect("parallel batch");
        for (a, b) in bs.queries.iter().zip(&bp.queries) {
            assert_eq!(
                a.report.values,
                b.report.values,
                "{} query #{}: parallel != sequential",
                w.dataset.name(),
                a.index
            );
        }
        rows.push(vec![
            w.dataset.name().to_string(),
            queries.len().to_string(),
            format!("{:.2}", one_by_one_ns / 1e6),
            format!("{:.2}", bs.total_ms()),
            format!("{:.2}", bp.makespan_ns / 1e6),
            format!("{:.0}", bs.queries_per_sec()),
            format!("{:.0}", bp.queries_per_sec()),
            bs.pool.hits.to_string(),
        ]);
        docs.push(Json::obj([
            ("dataset", w.dataset.name().into()),
            ("one_by_one_ns", one_by_one_ns.into()),
            ("sequential", bs.to_json()),
            ("parallel", bp.to_json()),
        ]));
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!(
        "(queries/sec of modeled serving time = critical path; the session amortizes the graph upload and\n\
         \u{20}reuses pooled device state; par_makespan = critical path across {WORKERS} workers,\n\
         \u{20}one simulated device each, results bit-identical to sequential)"
    );
    let path = write_csv(&cli.out, "batch", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
    if let Some(path) = &cli.json {
        let doc = Json::obj([
            ("scale", format!("{:?}", cli.scale).into()),
            ("seed", cli.seed.into()),
            ("workers", WORKERS.into()),
            ("batches", Json::Arr(docs)),
        ]);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create --json directory");
        }
        std::fs::write(path, doc.render_pretty()).expect("write --json file");
        println!("[json] {}", path.display());
    }
}

// ------------------------------------------------------------ Differential

/// Bounded differential fuzzing run (the CI `differential-smoke` job and
/// the manual bug hunt). Deterministic in (`--cases`, `--seed`); writes
/// the divergence artifact to `--json` (or `--out`/differential.json)
/// and exits nonzero when any divergence or harmful race is found.
fn differential(cli: &Cli) {
    banner("Differential fuzzing: GPU variants + adaptive + batches vs CPU oracles");
    let mut cfg = agg_bench::FuzzConfig::new(cli.cases, cli.seed);
    cfg.race_detect = cli.race_detect;
    println!(
        "corpus: {} graphs (seed {}), race detection {}",
        cfg.cases,
        cfg.seed,
        if cfg.race_detect { "on" } else { "off" }
    );
    let report = agg_bench::fuzz(&cfg);
    println!(
        "{} runs over {} graphs, {} shuffled batches, {} sharded runs: {} divergence(s)",
        report.runs,
        report.cases,
        report.batches,
        report.sharded_runs,
        report.divergences.len()
    );
    if cli.race_detect {
        println!(
            "race detector: {} launches checked, {} benign word(s), {} harmful word(s)",
            report.race_launches_checked, report.race_benign_words, report.race_harmful_words
        );
    }
    for d in &report.divergences {
        println!(
            "  DIVERGED case {} ({}, {} nodes / {} edges): {}/{} src {}{}",
            d.case,
            d.generator,
            d.nodes,
            d.edges,
            d.algo,
            d.exec,
            d.src,
            d.error
                .as_ref()
                .map(|e| format!(" — error: {e}"))
                .unwrap_or_default()
        );
        if let Some(m) = &d.minimized {
            println!(
                "    minimized: {} nodes, {} edge(s), src {}: {:?}",
                m.nodes,
                m.edges.len(),
                m.src,
                m.edges
            );
        }
    }
    let path = cli
        .json
        .clone()
        .unwrap_or_else(|| cli.out.join("differential.json"));
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create artifact directory");
    }
    let doc = Json::obj([("seed", cli.seed.into()), ("report", report.to_json())]);
    std::fs::write(&path, doc.render_pretty()).expect("write differential artifact");
    println!("[json] {}", path.display());
    if !report.is_clean() {
        eprintln!("differential: FAILED (see artifact above)");
        std::process::exit(1);
    }
    println!("differential: clean");
}

// --------------------------------------------------------------- Simbench

/// Simulator speed benchmark: the repro/differential suite wall-clocked
/// under both execution engines. Each leg runs the full differential
/// corpus (`--cases` graphs, every execution configuration vs the CPU
/// oracles) plus the adaptive runtime on every paper workload at
/// `--scale` (BFS/SSSP/CC/PageRank per dataset). Four legs, all of
/// which must come back clean and value-identical:
///
/// 1. the legacy harness configuration — tree-walking interpreter, fully
///    timed, race detector on (what every artifact paid before the
///    bytecode engine landed);
/// 2. the bytecode engine at the same timed+races fidelity (isolates the
///    engine swap from the fidelity split);
/// 3. the bytecode engine fully timed with the race detector off — the
///    timed fast lane (folded cost blocks, pattern-cached coalescing,
///    batched charging) that paper-scale timed tables pay;
/// 4. the bytecode engine at fast-functional fidelity (the harness
///    default today).
///
/// Writes `BENCH_sim.json` at the repository root with per-leg
/// corpus-vs-workload wall breakdowns and a rolling `speedup_timed`
/// history; the CI `sim-speed` job gates on `speedup` (leg 1 / leg 4)
/// and `speedup_timed` (leg 1 / leg 3) staying above their floors.
fn simbench(cli: &Cli) {
    banner("Simulator speed: repro + differential suites, interpreter vs bytecode");
    let legs: [(&str, ExecEngine, SimFidelity); 4] = [
        (
            "interpreter_timed_races",
            ExecEngine::Interpreter,
            SimFidelity::TimedWithRaces,
        ),
        (
            "bytecode_timed_races",
            ExecEngine::Bytecode,
            SimFidelity::TimedWithRaces,
        ),
        ("bytecode_timed", ExecEngine::Bytecode, SimFidelity::Timed),
        (
            "bytecode_functional",
            ExecEngine::Bytecode,
            SimFidelity::Functional,
        ),
    ];
    let workloads = load_all(cli.scale, cli.seed);
    let mut wall = Vec::new();
    let mut docs = Vec::new();
    let mut baseline_values: Option<Vec<Vec<u32>>> = None;
    for (name, engine, fidelity) in legs {
        let mut cfg = agg_bench::FuzzConfig::new(cli.cases, cli.seed);
        cfg.engine = engine;
        cfg.race_detect = matches!(fidelity, SimFidelity::TimedWithRaces);
        cfg.fidelity = Some(fidelity);
        let t0 = Instant::now();
        let report = agg_bench::fuzz(&cfg);
        if !report.is_clean() {
            eprintln!(
                "simbench: leg '{name}' diverged ({} divergence(s)) — engines disagree",
                report.divergences.len()
            );
            std::process::exit(1);
        }
        let corpus_secs = t0.elapsed().as_secs_f64();
        let mut leg_values = Vec::new();
        let mut repro_runs = 0u64;
        let t1 = Instant::now();
        for w in &workloads {
            let dev_cfg = DeviceConfig::tesla_c2070()
                .with_engine(engine)
                .with_fidelity(fidelity);
            let mut gg = GpuGraph::with_device(&w.graph, dev_cfg).expect("simbench device");
            for q in [
                Query::Bfs { src: w.src },
                Query::Sssp { src: w.src },
                Query::Cc,
                Query::pagerank(),
            ] {
                let r = gg.run(q, &RunOptions::default()).expect("simbench run");
                leg_values.push(r.values);
                repro_runs += 1;
            }
        }
        let workload_secs = t1.elapsed().as_secs_f64();
        let secs = corpus_secs + workload_secs;
        match &baseline_values {
            None => baseline_values = Some(leg_values),
            Some(base) => {
                if *base != leg_values {
                    eprintln!("simbench: leg '{name}' produced different workload values");
                    std::process::exit(1);
                }
            }
        }
        println!(
            "  {name:<26} {secs:>8.2}s  (corpus {corpus_secs:.2}s / {} runs, \
             workloads {workload_secs:.2}s / {repro_runs} runs, clean)",
            report.runs
        );
        wall.push(secs);
        docs.push(Json::obj([
            ("name", name.into()),
            ("engine", format!("{engine:?}").into()),
            ("fidelity", format!("{fidelity:?}").into()),
            (
                "race_detect",
                Json::Bool(matches!(fidelity, SimFidelity::TimedWithRaces)),
            ),
            ("wall_s", secs.into()),
            ("corpus_wall_s", corpus_secs.into()),
            ("workload_wall_s", workload_secs.into()),
            ("corpus_runs", report.runs.into()),
            ("workload_runs", repro_runs.into()),
        ]));
    }
    // Primary gate: the legacy fully-timed harness against the timed
    // fast lane (same modeled nanoseconds, no race bookkeeping) — the
    // configuration every paper-scale timed table now pays. The
    // engine-isolated timed+races ratio stays as a secondary metric.
    let speedup_timed = wall[0] / wall[2];
    let speedup_timed_races = wall[0] / wall[1];
    let speedup = wall[0] / wall[3];
    println!(
        "  timed speedup (legacy vs timed fast lane): {speedup_timed:.2}x\n  \
         engine speedup (timed+races vs timed+races): {speedup_timed_races:.2}x\n  \
         suite speedup (legacy vs new default): {speedup:.2}x"
    );
    let mut history = prior_speedup_timed_history("BENCH_sim.json");
    history.push(speedup_timed);
    let keep = history.len().saturating_sub(24);
    let doc = Json::obj([
        ("suite", "differential+repro".into()),
        ("cases", cli.cases.into()),
        ("scale", format!("{:?}", cli.scale).into()),
        ("seed", cli.seed.into()),
        ("legs", Json::Arr(docs)),
        ("speedup_timed", speedup_timed.into()),
        ("speedup_timed_races", speedup_timed_races.into()),
        ("speedup", speedup.into()),
        (
            "speedup_timed_history",
            Json::arr(history[keep..].iter().map(|&s| s.into())),
        ),
    ]);
    std::fs::write("BENCH_sim.json", doc.render_pretty()).expect("write BENCH_sim.json");
    println!("[json] BENCH_sim.json");
}

/// Pulls the rolling `speedup_timed_history` out of the previous
/// `BENCH_sim.json`, so each simbench run appends rather than
/// overwrites. The artifact is machine-written with known formatting, so
/// a targeted scan beats carrying a JSON parser: read the array after
/// the key, or fall back to the scalar `speedup_timed` from artifacts
/// that predate the history field. Missing or malformed files yield an
/// empty history.
fn prior_speedup_timed_history(path: &str) -> Vec<f64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    if let Some(at) = text.find("\"speedup_timed_history\"") {
        let rest = &text[at..];
        if let (Some(lb), Some(rb)) = (rest.find('['), rest.find(']')) {
            if lb < rb {
                return rest[lb + 1..rb]
                    .split(',')
                    .filter_map(|s| s.trim().parse::<f64>().ok())
                    .collect();
            }
        }
        return Vec::new();
    }
    if let Some(at) = text.find("\"speedup_timed\"") {
        let rest = &text[at + "\"speedup_timed\"".len()..];
        if let Some(colon) = rest.find(':') {
            let val = rest[colon + 1..]
                .split([',', '}', '\n'])
                .next()
                .unwrap_or("");
            if let Ok(v) = val.trim().parse::<f64>() {
                return vec![v];
            }
        }
    }
    Vec::new()
}

// ------------------------------------------------------------------ Shard

/// Multi-device sharded execution: BFS and SSSP per dataset, split over
/// 1/2/4/8 simulated devices with per-superstep frontier exchange over a
/// modeled PCIe interconnect, under the cut-minimizing clustered
/// partitioner with boundary/interior overlap. Every sharded run is
/// checked bit-for-bit against the single-device result before its row
/// is printed — the scaling table is only as interesting as the answers
/// are identical. `--shards N` caps the sweep; `--json PATH` writes
/// every [`agg_core::ShardReport`] as a JSON artifact. A compact
/// per-configuration summary (total / exchange / overlap / speedup) is
/// always written to `BENCH_shard.json` at the repository root.
fn shard(cli: &Cli) {
    banner("Multi-device sharded execution: scaling over simulated devices (PCIe model)");
    let counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&k| k <= cli.shards)
        .collect();
    let mut workloads = load_all(cli.scale, cli.seed);
    if let Some(wanted) = &cli.datasets {
        workloads.retain(|w| wanted.contains(&w.dataset));
    }
    let header: Vec<String> = [
        "network",
        "algo",
        "shards",
        "total_ms",
        "exchange_ms",
        "overlap_ms",
        "exchange_pct",
        "cut_pct",
        "speedup",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut docs = Vec::new();
    let mut bench = Vec::new();
    let opts = RunOptions::default();
    for w in &workloads {
        for algo in [Algo::Bfs, Algo::Sssp] {
            let query = match algo {
                Algo::Bfs => Query::Bfs { src: w.src },
                _ => Query::Sssp { src: w.src },
            };
            let mut gg = GpuGraph::new(&w.graph).expect("single-device upload");
            let single = gg.run(query, &opts).expect("single-device run");
            let mut base_ms = None;
            for &k in &counts {
                let mut sg = ShardedGraph::with_config(
                    &w.graph,
                    k,
                    cli.partition,
                    DeviceConfig::tesla_c2070(),
                    Interconnect::pcie(),
                )
                .expect("sharded upload");
                let r = sg.run(query, &opts).expect("sharded run");
                assert_eq!(
                    r.values,
                    single.values,
                    "{} {:?} x{k}: sharded result != single-device",
                    w.dataset.name(),
                    algo
                );
                assert_eq!(r.accounting_gap(), 0.0, "time accounting leak");
                let total_ms = r.total_ms();
                let base = *base_ms.get_or_insert(total_ms);
                rows.push(vec![
                    w.dataset.name().to_string(),
                    format!("{algo:?}"),
                    k.to_string(),
                    format!("{total_ms:.2}"),
                    format!("{:.2}", r.exchange_ns / 1e6),
                    format!("{:.2}", r.overlap_saved_ns / 1e6),
                    format!("{:.1}", 100.0 * r.exchange_ns / r.total_ns.max(1.0)),
                    format!("{:.1}", 100.0 * r.cut_fraction),
                    format!("{:.2}", base / total_ms),
                ]);
                bench.push(Json::obj([
                    ("dataset", w.dataset.name().into()),
                    ("algo", format!("{algo:?}").into()),
                    ("shards", k.into()),
                    ("total_ns", r.total_ns.into()),
                    ("exchange_ns", r.exchange_ns.into()),
                    ("overlap_saved_ns", r.overlap_saved_ns.into()),
                    ("cut_fraction", r.cut_fraction.into()),
                    ("speedup", (base / total_ms).into()),
                ]));
                let mut doc = vec![
                    ("dataset", Json::from(w.dataset.name())),
                    ("algo", format!("{algo:?}").into()),
                    ("report", r.to_json()),
                ];
                if std::env::var_os("AGG_SHARD_PROFILE").is_some() {
                    doc.push(("kernel_profiles", Json::Arr(sg.kernel_profiles())));
                }
                docs.push(Json::obj(doc));
            }
        }
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!(
        "(speedup = one-device modeled time / k-device modeled time, same adaptive runtime\n\
         \u{20}per shard; exchange = visible all-to-all frontier traffic over PCIe after\n\
         \u{20}boundary/interior overlap (overlap_ms = wire time hidden behind interior\n\
         \u{20}compute); cut_pct = cross-shard edges under the selected partitioning\n\
         \u{20}(--partition, default degree-balanced); results bit-identical)"
    );
    let path = write_csv(&cli.out, "shard_scaling", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
    let bench_doc = Json::obj([
        ("scale", format!("{:?}", cli.scale).into()),
        ("seed", cli.seed.into()),
        ("partition_strategy", format!("{:?}", cli.partition).into()),
        ("configs", Json::Arr(bench)),
    ]);
    std::fs::write("BENCH_shard.json", bench_doc.render_pretty()).expect("write BENCH_shard.json");
    println!("[json] BENCH_shard.json");
    if let Some(path) = &cli.json {
        let doc = Json::obj([
            ("scale", format!("{:?}", cli.scale).into()),
            ("seed", cli.seed.into()),
            ("runs", Json::Arr(docs)),
        ]);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create --json directory");
        }
        std::fs::write(path, doc.render_pretty()).expect("write --json file");
        println!("[json] {}", path.display());
    }
}

// ------------------------------------------------------------------ Serve

/// The throughput-serving benchmark: one deterministic open-loop Poisson
/// trace (mixed BFS/SSSP/CC/PageRank over two hosted graphs, periodic
/// dynamic update batches), replayed twice through the agg-serve
/// admission → micro-batch → Session → cache pipeline in virtual time:
///
/// 1. **cached** — the production path, with every cache hit recomputed
///    through the uncached path and compared bit-for-bit (`verify_hits`);
/// 2. **uncached** — the same trace with the result cache disabled, the
///    baseline that prices what memoization buys.
///
/// Latencies are virtual (arrivals from the trace, service times from the
/// simulator's modeled nanoseconds), so p50/p99/queries-per-sec are exactly
/// reproducible. Writes `BENCH_serve.json` at the repository root with
/// both legs and a rolling cached-qps history; the CI `serve-smoke` job
/// gates on zero shed and on the cache-identity flag.
fn serve(cli: &Cli) {
    banner("Serving: open-loop trace through admission / micro-batching / epoch cache");
    let hosted: [(Dataset, &str); 2] = [(Dataset::Amazon, "amazon"), (Dataset::Google, "google")];
    let build_hosts = || -> Vec<agg_serve::Hosted> {
        hosted
            .iter()
            .enumerate()
            .map(|(i, (dataset, name))| {
                let graph = std::sync::Arc::new(dataset.generate_weighted(
                    cli.scale,
                    cli.seed + i as u64,
                    64,
                ));
                agg_serve::Hosted::new(*name, graph, DeviceConfig::tesla_c2070())
                    .expect("serve host")
            })
            .collect()
    };
    let trace = agg_serve::ArrivalTrace::generate(agg_serve::TraceConfig {
        queries: cli.queries,
        rate_qps: cli.rate_qps,
        seed: cli.seed,
        graphs: hosted.iter().map(|(_, n)| n.to_string()).collect(),
        source_pool: 8,
        // Two dynamic update batches mid-trace: enough to price epoch
        // invalidation and cache repair without turning the run into a
        // cold-cache benchmark.
        update_every: (cli.queries / 3).max(1),
        update_size: 4,
    });
    // The benchmark prices batching + caching, not admission: the queue
    // holds the whole trace so neither leg sheds (overload behavior is
    // covered by the agg-serve test suite).
    let base = agg_serve::ReplayConfig {
        queue_capacity: cli.queries,
        max_batch: 8,
        max_wait_ns: 200_000,
        cache_hit_ns: 20_000,
        verify_hits: false,
        use_cache: true,
    };
    println!(
        "trace: {} queries over {} graphs at {:.0} qps offered (seed {}), {} update batches",
        trace.query_count(),
        hosted.len(),
        cli.rate_qps,
        cli.seed,
        trace.arrivals.len() - trace.query_count(),
    );
    let legs: [(&str, agg_serve::ReplayConfig); 2] = [
        (
            "cached",
            agg_serve::ReplayConfig {
                verify_hits: true,
                ..base.clone()
            },
        ),
        (
            "uncached",
            agg_serve::ReplayConfig {
                use_cache: false,
                ..base
            },
        ),
    ];
    let header: Vec<String> = [
        "leg", "served", "shed", "hits", "batches", "p50_ms", "p99_ms", "mean_ms", "qps",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for (name, config) in legs {
        let t0 = Instant::now();
        let outcome =
            agg_serve::replay(&mut build_hosts(), &trace, &config).expect("serve replay");
        let r = &outcome.report;
        println!(
            "  {name:<9} replayed in {:.1}s wall ({} cache hits verified bit-identical)",
            t0.elapsed().as_secs_f64(),
            r.verified_hits,
        );
        if !r.cache_identity_ok {
            eprintln!("serve: leg '{name}' served cached values that differ from recomputation");
            std::process::exit(1);
        }
        rows.push(vec![
            name.to_string(),
            r.served.to_string(),
            r.shed.to_string(),
            r.cache_hits.to_string(),
            r.batches.to_string(),
            format!("{:.3}", r.p50_latency_ns as f64 / 1e6),
            format!("{:.3}", r.p99_latency_ns as f64 / 1e6),
            format!("{:.3}", r.mean_latency_ns / 1e6),
            format!("{:.0}", r.qps),
        ]);
        reports.push((name, outcome));
    }
    println!("{}", format_table(&header, &rows, |_| None));
    let cached = &reports[0].1.report;
    let uncached = &reports[1].1.report;
    let p99_gain = uncached.p99_latency_ns as f64 / (cached.p99_latency_ns.max(1)) as f64;
    let qps_gain = cached.qps / uncached.qps.max(1e-9);
    println!(
        "(virtual-time replay: latency = modeled batch makespans + queueing; the epoch cache\n\
         \u{20}answers repeats in {:.0} us, cutting p99 {p99_gain:.1}x and lifting throughput {qps_gain:.2}x;\n\
         \u{20}every hit above was recomputed uncached and matched bit-for-bit)",
        base.cache_hit_ns as f64 / 1e3,
    );
    let path = write_csv(&cli.out, "serve", &header, &rows).unwrap();
    println!("[csv] {}", path.display());

    let mut history = prior_qps_history("BENCH_serve.json");
    history.push(cached.qps);
    let keep = history.len().saturating_sub(24);
    let doc = Json::obj([
        ("suite", "serve-replay".into()),
        ("scale", format!("{:?}", cli.scale).into()),
        ("seed", cli.seed.into()),
        ("queries", trace.query_count().into()),
        ("rate_qps", cli.rate_qps.into()),
        (
            "graphs",
            Json::arr(hosted.iter().map(|(_, n)| Json::from(*n))),
        ),
        ("max_batch", base.max_batch.into()),
        ("max_wait_ns", base.max_wait_ns.into()),
        ("cache_hit_ns", base.cache_hit_ns.into()),
        ("qps", cached.qps.into()),
        ("p50_latency_ns", cached.p50_latency_ns.into()),
        ("p99_latency_ns", cached.p99_latency_ns.into()),
        ("cache_identity_ok", cached.cache_identity_ok.into()),
        ("qps_gain_vs_uncached", qps_gain.into()),
        ("cached", cached.to_json()),
        ("uncached", uncached.to_json()),
        (
            "qps_history",
            Json::arr(history[keep..].iter().map(|&s| s.into())),
        ),
    ]);
    std::fs::write("BENCH_serve.json", doc.render_pretty()).expect("write BENCH_serve.json");
    println!("[json] BENCH_serve.json");

    if let Some(path) = &cli.json {
        let legs_doc: Vec<Json> = reports
            .iter()
            .map(|(name, outcome)| {
                Json::obj([
                    ("leg", (*name).into()),
                    ("report", outcome.report.to_json()),
                    (
                        "latencies_ns",
                        Json::arr(outcome.records.iter().map(|r| match r.latency_ns {
                            Some(ns) => ns.into(),
                            None => Json::Null,
                        })),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("scale", format!("{:?}", cli.scale).into()),
            ("seed", cli.seed.into()),
            ("legs", Json::Arr(legs_doc)),
        ]);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create --json directory");
        }
        std::fs::write(path, doc.render_pretty()).expect("write --json file");
        println!("[json] {}", path.display());
    }
}

// ----------------------------------------------------------------- Dynamic

/// Dynamic graphs: the incremental-repair identity gate plus the
/// recompute-vs-incremental crossover table (the dynamic analog of the
/// paper's Figure 11 decision space). Two stages:
///
/// 1. **identity** — a bounded dynamic differential fuzz over the shared
///    adversarial corpus: random insert/delete batches, every mutation
///    checked four ways (cold GPU, CPU incremental oracle, unchanged
///    plans, GPU warm repair) against the from-scratch CPU recompute,
///    with ddmin over the update sequence on any divergence;
/// 2. **crossover** — growing insert batches against the Amazon analog
///    at `--scale`: modeled nanoseconds of warm repair vs cold recompute
///    per repairable algorithm, and the first batch size at which repair
///    stops winning (by the clock or by the planner's own fallback).
///
/// Writes `BENCH_dynamic.json` at the repository root (the CI
/// `dynamic-smoke` job gates on `clean`, `identity_ok`, a non-empty
/// crossover table, and incremental plans actually being exercised) and
/// exits nonzero when any gate fails.
fn dynamic(cli: &Cli) {
    banner("Dynamic graphs: incremental repair identity + recompute-vs-incremental crossover");
    let cases = cli.cases.min(match cli.scale {
        Scale::Tiny => 12,
        Scale::Small => 32,
        Scale::Paper => 64,
    });
    let cfg = agg_bench::DynFuzzConfig::new(cases, cli.seed);
    println!(
        "identity: {} corpus graphs x {} update rounds of {} updates (seed {})",
        cfg.cases, cfg.rounds, cfg.update_size, cfg.seed
    );
    let t0 = Instant::now();
    let fuzz_report = agg_bench::dyn_fuzz(&cfg);
    println!(
        "  {} applied batches ({} no-ops), {} checks; plans: {} unchanged / {} incremental / \
         {} recompute; {} warm runs, {} compactions — {} divergence(s) [{:.1}s]",
        fuzz_report.rounds_applied,
        fuzz_report.rounds_noop,
        fuzz_report.checks,
        fuzz_report.plans_unchanged,
        fuzz_report.plans_incremental,
        fuzz_report.plans_recompute,
        fuzz_report.warm_runs,
        fuzz_report.compactions,
        fuzz_report.divergences.len(),
        t0.elapsed().as_secs_f64(),
    );
    for d in &fuzz_report.divergences {
        println!(
            "  DIVERGED case {} round {} ({}, {} nodes / {} edges): {}/{} src {}{}",
            d.case,
            d.round,
            d.generator,
            d.nodes,
            d.edges,
            d.algo,
            d.lane,
            d.src,
            d.error
                .as_ref()
                .map(|e| format!(" — error: {e}"))
                .unwrap_or_default()
        );
        if !d.minimized_updates.is_empty() {
            println!(
                "    minimized to {} update(s): {:?}",
                d.minimized_updates.len(),
                d.minimized_updates
            );
        }
    }

    let graph = Dataset::Amazon.generate_weighted(cli.scale, cli.seed, 64);
    let sizes = agg_bench::sweep_sizes(graph.edge_count());
    println!(
        "crossover: amazon at {:?} ({} nodes / {} edges), insert batches {:?}",
        cli.scale,
        graph.node_count(),
        graph.edge_count(),
        sizes
    );
    let xr = agg_bench::crossover(&graph, cli.seed, &sizes);
    let header: Vec<String> = ["algo", "batch", "seeds", "plan", "fresh_ms", "warm_ms", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = xr
        .rows
        .iter()
        .map(|p| {
            vec![
                p.algo.clone(),
                p.batch_size.to_string(),
                p.seeds.to_string(),
                p.plan.clone(),
                format!("{:.3}", p.fresh_ns / 1e6),
                p.warm_ns
                    .map(|w| format!("{:.3}", w / 1e6))
                    .unwrap_or_else(|| "-".into()),
                p.speedup()
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows, |_| None));
    for (algo, at) in &xr.crossover_at {
        match at {
            Some(k) => println!(
                "  {algo}: incremental repair stops winning at batch size {k}"
            ),
            None => println!("  {algo}: incremental repair won at every swept size"),
        }
    }
    println!(
        "(speedup = cold modeled time / warm modeled time on the updated graph; \"-\" = the\n\
         \u{20}planner served unchanged or fell back to recompute; every warm result above was\n\
         \u{20}verified bit-identical to the cold run before its time was recorded)"
    );
    let path = write_csv(&cli.out, "dynamic_crossover", &header, &rows).unwrap();
    println!("[csv] {}", path.display());

    let doc = Json::obj([
        ("suite", "dynamic".into()),
        ("scale", format!("{:?}", cli.scale).into()),
        ("seed", cli.seed.into()),
        ("identity", fuzz_report.to_json()),
        ("crossover", xr.to_json()),
    ]);
    std::fs::write("BENCH_dynamic.json", doc.render_pretty()).expect("write BENCH_dynamic.json");
    println!("[json] BENCH_dynamic.json");
    if let Some(path) = &cli.json {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create --json directory");
        }
        std::fs::write(path, doc.render_pretty()).expect("write --json file");
        println!("[json] {}", path.display());
    }

    let mut failed = Vec::new();
    if !fuzz_report.is_clean() {
        failed.push("identity fuzz found divergences");
    }
    if fuzz_report.plans_incremental == 0 {
        failed.push("the corpus never exercised an incremental plan");
    }
    if !xr.identity_ok {
        failed.push("a warm repair diverged from its cold recompute");
    }
    if xr.rows.is_empty() {
        failed.push("the crossover sweep produced no rows");
    }
    if !failed.is_empty() {
        for f in &failed {
            eprintln!("dynamic: FAILED — {f}");
        }
        std::process::exit(1);
    }
    println!("dynamic: clean");
}

/// Pulls the rolling cached-qps history out of the previous
/// `BENCH_serve.json` so each serve run appends a point instead of
/// overwriting the trajectory. Parsed with the real JSON reader (unlike
/// the older text-scanning `prior_speedup_timed_history`, which predates
/// `Json::parse`); a missing or malformed file yields an empty history.
fn prior_qps_history(path: &str) -> Vec<f64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        return Vec::new();
    };
    doc.get("qps_history")
        .and_then(Json::as_arr)
        .map(|items| items.iter().filter_map(Json::as_f64).collect())
        .unwrap_or_default()
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

// ---------------------------------------------------------------- Table 1

fn table1(cli: &Cli) {
    banner("Table 1: dataset characterization (synthetic analogs vs paper)");
    let header: Vec<String> = [
        "network",
        "nodes",
        "edges",
        "deg.min",
        "deg.max",
        "deg.avg",
        "paper.nodes",
        "paper.edges",
        "paper.avg",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = d.generate(cli.scale, cli.seed);
        let s = GraphStats::compute(&g);
        let p = d.paper_stats();
        rows.push(vec![
            d.name().to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            s.degree.min.to_string(),
            s.degree.max.to_string(),
            format!("{:.1}", s.degree.avg),
            p.nodes.to_string(),
            p.edges.to_string(),
            format!("{:.1}", p.avg_outdegree),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    let path = write_csv(&cli.out, "table1", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------------------------- Figure 1

fn fig1(cli: &Cli) {
    banner("Figure 1: outdegree distributions (CO-road, Amazon, CiteSeer)");
    let header: Vec<String> = ["dataset", "outdegree", "pct_nodes"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for d in [Dataset::CoRoad, Dataset::Amazon, Dataset::CiteSeer] {
        let g = d.generate(cli.scale, cli.seed);
        let cap = 20usize;
        let hist = stats::degree_histogram(&g, cap);
        let n = g.node_count() as f64;
        println!(
            "\n{} (degrees above {cap} pooled in the last bucket):",
            d.name()
        );
        for (deg, &count) in hist.iter().enumerate() {
            let pct = 100.0 * count as f64 / n;
            if pct >= 0.05 {
                let label = if deg > cap {
                    format!(">{cap}")
                } else {
                    deg.to_string()
                };
                println!(
                    "  {label:>4} | {:<50} {pct:5.1}%",
                    "#".repeat((pct / 2.0) as usize)
                );
                rows.push(vec![d.name().to_string(), label, format!("{pct:.2}")]);
            }
        }
    }
    let path = write_csv(&cli.out, "fig1", &header, &rows).unwrap();
    println!("\n[csv] {}", path.display());
}

// ---------------------------------------------------------------- Figure 2

fn fig2(cli: &Cli) {
    banner("Figure 2: working-set size per iteration (unordered SSSP, U_T_BM)");
    let header: Vec<String> = ["dataset", "iteration", "ws_size"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for d in [Dataset::CoRoad, Dataset::Amazon, Dataset::Sns] {
        let w = load(d, cli.scale, cli.seed);
        let opts = RunOptions::builder()
            .static_variant(Variant::parse("U_T_BM").unwrap())
            .census(CensusMode::Every)
            .trace()
            .build();
        let r = gpu_run(&w, Algo::Sssp, &opts).expect("fig2 run");
        let peak = r.trace.iter().filter_map(|t| t.ws_size).max().unwrap_or(0);
        println!(
            "\n{}: {} iterations, peak working set {} nodes ({:.1}% of n)",
            d.name(),
            r.iterations,
            peak,
            100.0 * peak as f64 / w.graph.node_count() as f64
        );
        for t in &r.trace {
            if let Some(ws) = t.ws_size {
                rows.push(vec![
                    d.name().to_string(),
                    t.iteration.to_string(),
                    ws.to_string(),
                ]);
            }
        }
        // compact sparkline: sample ~60 iterations
        let step = (r.trace.len() / 60).max(1);
        let mut line = String::new();
        for t in r.trace.iter().step_by(step) {
            let ws = t.ws_size.unwrap_or(0) as f64;
            let lvl = (8.0 * ws / peak.max(1) as f64).round() as usize;
            line.push(['.', '1', '2', '3', '4', '5', '6', '7', '8'][lvl.min(8)]);
        }
        println!("  shape: {line}");
    }
    let path = write_csv(&cli.out, "fig2", &header, &rows).unwrap();
    println!("\n[csv] {}", path.display());
}

// ------------------------------------------------------------- Tables 2/3

fn speedups(cli: &Cli, algo: Algo) {
    let (title, csv) = match algo {
        Algo::Bfs => (
            "Table 2: BFS speedup (GPU over serial CPU baseline)",
            "table2",
        ),
        Algo::Sssp => (
            "Table 3: SSSP speedup (GPU over serial CPU Dijkstra)",
            "table3",
        ),
        Algo::Cc => (
            "Extension: CC speedup (GPU over serial CPU label propagation)",
            "table_cc",
        ),
        Algo::PageRank => (
            "Extension: PageRank speedup (GPU over serial CPU delta)",
            "table_pagerank8",
        ),
    };
    banner(title);
    let workloads = load_all(cli.scale, cli.seed);
    let table = speedup_table(&workloads, algo).expect("speedup table");
    let mut header: Vec<String> = vec!["network".to_string()];
    header.extend(Variant::ALL.iter().map(|v| v.name().to_string()));
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.dataset.to_string()];
            row.extend(r.speedups.iter().map(|s| format!("{s:.2}")));
            row
        })
        .collect();
    println!(
        "{}",
        format_table(&header, &rows, |r| Some(table.rows[r].best_variant() + 1))
    );
    println!("(* = best variant per dataset — the paper's grey cells)");
    let path = write_csv(&cli.out, csv, &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------------------------- Figure 11

fn fig11(cli: &Cli) {
    banner("Figure 11: decision space");
    let w = load(Dataset::Google, cli.scale, cli.seed);
    let tuning = AdaptiveConfig::default();
    println!(
        "{}",
        decision::render_decision_space(&tuning, w.graph.node_count() as u32)
    );
}

// ---------------------------------------------------------------- Figure 12

fn fig12(cli: &Cli) {
    banner("Figure 12: processing speed of the best implementation (M nodes/s)");
    let workloads = load_all(cli.scale, cli.seed);
    let header: Vec<String> = [
        "network",
        "bfs_Mnodes_s",
        "bfs_best",
        "sssp_Mnodes_s",
        "sssp_best",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in &workloads {
        let mut cells = vec![w.dataset.name().to_string()];
        for algo in [Algo::Bfs, Algo::Sssp] {
            let mut best: Option<(f64, Variant)> = None;
            for v in Variant::ALL {
                let r = agg_bench::gpu_static_run(w, algo, v).expect("fig12 run");
                if best.is_none_or(|(t, _)| r.total_ns < t) {
                    best = Some((r.total_ns, v));
                }
            }
            let (ns, v) = best.unwrap();
            let mnps = w.graph.node_count() as f64 / ns * 1e3; // nodes/ns * 1e3 = M/s... see below
                                                               // nodes / (ns * 1e-9) / 1e6 = nodes / ns * 1e3
            cells.push(format!("{mnps:.1}"));
            cells.push(v.name().to_string());
        }
        rows.push(cells);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    let path = write_csv(&cli.out, "fig12", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------------------------- Figure 13

fn fig13(cli: &Cli) {
    banner("Figure 13: adaptive SSSP execution time vs T3 (% of nodes)");
    let workloads = load_all(cli.scale, cli.seed);
    let fractions: Vec<f64> = (1..=13).map(|p| p as f64 / 100.0).collect();
    let mut header: Vec<String> = vec!["network".to_string()];
    header.extend(fractions.iter().map(|f| format!("{:.0}%", f * 100.0)));

    // The T3 region only exists where T3 > T2. At paper scale
    // (n >= 400k) the 1-13% sweep clears T2 = 2688 easily; at the
    // reduced default scale it mostly does not, so we print two sweeps:
    // the true C2070 decision space, and a device-proportional one with
    // T2 scaled by the same factor as the graphs, which exposes the
    // queue<->bitmap trade-off the paper's figure shows.
    for (label, t2_override, csv) in [
        ("C2070 thresholds (T2 = 2688)", None, "fig13"),
        (
            "device-proportional thresholds (T2 = 192)",
            Some(192u32),
            "fig13_scaled",
        ),
    ] {
        println!("\n-- {label} --");
        let mut rows = Vec::new();
        for w in &workloads {
            let mut row = vec![w.dataset.name().to_string()];
            let mut best = (f64::INFINITY, 0.0);
            for &f in &fractions {
                let mut tuning = AdaptiveConfig {
                    t3_fraction: f,
                    ..Default::default()
                };
                if let Some(t2) = t2_override {
                    tuning.t2_ws_size = t2;
                }
                let opts = RunOptions::builder().tuning(tuning).build();
                let r = gpu_run(w, Algo::Sssp, &opts).expect("fig13 run");
                let ms = r.total_ns / 1e6;
                if ms < best.0 {
                    best = (ms, f);
                }
                row.push(format!("{ms:.2}"));
            }
            println!(
                "{}: best T3 = {:.0}% ({:.2} ms)",
                w.dataset.name(),
                best.1 * 100.0,
                best.0
            );
            rows.push(row);
        }
        println!("\n{}", format_table(&header, &rows, |_| None));
        println!("(cells: execution time in ms)");
        let path = write_csv(&cli.out, csv, &header, &rows).unwrap();
        println!("[csv] {}", path.display());
    }
}

// ---------------------------------------------------------------- Adaptive

fn adaptive(cli: &Cli) {
    banner("Adaptive vs static (Section VII.C: 'outperforms the best static, up to 2x')");
    let workloads = load_all(cli.scale, cli.seed);
    let header: Vec<String> = [
        "network",
        "algo",
        "adaptive_ms",
        "best_static_ms",
        "best_static",
        "worst_static_ms",
        "adaptive/best",
        "switches",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in &workloads {
        for algo in [Algo::Bfs, Algo::Sssp] {
            let ad = gpu_run(w, algo, &RunOptions::default()).expect("adaptive run");
            let mut best: Option<(f64, Variant)> = None;
            let mut worst = 0.0f64;
            for v in Variant::ALL {
                let r = agg_bench::gpu_static_run(w, algo, v).expect("static run");
                if best.is_none_or(|(t, _)| r.total_ns < t) {
                    best = Some((r.total_ns, v));
                }
                worst = worst.max(r.total_ns);
            }
            let (best_ns, best_v) = best.unwrap();
            rows.push(vec![
                w.dataset.name().to_string(),
                format!("{algo:?}"),
                format!("{:.2}", ad.total_ns / 1e6),
                format!("{:.2}", best_ns / 1e6),
                best_v.name().to_string(),
                format!("{:.2}", worst / 1e6),
                format!("{:.2}", ad.total_ns / best_ns),
                ad.switches.to_string(),
            ]);
        }
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(adaptive/best < 1 means the adaptive runtime beat every static variant)");
    let path = write_csv(&cli.out, "adaptive", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------------------------- Sampling

fn sampling(cli: &Cli) {
    banner("Sampling-period sweep (Section VI.E inspector overhead)");
    let workloads = load_all(cli.scale, cli.seed);
    let periods = [1u32, 2, 4, 8, 16, 32];
    let mut header: Vec<String> = vec!["network".to_string()];
    header.extend(periods.iter().map(|p| format!("period={p}")));
    let mut rows = Vec::new();
    for w in &workloads {
        let mut row = vec![w.dataset.name().to_string()];
        for &p in &periods {
            let tuning = AdaptiveConfig {
                sampling_period: p,
                ..Default::default()
            };
            let opts = RunOptions::builder().tuning(tuning).build();
            let r = gpu_run(w, Algo::Sssp, &opts).expect("sampling run");
            row.push(format!("{:.2}", r.total_ns / 1e6));
        }
        rows.push(row);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(cells: adaptive SSSP time in ms)");
    let path = write_csv(&cli.out, "sampling", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------------------------- T2 crossover

fn t2_crossover(cli: &Cli) {
    banner("T2 crossover: per-iteration time, T_QU vs B_QU, by working-set size");
    let mut buckets: Vec<(u32, u32, f64, f64, u32)> = Vec::new(); // lo, hi, t_qu_sum, b_qu_sum, count
    for shift in 0..18u32 {
        buckets.push((1 << shift, 2 << shift, 0.0, 0.0, 0));
    }
    let workloads = load_all(cli.scale, cli.seed);
    for w in &workloads {
        for (i, name) in ["U_T_QU", "U_B_QU"].iter().enumerate() {
            let opts = RunOptions::builder()
                .static_variant(Variant::parse(name).unwrap())
                .trace()
                .build();
            let r = gpu_run(w, Algo::Sssp, &opts).expect("t2 run");
            for t in &r.trace {
                if let Some(ws) = t.ws_size {
                    if let Some(b) = buckets.iter_mut().find(|b| ws >= b.0 && ws < b.1) {
                        if i == 0 {
                            b.2 += t.iter_ns;
                        } else {
                            b.3 += t.iter_ns;
                        }
                        b.4 += 1;
                    }
                }
            }
        }
    }
    let header: Vec<String> = ["ws_size_range", "T_QU_us", "B_QU_us", "winner"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut per_bucket: Vec<(u32, bool)> = Vec::new(); // (lo, thread wins)
    for (lo, hi, t, b, cnt) in buckets.iter().filter(|b| b.4 > 0) {
        let samples = (*cnt as f64 / 2.0).max(1.0);
        let (t_us, b_us) = (t / samples / 1e3, b / samples / 1e3);
        let winner = if t_us < b_us { "T_QU" } else { "B_QU" };
        per_bucket.push((*lo, t_us < b_us));
        rows.push(vec![
            format!("{lo}..{hi}"),
            format!("{t_us:.1}"),
            format!("{b_us:.1}"),
            winner.to_string(),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    // Stable crossover: the smallest bucket boundary above which T_QU wins
    // every remaining bucket (small buckets are noisy, so a single early
    // T_QU win must not count).
    let crossover = per_bucket
        .iter()
        .enumerate()
        .find(|(i, _)| per_bucket[*i..].iter().all(|&(_, tw)| tw))
        .map(|(_, &(lo, _))| lo);
    match crossover {
        Some(c) => println!(
            "T_QU wins consistently from ws ~{c} up (paper: ~3000 on the C2070; T2 = 2688)"
        ),
        None => println!("B_QU won every observed bucket at this scale"),
    }
    let path = write_csv(&cli.out, "t2_crossover", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------------------------- X1

fn ablation_queue(cli: &Cli) {
    banner("Ablation X1: atomic vs scan-based queue generation");
    let n: u32 = 100_000;
    let kernels = GpuKernels::build();
    let header: Vec<String> = ["fill_pct", "atomic_us", "scan_us", "scan_speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for fill_pct in [0.1f64, 1.0, 5.0, 20.0, 50.0, 100.0] {
        // deterministic striped fill at the requested density
        let stride = (100.0 / fill_pct).round().max(1.0) as u32;
        let update: Vec<u32> = (0..n).map(|i| (i % stride == 0) as u32).collect();
        let mut times = Vec::new();
        for kernel in [&kernels.gen_queue, &kernels.gen_queue_scan] {
            let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
            let u = dev.alloc_from_slice("update", &update);
            let q = dev.alloc("queue", n as usize);
            let len = dev.alloc("len", 1);
            let r = dev
                .launch(
                    kernel,
                    Grid::linear(n as u64, 192),
                    &LaunchArgs::new().bufs([u, q, len]).scalars([n]),
                )
                .expect("queue gen");
            times.push(r.time_ns);
        }
        rows.push(vec![
            format!("{fill_pct:.1}"),
            format!("{:.1}", times[0] / 1e3),
            format!("{:.1}", times[1] / 1e3),
            format!("{:.2}x", times[0] / times[1]),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!(
        "(atomic allocation serializes on the shared counter; scan pays one atomic per block)"
    );
    let path = write_csv(&cli.out, "ablation_queue", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ------------------------------------------------------ CC (extension)

fn table_cc(cli: &Cli) {
    banner("Extension: connected components, unordered variants vs serial CPU");
    let mut header: Vec<String> = vec!["network".to_string()];
    header.extend(Variant::UNORDERED.iter().map(|v| v.name().to_string()));
    header.push("adaptive".to_string());
    let mut rows = Vec::new();
    for w in load_all(cli.scale, cli.seed) {
        let cpu_ns = cpu_baseline_ns(&w, Algo::Cc);
        let mut row = vec![w.dataset.name().to_string()];
        for v in Variant::UNORDERED {
            let r = agg_bench::gpu_static_run(&w, Algo::Cc, v).expect("cc run");
            row.push(format!("{:.2}", cpu_ns / r.total_ns));
        }
        let ad = gpu_run(&w, Algo::Cc, &RunOptions::default()).expect("adaptive cc");
        row.push(format!("{:.2}", cpu_ns / ad.total_ns));
        rows.push(row);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(speedup over serial CPU label propagation; CC starts with ALL nodes active,");
    println!(" so bitmap variants skip the sparse-frontier weakness BFS/SSSP expose)");
    let path = write_csv(&cli.out, "table_cc", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------- virtual warp (extension)

fn ablation_vwarp(cli: &Cli) {
    banner("Extension: virtual-warp mapping width sweep (BFS, queue working set)");
    let widths = [2u32, 4, 8, 16, 32];
    let mut header: Vec<String> = vec!["network".to_string(), "U_T_QU".into(), "U_B_QU".into()];
    header.extend(widths.iter().map(|w| format!("VW{w}")));
    let mut rows = Vec::new();
    for w in load_all(cli.scale, cli.seed) {
        let mut row = vec![w.dataset.name().to_string()];
        for name in ["U_T_QU", "U_B_QU"] {
            let r = agg_bench::gpu_static_run(&w, Algo::Bfs, Variant::parse(name).unwrap())
                .expect("static run");
            row.push(format!("{:.2}", r.total_ns / 1e6));
        }
        for &width in &widths {
            let opts = RunOptions::builder()
                .strategy(Strategy::VirtualWarp {
                    width,
                    workset: agg_kernels::WorkSet::Queue,
                })
                .build();
            let r = gpu_run(&w, Algo::Bfs, &opts).expect("vwarp run");
            row.push(format!("{:.2}", r.total_ns / 1e6));
        }
        rows.push(row);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(ms; VW<w> = sub-warps of w threads per working-set element — the middle ground");
    println!(" between thread mapping (w=1) and block mapping the paper notes as future work)");
    let path = write_csv(&cli.out, "ablation_vwarp", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// --------------------------------------------------- hybrid (extension)

fn hybrid(cli: &Cli) {
    banner("Extension: CPU/GPU hybrid execution (after Hong et al. [13])");
    let header: Vec<String> = [
        "network",
        "algo",
        "cpu_ms",
        "gpu_adaptive_ms",
        "hybrid_ms",
        "host_share",
        "hybrid/gpu",
        "switches",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in load_all(cli.scale, cli.seed) {
        for algo in [Algo::Bfs, Algo::Sssp] {
            let cpu_ns = cpu_baseline_ns(&w, algo);
            let gpu = gpu_run(&w, algo, &RunOptions::default()).expect("adaptive run");
            let opts = RunOptions::builder()
                .strategy(Strategy::Hybrid {
                    gpu_threshold: AdaptiveConfig::default().t2_ws_size,
                })
                .build();
            let hy = gpu_run(&w, algo, &opts).expect("hybrid run");
            rows.push(vec![
                w.dataset.name().to_string(),
                format!("{algo:?}"),
                format!("{:.2}", cpu_ns / 1e6),
                format!("{:.2}", gpu.total_ns / 1e6),
                format!("{:.2}", hy.total_ns / 1e6),
                format!("{:.0}%", 100.0 * hy.host_ns / hy.total_ns),
                format!("{:.2}", hy.total_ns / gpu.total_ns),
                hy.switches.to_string(),
            ]);
        }
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(hybrid/gpu < 1: running small-frontier iterations on the host wins)");
    let path = write_csv(&cli.out, "hybrid", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------------------------- X2

fn ablation_launch(cli: &Cli) {
    banner("Ablation X2: launch-overhead sensitivity (adaptive BFS on CO-road)");
    let w = load(Dataset::CoRoad, cli.scale, cli.seed);
    let cpu_ns = cpu_baseline_ns(&w, Algo::Bfs);
    let header: Vec<String> = ["launch_overhead_us", "gpu_ms", "cpu_ms", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for overhead_us in [0.0f64, 1.0, 3.5, 7.0, 14.0, 20.0] {
        let mut cfg = DeviceConfig::tesla_c2070();
        cfg.launch_overhead_us = overhead_us;
        let mut gg = GpuGraph::with_device(&w.graph, cfg).expect("device");
        let r = gg
            .run(Query::Bfs { src: w.src }, &RunOptions::default())
            .expect("bfs");
        rows.push(vec![
            format!("{overhead_us:.1}"),
            format!("{:.2}", r.total_ns / 1e6),
            format!("{:.2}", cpu_ns / 1e6),
            format!("{:.2}", cpu_ns / r.total_ns),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(high-diameter road graphs pay the launch overhead ~once per BFS level)");
    let path = write_csv(&cli.out, "ablation_launch", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// --------------------------------------------- relabeling (extension)

fn ablation_relabel(cli: &Cli) {
    banner("Extension: BFS-order relabeling vs memory coalescing (U_T_BM BFS)");
    let header: Vec<String> = [
        "network",
        "orig_ms",
        "relab_ms",
        "orig_tx/edge",
        "relab_tx/edge",
        "time_gain",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let variant = Variant::parse("U_T_BM").unwrap();
    for w in load_all(cli.scale, cli.seed) {
        let edges = w.graph.edge_count().max(1) as f64;
        let orig = agg_bench::gpu_static_run(&w, Algo::Bfs, variant).expect("orig run");

        let relabeling = agg_graph::relabel::bfs_order(&w.graph, w.src);
        let relabeled_graph = agg_graph::relabel::apply(&w.graph, &relabeling).expect("relabel");
        let rw = agg_bench::workloads::Workload {
            dataset: w.dataset,
            graph: relabeled_graph,
            src: relabeling.perm[w.src as usize],
        };
        let relab = agg_bench::gpu_static_run(&rw, Algo::Bfs, variant).expect("relabeled run");

        rows.push(vec![
            w.dataset.name().to_string(),
            format!("{:.2}", orig.total_ns / 1e6),
            format!("{:.2}", relab.total_ns / 1e6),
            format!(
                "{:.2}",
                orig.gpu_stats.totals.mem_transactions as f64 / edges
            ),
            format!(
                "{:.2}",
                relab.gpu_stats.totals.mem_transactions as f64 / edges
            ),
            format!("{:.2}x", orig.total_ns / relab.total_ns),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(renumbering nodes in BFS order packs each frontier into contiguous ids,");
    println!(" so value/update accesses coalesce into fewer 128-byte transactions)");
    let path = write_csv(&cli.out, "ablation_relabel", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// --------------------------------------------------- stats (extension)

fn stats_profile(cli: &Cli) {
    banner("Divergence / traffic / atomics profile (adaptive BFS per dataset)");
    let header: Vec<String> = [
        "network",
        "simt_eff",
        "tx/edge",
        "bytes/edge",
        "atomics",
        "atomic_conflicts",
        "divergent_branches",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in load_all(cli.scale, cli.seed) {
        let r = gpu_run(&w, Algo::Bfs, &RunOptions::default()).expect("stats run");
        let t = r.gpu_stats.totals;
        let edges = w.graph.edge_count().max(1) as f64;
        rows.push(vec![
            w.dataset.name().to_string(),
            format!("{:.2}", t.simt_efficiency(32)),
            format!("{:.2}", t.mem_transactions as f64 / edges),
            format!("{:.1}", t.mem_bytes as f64 / edges),
            t.atomics.to_string(),
            t.atomic_conflicts.to_string(),
            t.divergent_branches.to_string(),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(simt_eff = active lanes / issued lane slots: skewed-degree graphs diverge more)");
    let path = write_csv(&cli.out, "stats_profile", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ------------------------------------------------ PageRank (extension)

fn table_pagerank(cli: &Cli) {
    banner("Extension: PageRank-delta, unordered variants vs serial CPU");
    let mut header: Vec<String> = vec!["network".to_string()];
    header.extend(Variant::UNORDERED.iter().map(|v| v.name().to_string()));
    header.push("adaptive".to_string());
    header.push("iters".to_string());
    let mut rows = Vec::new();
    for w in load_all(cli.scale, cli.seed) {
        let cpu_ns = cpu_baseline_ns(&w, Algo::PageRank);
        let mut row = vec![w.dataset.name().to_string()];
        for v in Variant::UNORDERED {
            let r = agg_bench::gpu_static_run(&w, Algo::PageRank, v).expect("pagerank run");
            row.push(format!("{:.2}", cpu_ns / r.total_ns));
        }
        let ad = gpu_run(&w, Algo::PageRank, &RunOptions::default()).expect("adaptive pagerank");
        row.push(format!("{:.2}", cpu_ns / ad.total_ns));
        row.push(ad.iterations.to_string());
        rows.push(row);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(speedup over serial CPU delta-PageRank; f32 ranks, d = 0.85, eps = 1e-4)");
    let path = write_csv(&cli.out, "table_pagerank", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ------------------------------------------------------- kernel listing

fn dump_kernels(cli: &Cli) {
    banner("Kernel listing (pseudo-CUDA)");
    let kernels = GpuKernels::build();
    let mut all: Vec<&agg_gpu_sim::Kernel> = Vec::new();
    all.extend(kernels.bfs.iter());
    all.extend(kernels.sssp.iter());
    all.extend(kernels.cc.iter());
    all.extend(kernels.pagerank.iter());
    all.extend([
        &kernels.gen_bitmap,
        &kernels.gen_queue,
        &kernels.gen_queue_scan,
        &kernels.prep,
        &kernels.count_bitmap,
        &kernels.degree_census_bitmap,
        &kernels.degree_census_queue,
        &kernels.findmin_bitmap,
        &kernels.findmin_queue,
        &kernels.bfs_vw_bitmap,
        &kernels.bfs_vw_queue,
        &kernels.sssp_vw_bitmap,
        &kernels.sssp_vw_queue,
        &kernels.bfs_bottom_up,
    ]);
    let mut listing = String::new();
    for k in &all {
        listing.push_str(&k.to_pseudo_code());
        listing.push('\n');
    }
    std::fs::create_dir_all(&cli.out).unwrap();
    let path = cli.out.join("kernels.cu.txt");
    std::fs::write(&path, &listing).unwrap();
    println!("{} kernels written to {}", all.len(), path.display());
    // show one example inline
    println!(
        "\nexample — bfs_U_T_BM:\n{}",
        kernels
            .bfs_kernel(Variant::parse("U_T_BM").unwrap())
            .to_pseudo_code()
    );
}

// ---------------------------------------------- inspector (Section VI.E)

fn ablation_inspector(cli: &Cli) {
    banner("Inspector ablation: whole-graph vs working-set degree monitoring (adaptive SSSP)");
    let header: Vec<String> = ["network", "whole_graph_ms", "working_set_ms", "overhead"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for w in load_all(cli.scale, cli.seed) {
        let whole = gpu_run(&w, Algo::Sssp, &RunOptions::default()).expect("whole-graph run");
        let tuning = AdaptiveConfig {
            degree_mode: agg_core::DegreeMode::WorkingSet,
            ..Default::default()
        };
        let wsm = gpu_run(
            &w,
            Algo::Sssp,
            &RunOptions::builder().tuning(tuning).build(),
        )
        .expect("working-set run");
        rows.push(vec![
            w.dataset.name().to_string(),
            format!("{:.2}", whole.total_ns / 1e6),
            format!("{:.2}", wsm.total_ns / 1e6),
            format!("{:+.1}%", 100.0 * (wsm.total_ns / whole.total_ns - 1.0)),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(the paper chose the whole-graph statistic precisely to avoid this overhead;");
    println!(" gains only appear when per-phase degree shifts would change the T1 decision)");
    let path = write_csv(&cli.out, "ablation_inspector", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// ---------------------------------------------- paper-scale spot checks

fn paper_spot(cli: &Cli) {
    banner("Paper-size spot checks (adaptive runtime vs serial CPU, fully timed)");
    println!("(full paper-size graphs; BFS, unordered SSSP, and the table3 ordered SSSP)\n");
    let header: Vec<String> = [
        "network",
        "nodes",
        "edges",
        "algo",
        "cpu_ms",
        "gpu_ms",
        "speedup",
        "iters",
        "sim_wall_s",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // The ordered-SSSP leg pins the paper's best ordered configuration
    // (table 3): block-mapped, queue work set.
    let ordered = Variant::parse("O_B_QU").unwrap();
    let mut rows = Vec::new();
    for d in [
        Dataset::P2p,
        Dataset::Amazon,
        Dataset::Google,
        Dataset::CoRoad,
    ] {
        let w = load(d, Scale::Paper, cli.seed);
        let jobs: [(Algo, &str, RunOptions); 3] = [
            (Algo::Bfs, "Bfs", RunOptions::default()),
            (Algo::Sssp, "Sssp", RunOptions::default()),
            (Algo::Sssp, "Sssp-ordered", RunOptions::static_variant(ordered)),
        ];
        for (algo, label, opts) in jobs {
            let cpu_ns = cpu_baseline_ns(&w, algo);
            let wall = Instant::now();
            let r = gpu_run(&w, algo, &opts).expect("paper-spot run");
            let wall_s = wall.elapsed().as_secs_f64();
            rows.push(vec![
                w.dataset.name().to_string(),
                w.graph.node_count().to_string(),
                w.graph.edge_count().to_string(),
                label.to_string(),
                format!("{:.1}", cpu_ns / 1e6),
                format!("{:.1}", r.total_ns / 1e6),
                format!("{:.2}", cpu_ns / r.total_ns),
                r.iterations.to_string(),
                format!("{wall_s:.0}"),
            ]);
            // print incrementally: these rows are slow to produce
            println!(
                "{} {label}: cpu {:.1} ms, gpu {:.1} ms, speedup {:.2} ({} iters, {:.0}s sim wall)",
                w.dataset.name(),
                cpu_ns / 1e6,
                r.total_ns / 1e6,
                cpu_ns / r.total_ns,
                r.iterations,
                wall_s
            );
        }
    }
    println!("\n{}", format_table(&header, &rows, |_| None));
    let path = write_csv(&cli.out, "paper_spot", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}

// --------------------------------------- bottom-up BFS (extension)

fn ablation_bottomup(cli: &Cli) {
    banner("Extension: direction-optimizing BFS (Beamer-style bottom-up steps)");
    let header: Vec<String> = [
        "network",
        "topdown_ms",
        "diropt_ms",
        "gain",
        "td_atomics",
        "do_atomics",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in load_all(cli.scale, cli.seed) {
        let mut gg = GpuGraph::new(&w.graph).expect("upload");
        let top_down = gg
            .run(Query::Bfs { src: w.src }, &RunOptions::default())
            .expect("top-down run");
        gg.enable_bottom_up(&w.graph);
        let opts = RunOptions::builder()
            .strategy(Strategy::DirectionOptimized {
                bottom_up_fraction: 0.05,
            })
            .build();
        let dir_opt = gg
            .run(Query::Bfs { src: w.src }, &opts)
            .expect("dir-opt run");
        assert_eq!(top_down.values, dir_opt.values, "{}", w.dataset.name());
        rows.push(vec![
            w.dataset.name().to_string(),
            format!("{:.2}", top_down.total_ns / 1e6),
            format!("{:.2}", dir_opt.total_ns / 1e6),
            format!("{:.2}x", top_down.total_ns / dir_opt.total_ns),
            top_down.gpu_stats.totals.atomics.to_string(),
            dir_opt.gpu_stats.totals.atomics.to_string(),
        ]);
    }
    println!("{}", format_table(&header, &rows, |_| None));
    println!("(bottom-up steps fire when the frontier exceeds 5% of n: unvisited nodes scan");
    println!(" in-edges, claim a parent atomic-free, and early-exit — fewer edges touched)");
    let path = write_csv(&cli.out, "ablation_bottomup", &header, &rows).unwrap();
    println!("[csv] {}", path.display());
}
