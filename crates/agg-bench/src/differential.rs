//! Differential fuzzing harness: random graphs from every generator,
//! every execution configuration, compared bit-for-bit against the
//! instrumented CPU oracles.
//!
//! The GPU simulator executes kernels for real, so any divergence from
//! the serial oracles is a genuine bug in a kernel, the adaptive
//! runtime, or the oracle itself — there is no floating-point
//! "close enough" for BFS levels, SSSP distances, or CC labels. The
//! harness therefore:
//!
//! 1. generates a corpus spanning all six synthetic generators, with the
//!    degenerate features real inputs have (duplicate edges, self-loops,
//!    isolated nodes, disconnected components);
//! 2. runs every static variant, the adaptive runtime, direction-
//!    optimized BFS, shuffled [`Session`] batches, and multi-device
//!    sharded execution ([`ShardedGraph`], 2 and 4 shards) on each
//!    graph — optionally under the simulator's data-race detector;
//! 3. compares results bit-for-bit (PageRank ranks with an epsilon — the
//!    GPU accumulates f32 in a different order than the serial oracle);
//! 4. minimizes any divergence with a delta-debugging loop before
//!    reporting it, so the regression test a bug earns is small.
//!
//! The `repro differential` subcommand and the workspace-level
//! `tests/differential.rs` suite both drive [`fuzz`].

use agg_core::{CoreError, GpuGraph, Query, RunOptions, Session, ShardedGraph, Strategy};
use agg_cpu::CpuCostModel;
use agg_gpu_sim::{DeviceConfig, ExecEngine, Interconnect, Json, SimFidelity};
use agg_graph::generators::{
    erdos_renyi, powerlaw, regular_mix, rmat, road_grid, watts_strogatz, PowerLawConfig,
    RegularMixConfig, RmatConfig, RoadGridConfig, WattsStrogatzConfig,
};
use agg_graph::{CsrGraph, GraphBuilder, NodeId};
use agg_kernels::Variant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator names, in corpus rotation order (`case % 6` picks one).
pub const GENERATORS: [&str; 6] = ["erdos", "rmat", "powerlaw", "grid", "smallworld", "regular"];

/// Fuzzing parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of corpus graphs.
    pub cases: usize,
    /// Corpus seed: the whole run is deterministic in (`cases`, `seed`).
    pub seed: u64,
    /// Run every launch fully timed under the simulator's data-race
    /// detector and report its counters. Off by default: differential
    /// runs compare values, so they use the fast-functional fidelity.
    pub race_detect: bool,
    /// Explicit fidelity override. When set, it wins over `race_detect`;
    /// `repro simbench` uses this to run a timed-without-races leg (the
    /// configuration paper-scale timed tables pay).
    pub fidelity: Option<SimFidelity>,
    /// Maximum edge weight for the SSSP corpus.
    pub max_weight: u32,
    /// Run a shuffled Session batch every this many cases (0 = never).
    pub batch_period: usize,
    /// Execution engine for every simulated device in the sweep. The
    /// bytecode default is what production uses; `repro simbench` also
    /// runs the whole suite under [`ExecEngine::Interpreter`] to measure
    /// the engines against each other.
    pub engine: ExecEngine,
    /// Shard counts for the multi-device sweep: every case also runs
    /// BFS/SSSP/CC through a [`ShardedGraph`] at each of these counts
    /// (empty = skip sharded execution).
    pub shard_counts: Vec<usize>,
}

impl FuzzConfig {
    /// Defaults: fast-functional fidelity (race detection off), weights
    /// in `1..=64`, a shuffled batch every 8th case, sharded runs at 2
    /// and 4 devices.
    pub fn new(cases: usize, seed: u64) -> FuzzConfig {
        FuzzConfig {
            cases,
            seed,
            race_detect: false,
            fidelity: None,
            max_weight: 64,
            batch_period: 8,
            engine: ExecEngine::Bytecode,
            shard_counts: vec![2, 4],
        }
    }

    /// Fidelity every simulated device in the sweep runs at: the
    /// explicit override if set, otherwise timed+races when
    /// `race_detect` is on and fast-functional when it is off.
    pub fn effective_fidelity(&self) -> SimFidelity {
        self.fidelity.unwrap_or(if self.race_detect {
            SimFidelity::TimedWithRaces
        } else {
            SimFidelity::Functional
        })
    }
}

/// One corpus entry.
pub struct CaseGraph {
    /// The (weighted) graph.
    pub graph: CsrGraph,
    /// Generator that produced it (see [`GENERATORS`]).
    pub generator: &'static str,
    /// Query source node.
    pub src: NodeId,
}

/// Deterministically generates corpus case `case` for `seed`.
///
/// Sizes stay small (≤ ~60 nodes) so the full execution matrix stays
/// fast; the point is structural coverage, not scale. Post-generation
/// "decoration" injects self-loops, duplicate edges, and isolated tail
/// nodes — the degenerate features file parsers let through.
pub fn case_graph(seed: u64, case: usize) -> CaseGraph {
    case_graph_weighted(seed, case, 64)
}

/// [`case_graph`] with an explicit weight ceiling (used by [`fuzz`] to
/// honor [`FuzzConfig::max_weight`]). The structural rng draws are
/// identical regardless of the ceiling.
pub fn case_graph_weighted(seed: u64, case: usize, max_weight: u32) -> CaseGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let pick = case % GENERATORS.len();
    let g = match pick {
        0 => {
            // Sparse directed G(n, m): isolated nodes and disconnected
            // components when m is small; duplicates when dedup is off.
            let n = rng.gen_range(4usize..=48);
            let m = rng.gen_range(0usize..=n * 4);
            let dedup = rng.gen_bool(0.5);
            erdos_renyi(&mut rng, n, m, dedup).expect("corpus erdos")
        }
        1 => {
            // R-MAT: skewed, self-loops and duplicates by construction.
            let scale = rng.gen_range(3u32..=5);
            let cfg = RmatConfig {
                scale,
                edges: rng.gen_range(0usize..=(1usize << scale) * 4),
                a: 0.45,
                b: 0.22,
                c: 0.22,
                dedup: rng.gen_bool(0.3),
            };
            rmat(&mut rng, &cfg).expect("corpus rmat")
        }
        2 => {
            // Power-law hubs: the contended-atomics shape.
            let nodes = rng.gen_range(8usize..=48);
            let cfg = PowerLawConfig {
                nodes,
                alpha: rng.gen_range(1.8..2.8),
                min_degree: 1,
                max_degree: (nodes - 1).max(2),
                target_avg_degree: rng.gen_range(2.0..6.0),
                dest_zipf: rng.gen_range(0.8..1.4),
            };
            powerlaw(&mut rng, &cfg).expect("corpus powerlaw")
        }
        3 => {
            // Road grid: high diameter; low keep_prob disconnects it.
            let cfg = RoadGridConfig {
                width: rng.gen_range(2usize..=7),
                height: rng.gen_range(2usize..=7),
                keep_prob: rng.gen_range(0.4..1.0),
                hubs: rng.gen_range(0usize..=2),
                highways_per_hub: rng.gen_range(0usize..=2),
            };
            road_grid(&mut rng, &cfg).expect("corpus grid")
        }
        4 => {
            // Small world: ring lattice + rewiring.
            let cfg = WattsStrogatzConfig {
                nodes: rng.gen_range(6usize..=48),
                k: rng.gen_range(1usize..=3),
                rewire_prob: rng.gen_range(0.0..0.5),
            };
            watts_strogatz(&mut rng, &cfg).expect("corpus smallworld")
        }
        _ => {
            // Regular mix: near-uniform outdegrees.
            let cfg = RegularMixConfig {
                nodes: rng.gen_range(6usize..=48),
                fixed_fraction: rng.gen_range(0.0..1.0),
                fixed_degree: rng.gen_range(1usize..=6),
                uniform_max: rng.gen_range(1usize..=6),
            };
            regular_mix(&mut rng, &cfg).expect("corpus regular")
        }
    };
    let g = decorate(&mut rng, &g);
    let max_w = rng.gen_range(1u32..=max_weight.max(1));
    let g = g.with_random_weights(&mut rng, max_w);
    let n = g.node_count() as u32;
    let src = rng.gen_range(0..n.max(1));
    CaseGraph {
        graph: g,
        generator: GENERATORS[pick],
        src,
    }
}

/// Injects degenerate structure: self-loops, duplicate edges, isolated
/// tail nodes (which also guarantee a disconnected graph).
fn decorate(rng: &mut StdRng, g: &CsrGraph) -> CsrGraph {
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|(s, d, _)| (s, d)).collect();
    let mut n = g.node_count();
    if n > 0 && rng.gen_bool(0.3) {
        for _ in 0..rng.gen_range(1usize..=3) {
            let v = rng.gen_range(0..n as u32);
            edges.push((v, v));
        }
    }
    if !edges.is_empty() && rng.gen_bool(0.3) {
        for _ in 0..rng.gen_range(1usize..=4) {
            let e = edges[rng.gen_range(0..edges.len())];
            edges.push(e);
        }
    }
    if rng.gen_bool(0.4) {
        n += rng.gen_range(1usize..=4);
    }
    GraphBuilder::from_edges(n, &edges).expect("decorated corpus graph")
}

/// Which algorithm a differential run checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alg {
    Bfs,
    Sssp,
    Cc,
}

impl Alg {
    fn query(self, src: NodeId) -> Query {
        match self {
            Alg::Bfs => Query::Bfs { src },
            Alg::Sssp => Query::Sssp { src },
            Alg::Cc => Query::Cc,
        }
    }

    fn oracle(self, g: &CsrGraph, src: NodeId) -> Vec<u32> {
        let model = CpuCostModel::default();
        match self {
            Alg::Bfs => agg_cpu::bfs(g, src, &model).result,
            Alg::Sssp => agg_cpu::dijkstra(g, src, &model).result,
            Alg::Cc => agg_cpu::connected_components(g, &model).result,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Alg::Bfs => "bfs",
            Alg::Sssp => "sssp",
            Alg::Cc => "cc",
        }
    }
}

/// One execution configuration of the matrix.
#[derive(Debug, Clone, Copy)]
enum Exec {
    Adaptive,
    Static(Variant),
    BottomUp,
}

impl Exec {
    fn options(self) -> RunOptions {
        match self {
            Exec::Adaptive => RunOptions::default(),
            Exec::Static(v) => RunOptions::static_variant(v),
            Exec::BottomUp => RunOptions::builder()
                .strategy(Strategy::DirectionOptimized {
                    bottom_up_fraction: 0.25,
                })
                .build(),
        }
    }

    fn name(self) -> String {
        match self {
            Exec::Adaptive => "adaptive".into(),
            Exec::Static(v) => v.name().to_string(),
            Exec::BottomUp => "bottom-up".into(),
        }
    }
}

/// A minimized reproducer for a divergence.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// Node count of the minimized graph.
    pub nodes: usize,
    /// Query source in the minimized graph.
    pub src: NodeId,
    /// Weighted edge list of the minimized graph.
    pub edges: Vec<(NodeId, NodeId, u32)>,
}

/// One confirmed difference between a GPU run and its CPU oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Corpus case index.
    pub case: usize,
    /// Generator that produced the graph.
    pub generator: String,
    /// Algorithm that diverged.
    pub algo: String,
    /// Execution configuration (`variant name`, `adaptive`, `bottom-up`,
    /// `batch[i]`, or `sharded[k]`).
    pub exec: String,
    /// Node count of the original graph.
    pub nodes: usize,
    /// Edge count of the original graph.
    pub edges: usize,
    /// Query source.
    pub src: NodeId,
    /// Engine error, when the run failed outright instead of
    /// mis-answering.
    pub error: Option<String>,
    /// Indices where expected and actual differ (capped at 16).
    pub mismatched_at: Vec<usize>,
    /// Delta-debugged reproducer (absent for batch/error divergences).
    pub minimized: Option<Minimized>,
}

impl Divergence {
    /// This divergence as a JSON object (the CI artifact element).
    pub fn to_json(&self) -> Json {
        let min = match &self.minimized {
            None => Json::Null,
            Some(m) => Json::obj([
                ("nodes", m.nodes.into()),
                ("src", m.src.into()),
                (
                    "edges",
                    Json::arr(m.edges.iter().map(|&(s, d, w)| {
                        Json::arr([Json::from(s), Json::from(d), Json::from(w)])
                    })),
                ),
            ]),
        };
        Json::obj([
            ("case", self.case.into()),
            ("generator", self.generator.as_str().into()),
            ("algo", self.algo.as_str().into()),
            ("exec", self.exec.as_str().into()),
            ("nodes", self.nodes.into()),
            ("edges", self.edges.into()),
            ("src", self.src.into()),
            (
                "error",
                match &self.error {
                    Some(e) => e.as_str().into(),
                    None => Json::Null,
                },
            ),
            (
                "mismatched_at",
                Json::arr(self.mismatched_at.iter().map(|&i| Json::from(i))),
            ),
            ("minimized", min),
        ])
    }
}

/// The outcome of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Corpus graphs generated.
    pub cases: usize,
    /// Individual GPU runs compared against an oracle.
    pub runs: u64,
    /// Shuffled session batches executed.
    pub batches: u64,
    /// Multi-device sharded runs compared against an oracle (also
    /// counted in `runs`).
    pub sharded_runs: u64,
    /// Confirmed divergences (empty on a healthy tree).
    pub divergences: Vec<Divergence>,
    /// Launches the race detector analyzed (0 when detection was off).
    pub race_launches_checked: u64,
    /// Benign racing words the detector saw.
    pub race_benign_words: u64,
    /// Harmful racing words the detector saw (expected 0).
    pub race_harmful_words: u64,
}

impl FuzzReport {
    /// True when no divergence and no harmful race was found.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.race_harmful_words == 0
    }

    /// This report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cases", self.cases.into()),
            ("runs", self.runs.into()),
            ("batches", self.batches.into()),
            ("sharded_runs", self.sharded_runs.into()),
            ("clean", Json::Bool(self.is_clean())),
            ("race_launches_checked", self.race_launches_checked.into()),
            ("race_benign_words", self.race_benign_words.into()),
            ("race_harmful_words", self.race_harmful_words.into()),
            (
                "divergences",
                Json::arr(self.divergences.iter().map(Divergence::to_json)),
            ),
        ])
    }
}

/// Differential runs compare values against the CPU reference, so by
/// default they use the fast-functional fidelity (no timing model, no
/// race bookkeeping). `--race-detect` opts back into the fully timed
/// engine with per-launch race analysis.
fn device_config(fidelity: SimFidelity, engine: ExecEngine) -> DeviceConfig {
    DeviceConfig::tesla_c2070()
        .with_engine(engine)
        .with_fidelity(fidelity)
}

/// One GPU run of (`alg`, `exec`) on a fresh device; returns the value
/// array.
fn gpu_values(
    g: &CsrGraph,
    src: NodeId,
    alg: Alg,
    exec: Exec,
    fidelity: SimFidelity,
    engine: ExecEngine,
    race: Option<&mut FuzzReport>,
) -> Result<Vec<u32>, CoreError> {
    let mut gg = GpuGraph::with_device(g, device_config(fidelity, engine))?;
    if matches!(exec, Exec::BottomUp) {
        gg.enable_bottom_up(g);
    }
    let r = gg.run(alg.query(src), &exec.options())?;
    if let Some(report) = race {
        let s = gg.device().race_summary();
        report.race_launches_checked += s.launches_checked;
        report.race_benign_words += s.benign_words;
        report.race_harmful_words += s.harmful_words;
    }
    Ok(r.values)
}

/// One multi-device run of `alg` split across `shards` simulated
/// devices; returns the stitched global value array. Besides the value
/// comparison the caller makes, this checks the run's own invariants:
/// the time-accounting identity must hold exactly on every fuzz case.
#[allow(clippy::too_many_arguments)]
fn sharded_values(
    g: &CsrGraph,
    src: NodeId,
    alg: Alg,
    shards: usize,
    strategy: agg_graph::PartitionStrategy,
    fidelity: SimFidelity,
    engine: ExecEngine,
    race: Option<&mut FuzzReport>,
) -> Result<Vec<u32>, CoreError> {
    let mut sg = ShardedGraph::with_config(
        g,
        shards,
        strategy,
        device_config(fidelity, engine),
        Interconnect::pcie(),
    )?;
    let r = sg.run(alg.query(src), &RunOptions::default())?;
    if r.accounting_gap() != 0.0 {
        return Err(CoreError::InvalidQuery {
            detail: format!(
                "time-accounting identity violated: gap {} ns (total {}, setup {}, \
                 compute {}, exchange {}, teardown {})",
                r.accounting_gap(),
                r.total_ns,
                r.setup_ns,
                r.compute_ns,
                r.exchange_ns,
                r.teardown_ns
            ),
        });
    }
    if let Some(report) = race {
        let s = sg.race_summary();
        report.race_launches_checked += s.launches_checked;
        report.race_benign_words += s.benign_words;
        report.race_harmful_words += s.harmful_words;
    }
    Ok(r.values)
}

/// Positions where two value arrays differ (capped for reporting).
pub(crate) fn mismatches(expected: &[u32], actual: &[u32]) -> Vec<usize> {
    if expected.len() != actual.len() {
        return vec![usize::MAX];
    }
    expected
        .iter()
        .zip(actual)
        .enumerate()
        .filter(|(_, (e, a))| e != a)
        .map(|(i, _)| i)
        .take(16)
        .collect()
}

/// Delta-debugs a failing `(graph, src)` against `diverges`, which must
/// return `true` while the bug still reproduces. Shrinks the edge list
/// with a halving pass, then truncates unreferenced tail nodes.
pub fn minimize(
    graph: &CsrGraph,
    src: NodeId,
    diverges: &mut dyn FnMut(&CsrGraph, NodeId) -> bool,
) -> Minimized {
    let weighted = graph.is_weighted();
    let mut edges: Vec<(NodeId, NodeId, u32)> = graph.edges().collect();
    let mut nodes = graph.node_count();
    let rebuild = |edges: &[(NodeId, NodeId, u32)], nodes: usize| -> CsrGraph {
        if weighted {
            GraphBuilder::from_weighted_edges(nodes, edges).expect("minimizer rebuild")
        } else {
            let plain: Vec<(NodeId, NodeId)> = edges.iter().map(|&(s, d, _)| (s, d)).collect();
            GraphBuilder::from_edges(nodes, &plain).expect("minimizer rebuild")
        }
    };
    // Edge shrink: try dropping chunks, halving the chunk size.
    let mut chunk = edges.len().div_ceil(2).max(1);
    while chunk >= 1 && !edges.is_empty() {
        let mut i = 0;
        while i < edges.len() {
            let hi = (i + chunk).min(edges.len());
            let mut cand = edges.clone();
            cand.drain(i..hi);
            if diverges(&rebuild(&cand, nodes), src) {
                edges = cand;
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Node truncation: keep the source and every referenced node.
    let needed = edges
        .iter()
        .flat_map(|&(s, d, _)| [s, d])
        .chain([src])
        .max()
        .map_or(1, |m| m as usize + 1);
    if needed < nodes && diverges(&rebuild(&edges, needed), src) {
        nodes = needed;
    }
    Minimized { nodes, src, edges }
}

/// Runs the full differential matrix over the corpus. Deterministic in
/// `cfg`; returns every confirmed (and minimized) divergence rather than
/// panicking, so callers can write artifacts before failing.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        cases: cfg.cases,
        ..FuzzReport::default()
    };
    let mut batch_rng = StdRng::seed_from_u64(cfg.seed ^ 0xBA7C4);
    for case in 0..cfg.cases {
        let CaseGraph {
            graph,
            generator,
            src,
        } = case_graph_weighted(cfg.seed, case, cfg.max_weight);
        // Static/adaptive/bottom-up matrix per algorithm. CC has no
        // ordered formulation, so it runs the unordered statics only.
        let mut jobs: Vec<(Alg, Exec)> = Vec::new();
        for alg in [Alg::Bfs, Alg::Sssp] {
            jobs.push((alg, Exec::Adaptive));
            for v in Variant::ALL {
                jobs.push((alg, Exec::Static(v)));
            }
        }
        jobs.push((Alg::Bfs, Exec::BottomUp));
        jobs.push((Alg::Cc, Exec::Adaptive));
        for v in Variant::UNORDERED {
            jobs.push((Alg::Cc, Exec::Static(v)));
        }
        for (alg, exec) in jobs {
            let expected = alg.oracle(&graph, src);
            report.runs += 1;
            match gpu_values(&graph, src, alg, exec, cfg.effective_fidelity(), cfg.engine, Some(&mut report)) {
                Ok(actual) if actual == expected => {}
                Ok(actual) => {
                    let minimized = minimize(&graph, src, &mut |g, s| {
                        matches!(
                            gpu_values(g, s, alg, exec, SimFidelity::Functional, cfg.engine, None),
                            Ok(v) if v != alg.oracle(g, s)
                        )
                    });
                    report.divergences.push(Divergence {
                        case,
                        generator: generator.into(),
                        algo: alg.name().into(),
                        exec: exec.name(),
                        nodes: graph.node_count(),
                        edges: graph.edge_count(),
                        src,
                        error: None,
                        mismatched_at: mismatches(&expected, &actual),
                        minimized: Some(minimized),
                    });
                }
                Err(e) => report.divergences.push(Divergence {
                    case,
                    generator: generator.into(),
                    algo: alg.name().into(),
                    exec: exec.name(),
                    nodes: graph.node_count(),
                    edges: graph.edge_count(),
                    src,
                    error: Some(e.to_string()),
                    mismatched_at: Vec::new(),
                    minimized: None,
                }),
            }
        }
        // Multi-device sweep: the same queries sharded across simulated
        // devices with frontier exchange must still match the serial
        // oracle bit-for-bit — partitioning is not allowed to perturb
        // results. Cases alternate between the blind contiguous split
        // and the relabeling clustered partitioner so both see the full
        // adversarial corpus.
        for &k in &cfg.shard_counts {
            for alg in [Alg::Bfs, Alg::Sssp, Alg::Cc] {
                let strategy = if (case + k) % 2 == 0 {
                    agg_graph::PartitionStrategy::Contiguous1D
                } else {
                    agg_graph::PartitionStrategy::ClusteredContiguous
                };
                let expected = alg.oracle(&graph, src);
                report.runs += 1;
                report.sharded_runs += 1;
                match sharded_values(
                    &graph,
                    src,
                    alg,
                    k,
                    strategy,
                    cfg.effective_fidelity(),
                    cfg.engine,
                    Some(&mut report),
                ) {
                    Ok(actual) if actual == expected => {}
                    Ok(actual) => {
                        let minimized = minimize(&graph, src, &mut |g, s| {
                            matches!(
                                sharded_values(g, s, alg, k, strategy, SimFidelity::Functional, cfg.engine, None),
                                Ok(v) if v != alg.oracle(g, s)
                            )
                        });
                        report.divergences.push(Divergence {
                            case,
                            generator: generator.into(),
                            algo: alg.name().into(),
                            exec: format!("sharded[{k},{}]", strategy.name()),
                            nodes: graph.node_count(),
                            edges: graph.edge_count(),
                            src,
                            error: None,
                            mismatched_at: mismatches(&expected, &actual),
                            minimized: Some(minimized),
                        });
                    }
                    Err(e) => report.divergences.push(Divergence {
                        case,
                        generator: generator.into(),
                        algo: alg.name().into(),
                        exec: format!("sharded[{k},{}]", strategy.name()),
                        nodes: graph.node_count(),
                        edges: graph.edge_count(),
                        src,
                        error: Some(e.to_string()),
                        mismatched_at: Vec::new(),
                        minimized: None,
                    }),
                }
            }
        }
        // Shuffled Session batch: same queries, scheduler-chosen order,
        // pooled state reuse — results must not depend on any of it.
        if cfg.batch_period > 0 && case % cfg.batch_period == cfg.batch_period - 1 {
            run_shuffled_batch(cfg, case, generator, &graph, &mut batch_rng, &mut report);
        }
    }
    report
}

/// Builds a shuffled query batch for `graph`, runs it through a
/// [`Session`], and checks every per-query result against its oracle.
fn run_shuffled_batch(
    cfg: &FuzzConfig,
    case: usize,
    generator: &'static str,
    graph: &CsrGraph,
    rng: &mut StdRng,
    report: &mut FuzzReport,
) {
    let n = graph.node_count() as u32;
    if n == 0 {
        return;
    }
    let mut queries: Vec<Query> = Vec::new();
    for _ in 0..rng.gen_range(2usize..=4) {
        queries.push(Query::Bfs {
            src: rng.gen_range(0..n),
        });
        queries.push(Query::Sssp {
            src: rng.gen_range(0..n),
        });
    }
    queries.push(Query::Cc);
    // Fisher–Yates with the harness rng (the shim has no shuffle).
    for i in (1..queries.len()).rev() {
        queries.swap(i, rng.gen_range(0..=i));
    }
    let outcome = Session::with_device(graph, device_config(cfg.effective_fidelity(), cfg.engine)).and_then(|mut s| {
        let b = s.run_batch(&queries, &RunOptions::default())?;
        let races = s.device().race_summary().clone();
        Ok((b, races))
    });
    report.batches += 1;
    match outcome {
        Ok((batch, races)) => {
            report.race_launches_checked += races.launches_checked;
            report.race_benign_words += races.benign_words;
            report.race_harmful_words += races.harmful_words;
            for (i, q) in batch.queries.iter().enumerate() {
                let (alg, src) = match q.query {
                    Query::Bfs { src } => (Alg::Bfs, src),
                    Query::Sssp { src } => (Alg::Sssp, src),
                    Query::Cc => (Alg::Cc, 0),
                    Query::PageRank { .. } => continue,
                };
                let expected = alg.oracle(graph, src);
                report.runs += 1;
                if q.report.values != expected {
                    report.divergences.push(Divergence {
                        case,
                        generator: generator.into(),
                        algo: alg.name().into(),
                        exec: format!("batch[{i}]"),
                        nodes: graph.node_count(),
                        edges: graph.edge_count(),
                        src,
                        error: None,
                        mismatched_at: mismatches(&expected, &q.report.values),
                        minimized: None,
                    });
                }
            }
        }
        Err(e) => report.divergences.push(Divergence {
            case,
            generator: generator.into(),
            algo: "batch".into(),
            exec: "batch".into(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            src: 0,
            error: Some(e.to_string()),
            mismatched_at: Vec::new(),
            minimized: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_covers_all_generators() {
        let mut seen = [false; 6];
        for case in 0..12 {
            let a = case_graph(7, case);
            let b = case_graph(7, case);
            assert_eq!(
                a.graph.edges().collect::<Vec<_>>(),
                b.graph.edges().collect::<Vec<_>>(),
                "case {case} not deterministic"
            );
            assert_eq!(a.src, b.src);
            let gi = GENERATORS.iter().position(|&g| g == a.generator).unwrap();
            seen[gi] = true;
            assert!(a.graph.is_weighted());
            assert!((a.src as usize) < a.graph.node_count());
        }
        assert!(seen.iter().all(|&s| s), "some generator never used");
    }

    #[test]
    fn corpus_exhibits_degenerate_features() {
        let (mut self_loops, mut duplicates, mut isolated) = (false, false, false);
        for case in 0..48 {
            let g = case_graph(3, case).graph;
            let mut edges: Vec<(u32, u32)> = g.edges().map(|(s, d, _)| (s, d)).collect();
            self_loops |= edges.iter().any(|&(s, d)| s == d);
            let before = edges.len();
            edges.sort_unstable();
            edges.dedup();
            duplicates |= edges.len() < before;
            isolated |= (0..g.node_count() as u32)
                .any(|v| g.neighbors(v).next().is_none() && edges.iter().all(|&(_, d)| d != v));
        }
        assert!(self_loops, "corpus never produced a self-loop");
        assert!(duplicates, "corpus never produced duplicate edges");
        assert!(isolated, "corpus never produced an isolated node");
    }

    #[test]
    fn minimizer_shrinks_to_the_culprit_edge() {
        // Synthetic bug: "divergence" iff the graph contains edge 2->3.
        let g = GraphBuilder::from_weighted_edges(
            8,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 6, 1),
                (6, 7, 1),
            ],
        )
        .unwrap();
        let mut checks = 0;
        let m = minimize(&g, 0, &mut |g, _| {
            checks += 1;
            g.edges().any(|(s, d, _)| (s, d) == (2, 3))
        });
        assert_eq!(m.edges, vec![(2, 3, 1)]);
        assert_eq!(m.nodes, 4, "tail nodes past the culprit kept");
        assert!(checks > 0);
    }

    /// The adaptive runtime on a fuzz-corpus sample under both execution
    /// engines at full timed fidelity: the value arrays AND the modeled
    /// device clock must match exactly for all four algorithms. This is
    /// the end-to-end leg of the bytecode equivalence suite — it covers
    /// the kernels (PageRank, CC, adaptive variant switching) the
    /// kernel-level matrix in `agg-kernels` does not reach.
    #[test]
    fn adaptive_runs_are_engine_equivalent_on_corpus_sample() {
        use agg_gpu_sim::ExecEngine;
        for case in 0..4 {
            let cg = case_graph(0xE9E, case);
            for query in [
                Query::Bfs { src: cg.src },
                Query::Sssp { src: cg.src },
                Query::Cc,
                Query::pagerank(),
            ] {
                let mut outcomes = Vec::new();
                for engine in [ExecEngine::Interpreter, ExecEngine::Bytecode] {
                    let cfg = DeviceConfig::tesla_c2070().with_engine(engine);
                    let mut gg = GpuGraph::with_device(&cg.graph, cfg).unwrap();
                    let r = gg.run(query, &RunOptions::default()).unwrap();
                    outcomes.push((r.values, gg.device().elapsed_ns()));
                }
                let (bc, interp) = (outcomes.pop().unwrap(), outcomes.pop().unwrap());
                assert_eq!(
                    interp.0, bc.0,
                    "case {case} {query:?}: values diverge between engines"
                );
                assert_eq!(
                    interp.1, bc.1,
                    "case {case} {query:?}: modeled time diverges between engines"
                );
            }
        }
    }

    #[test]
    fn tiny_fuzz_run_is_clean_and_counts_work() {
        let mut cfg = FuzzConfig::new(6, 0xD1FF);
        cfg.batch_period = 3;
        cfg.race_detect = true; // opt into the timed+races fidelity
        let r = fuzz(&cfg);
        assert!(r.is_clean(), "divergences: {:?}", r.divergences);
        assert_eq!(r.cases, 6);
        assert_eq!(r.batches, 2);
        // 3 algorithms x 2 shard counts on every case.
        assert_eq!(r.sharded_runs, 6 * 6);
        // 24 matrix runs per case (9 BFS + 9 SSSP + bottom-up + 5 CC)
        // plus the sharded sweep and the shuffled-batch queries.
        assert!(r.runs >= 6 * 24 + 6 * 6, "runs {}", r.runs);
        assert!(r.race_launches_checked > 0);
        assert_eq!(r.race_harmful_words, 0);
        let s = r.to_json().render();
        assert!(s.contains("\"clean\":true"), "{s}");
        assert!(s.contains("\"divergences\":[]"), "{s}");
    }
}
