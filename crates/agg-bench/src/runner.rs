//! Run helpers: GPU runs per variant, CPU baselines, and the speedup
//! tables of the paper's evaluation.

use crate::workloads::Workload;
use agg_core::{Algo, CoreError, GpuGraph, Query, RunOptions, RunReport};
use agg_cpu::{
    bfs as cpu_bfs, connected_components as cpu_cc, dijkstra as cpu_dijkstra,
    pagerank_delta as cpu_pagerank, CpuCostModel,
};
use agg_kernels::Variant;

/// The query a workload poses for `algo` (its source for traversals,
/// default PageRank parameters otherwise).
pub fn query_for(w: &Workload, algo: Algo) -> Query {
    match algo {
        Algo::Bfs => Query::Bfs { src: w.src },
        Algo::Sssp => Query::Sssp { src: w.src },
        Algo::Cc => Query::Cc,
        Algo::PageRank => Query::pagerank(),
    }
}

/// Runs `algo` on `w` with a fixed static variant; returns the full
/// report (modeled GPU time in `report.total_ns`).
pub fn gpu_static_run(w: &Workload, algo: Algo, v: Variant) -> Result<RunReport, CoreError> {
    let mut gg = GpuGraph::new(&w.graph)?;
    gg.run(query_for(w, algo), &RunOptions::static_variant(v))
}

/// Runs `algo` on `w` with explicit options (adaptive runs, tracing,
/// tuning sweeps).
pub fn gpu_run(w: &Workload, algo: Algo, options: &RunOptions) -> Result<RunReport, CoreError> {
    let mut gg = GpuGraph::new(&w.graph)?;
    gg.run(query_for(w, algo), options)
}

/// Modeled serial CPU baseline time for `algo` on `w` (the denominator of
/// the speedup tables: BFS vs queue-BFS, SSSP vs heap Dijkstra).
pub fn cpu_baseline_ns(w: &Workload, algo: Algo) -> f64 {
    let model = CpuCostModel::default();
    match algo {
        Algo::Bfs => cpu_bfs(&w.graph, w.src, &model).time_ns,
        Algo::Sssp => cpu_dijkstra(&w.graph, w.src, &model).time_ns,
        Algo::Cc => cpu_cc(&w.graph, &model).time_ns,
        Algo::PageRank => {
            let cfg = agg_core::PageRankConfig::default();
            cpu_pagerank(&w.graph, cfg.damping, cfg.epsilon, &model).time_ns
        }
    }
}

/// One dataset row of a speedup table.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Dataset display name.
    pub dataset: &'static str,
    /// GPU-over-CPU speedup per variant, in [`Variant::ALL`] order.
    pub speedups: Vec<f64>,
    /// Modeled CPU baseline, ns.
    pub cpu_ns: f64,
    /// Modeled GPU time per variant, ns.
    pub gpu_ns: Vec<f64>,
}

impl SpeedupRow {
    /// Index of the fastest variant (the paper's grey cells).
    pub fn best_variant(&self) -> usize {
        self.speedups
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("eight variants")
    }
}

/// A full speedup table (Table 2 or Table 3).
#[derive(Debug, Clone)]
pub struct SpeedupTable {
    /// Which algorithm the table evaluates.
    pub algo: Algo,
    /// One row per dataset.
    pub rows: Vec<SpeedupRow>,
}

/// Computes the paper's Table 2 (`algo = Bfs`) or Table 3 (`algo = Sssp`)
/// over the given workloads: the speedup of all 8 static GPU variants over
/// the serial CPU baseline.
pub fn speedup_table(workloads: &[Workload], algo: Algo) -> Result<SpeedupTable, CoreError> {
    let mut rows = Vec::with_capacity(workloads.len());
    for w in workloads {
        let cpu_ns = cpu_baseline_ns(w, algo);
        let mut speedups = Vec::with_capacity(8);
        let mut gpu_ns = Vec::with_capacity(8);
        for v in Variant::ALL {
            let r = gpu_static_run(w, algo, v)?;
            gpu_ns.push(r.total_ns);
            speedups.push(cpu_ns / r.total_ns);
        }
        rows.push(SpeedupRow {
            dataset: w.dataset.name(),
            speedups,
            cpu_ns,
            gpu_ns,
        });
    }
    Ok(SpeedupTable { algo, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::load;
    use agg_graph::{traversal, Dataset, Scale};

    #[test]
    fn static_run_produces_correct_results_and_positive_time() {
        let w = load(Dataset::P2p, Scale::Tiny, 5);
        let r = gpu_static_run(&w, Algo::Bfs, Variant::parse("U_B_QU").unwrap()).unwrap();
        assert_eq!(r.values, traversal::bfs_levels(&w.graph, w.src));
        assert!(r.total_ns > 0.0);
    }

    #[test]
    fn cpu_baselines_are_positive_and_algorithm_dependent() {
        let w = load(Dataset::Amazon, Scale::Tiny, 5);
        let bfs = cpu_baseline_ns(&w, Algo::Bfs);
        let sssp = cpu_baseline_ns(&w, Algo::Sssp);
        assert!(bfs > 0.0);
        assert!(sssp > bfs, "Dijkstra should cost more than BFS");
    }

    #[test]
    fn speedup_table_has_expected_shape() {
        let ws = vec![load(Dataset::P2p, Scale::Tiny, 6)];
        let t = speedup_table(&ws, Algo::Bfs).unwrap();
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].speedups.len(), 8);
        assert!(t.rows[0].speedups.iter().all(|&s| s > 0.0));
        let best = t.rows[0].best_variant();
        assert!(best < 8);
    }
}
