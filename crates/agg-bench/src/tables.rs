//! Plain-text table formatting and CSV output for the repro harness.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Formats a table with a header row and aligned columns. `highlight`
/// receives the row index and returns the column to mark with `*` (the
/// paper marks the best variant per dataset with a grey cell).
pub fn format_table(
    header: &[String],
    rows: &[Vec<String>],
    highlight: impl Fn(usize) -> Option<usize>,
) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len() + 1); // room for the marker
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, w) in widths.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(*w));
        let _ = i;
    }
    out.push('\n');
    for (r, row) in rows.iter().enumerate() {
        let marked = highlight(r);
        for (i, cell) in row.iter().enumerate().take(ncols) {
            let cell = if marked == Some(i) {
                format!("{cell}*")
            } else {
                cell.clone()
            };
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Writes rows as CSV under `dir/name.csv`, creating `dir` if needed.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[String],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_aligned_table_with_highlight() {
        let header = vec!["ds".to_string(), "a".to_string(), "b".to_string()];
        let rows = vec![
            vec!["x".to_string(), "1.00".to_string(), "2.00".to_string()],
            vec!["y".to_string(), "3.00".to_string(), "4.00".to_string()],
        ];
        let s = format_table(&header, &rows, |r| if r == 0 { Some(2) } else { None });
        assert!(s.contains("2.00*"));
        assert!(!s.contains("4.00*"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("agg_bench_test_csv");
        let header = vec!["a".to_string(), "b".to_string()];
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let path = write_csv(&dir, "t", &header, &rows).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
    }
}
