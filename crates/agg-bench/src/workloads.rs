//! Workload registry: the six paper datasets, weighted, at a given scale.

use agg_graph::{CsrGraph, Dataset, NodeId, Scale};

/// Workspace-wide default seed for reproducible experiments.
pub const DEFAULT_SEED: u64 = 42;

/// Uniform random edge weights are drawn from `1..=MAX_WEIGHT` for SSSP
/// (the 9th DIMACS challenge road graphs use small positive integer
/// weights; we follow suit).
pub const MAX_WEIGHT: u32 = 64;

/// A ready-to-run workload.
pub struct Workload {
    /// Which paper dataset this stands in for.
    pub dataset: Dataset,
    /// The weighted synthetic graph.
    pub graph: CsrGraph,
    /// Traversal source (node 0, as in common BFS benchmarking practice).
    pub src: NodeId,
}

/// Generates the weighted analog of `dataset` at `scale`.
pub fn load(dataset: Dataset, scale: Scale, seed: u64) -> Workload {
    Workload {
        dataset,
        graph: dataset.generate_weighted(scale, seed, MAX_WEIGHT),
        src: 0,
    }
}

/// All six datasets at a scale.
pub fn load_all(scale: Scale, seed: u64) -> Vec<Workload> {
    Dataset::ALL.iter().map(|&d| load(d, scale, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_weighted_and_deterministic() {
        let a = load(Dataset::P2p, Scale::Tiny, 1);
        let b = load(Dataset::P2p, Scale::Tiny, 1);
        assert!(a.graph.is_weighted());
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn load_all_covers_the_six_datasets() {
        let all = load_all(Scale::Tiny, 1);
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|w| w.graph.node_count() > 0));
    }
}
