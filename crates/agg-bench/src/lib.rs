#![warn(missing_docs)]

//! Benchmark harness library: workload registry, run helpers, and table
//! formatting shared by the `repro` binary (which regenerates every table
//! and figure of the paper) and the criterion benches.

pub mod differential;
pub mod dynamic;
pub mod runner;
pub mod tables;
pub mod workloads;

pub use differential::{fuzz, CaseGraph, Divergence, FuzzConfig, FuzzReport, Minimized};
pub use dynamic::{
    crossover, dyn_fuzz, sweep_sizes, CrossoverPoint, CrossoverReport, DynDivergence,
    DynFuzzConfig, DynFuzzReport,
};
pub use runner::{cpu_baseline_ns, gpu_static_run, query_for, speedup_table, SpeedupTable};
pub use tables::{format_table, write_csv};
pub use workloads::{load, load_all, Workload, DEFAULT_SEED, MAX_WEIGHT};
