//! Dynamic-graph differential fuzzing and the recompute-vs-incremental
//! crossover benchmark.
//!
//! The static harness ([`crate::differential`]) pins every execution
//! configuration to the CPU oracles on immutable graphs. This module is
//! its batch-dynamic twin: the same adversarial corpus, but each case
//! now *mutates* under a stream of random insert/delete batches, and
//! every mutation is checked four ways against the from-scratch CPU
//! recompute on the updated graph (the unique fixpoint, hence the single
//! source of truth):
//!
//! 1. **gpu-fresh** — a cold run on the updated snapshot (the static
//!    harness's check, re-established after every mutation);
//! 2. **cpu-incremental** — [`cpu_apply_plan`] executing whatever
//!    [`plan_repair`] decided (serve unchanged / warm repair / recompute)
//!    on the CPU oracle;
//! 3. **plan-unchanged** — when the planner says the old fixpoint still
//!    stands, it must literally equal the new one;
//! 4. **gpu-warm** — when the planner picks incremental repair, the
//!    GPU's warm-start path ([`Session::run_warm`]) must land on the
//!    same fixpoint bit-for-bit.
//!
//! Any divergence is ddmin-shrunk over the *update sequence* with
//! [`minimize_updates`] (the dynamic analog of the graph-level edge
//! minimizer), so the regression test a bug earns is a handful of typed
//! updates, not a 60-node trace.
//!
//! [`crossover`] prices the Figure-11-style decision the serving layer
//! makes: for growing insert batches against one graph, the modeled
//! nanoseconds of warm repair vs cold recompute, and the first batch
//! size at which repair stops winning (by cost or by the planner's own
//! fallback). `repro dynamic` drives both and writes
//! `BENCH_dynamic.json`.

use crate::differential::{case_graph_weighted, mismatches, CaseGraph};
use agg_core::{Query, RunOptions, Session};
use agg_cpu::CpuCostModel;
use agg_dynamic::{
    cpu_apply_plan, minimize_updates, plan_repair, random_batch, DynamicGraph, EdgeUpdate,
    RepairKind, RepairPlan, UpdateBatch,
};
use agg_gpu_sim::{DeviceConfig, Json, SimFidelity};
use agg_graph::{CsrGraph, NodeId, INF};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a dynamic fuzzing run.
#[derive(Debug, Clone)]
pub struct DynFuzzConfig {
    /// Number of corpus graphs (drawn from the shared differential
    /// corpus, so all six generators and their degenerate features
    /// appear).
    pub cases: usize,
    /// Update batches applied to each case graph.
    pub rounds: usize,
    /// Updates per batch.
    pub update_size: usize,
    /// Corpus + update-stream seed: the run is deterministic in
    /// (`cases`, `rounds`, `update_size`, `seed`).
    pub seed: u64,
}

impl DynFuzzConfig {
    /// Defaults: 4 rounds of 6-update batches per case.
    pub fn new(cases: usize, seed: u64) -> DynFuzzConfig {
        DynFuzzConfig {
            cases,
            rounds: 4,
            update_size: 6,
            seed,
        }
    }
}

/// One confirmed difference between an incremental result and the
/// from-scratch recompute on the updated graph.
#[derive(Debug, Clone)]
pub struct DynDivergence {
    /// Corpus case index.
    pub case: usize,
    /// Update round within the case.
    pub round: usize,
    /// Generator that produced the base graph.
    pub generator: String,
    /// Algorithm that diverged (`bfs` / `sssp` / `cc`).
    pub algo: String,
    /// Which check failed (`gpu-fresh`, `cpu-incremental`,
    /// `plan-unchanged`, `gpu-warm`).
    pub lane: String,
    /// Node count of the updated graph.
    pub nodes: usize,
    /// Edge count of the updated graph.
    pub edges: usize,
    /// Query source.
    pub src: NodeId,
    /// Engine error, when the run failed outright instead of
    /// mis-answering.
    pub error: Option<String>,
    /// Indices where expected and actual differ (capped at 16).
    pub mismatched_at: Vec<usize>,
    /// ddmin-shrunk update subsequence that still reproduces the
    /// divergence from the pre-batch graph (empty for error lanes).
    pub minimized_updates: Vec<EdgeUpdate>,
}

impl DynDivergence {
    /// This divergence as a JSON object (the CI artifact element).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("case", self.case.into()),
            ("round", self.round.into()),
            ("generator", self.generator.as_str().into()),
            ("algo", self.algo.as_str().into()),
            ("lane", self.lane.as_str().into()),
            ("nodes", self.nodes.into()),
            ("edges", self.edges.into()),
            ("src", self.src.into()),
            (
                "error",
                match &self.error {
                    Some(e) => e.as_str().into(),
                    None => Json::Null,
                },
            ),
            (
                "mismatched_at",
                Json::arr(self.mismatched_at.iter().map(|&i| Json::from(i))),
            ),
            (
                "minimized_updates",
                Json::arr(self.minimized_updates.iter().map(update_json)),
            ),
        ])
    }
}

fn update_json(u: &EdgeUpdate) -> Json {
    match *u {
        EdgeUpdate::Insert { src, dst, weight } => Json::obj([
            ("op", "insert".into()),
            ("src", src.into()),
            ("dst", dst.into()),
            ("w", weight.into()),
        ]),
        EdgeUpdate::Delete { src, dst } => Json::obj([
            ("op", "delete".into()),
            ("src", src.into()),
            ("dst", dst.into()),
        ]),
    }
}

/// The outcome of a dynamic fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct DynFuzzReport {
    /// Corpus graphs mutated.
    pub cases: usize,
    /// Update batches that changed a graph (and bumped its epoch).
    pub rounds_applied: u64,
    /// Update batches whose net effect was empty (typed no-ops).
    pub rounds_noop: u64,
    /// Individual `(algorithm, lane)` comparisons made.
    pub checks: u64,
    /// Plans that served the old fixpoint unchanged.
    pub plans_unchanged: u64,
    /// Plans that warm-repaired incrementally.
    pub plans_incremental: u64,
    /// Plans that fell back to recompute.
    pub plans_recompute: u64,
    /// GPU warm-start runs executed (one per incremental plan).
    pub warm_runs: u64,
    /// Delta-buffer compactions triggered across the corpus.
    pub compactions: u64,
    /// Confirmed divergences (empty on a healthy tree).
    pub divergences: Vec<DynDivergence>,
}

impl DynFuzzReport {
    /// True when every incremental result matched its recompute.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// This report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cases", self.cases.into()),
            ("rounds_applied", self.rounds_applied.into()),
            ("rounds_noop", self.rounds_noop.into()),
            ("checks", self.checks.into()),
            ("plans_unchanged", self.plans_unchanged.into()),
            ("plans_incremental", self.plans_incremental.into()),
            ("plans_recompute", self.plans_recompute.into()),
            ("warm_runs", self.warm_runs.into()),
            ("compactions", self.compactions.into()),
            ("clean", Json::Bool(self.is_clean())),
            (
                "divergences",
                Json::arr(self.divergences.iter().map(DynDivergence::to_json)),
            ),
        ])
    }
}

/// The three repairable algorithms the dynamic matrix checks.
const KINDS: [(RepairKind, &str); 3] = [
    (RepairKind::Bfs, "bfs"),
    (RepairKind::Sssp, "sssp"),
    (RepairKind::Cc, "cc"),
];

fn query_for(kind: RepairKind, src: NodeId) -> Query {
    match kind {
        RepairKind::Bfs => Query::Bfs { src },
        RepairKind::Sssp => Query::Sssp { src },
        RepairKind::Cc => Query::Cc,
    }
}

/// Replays `updates` from `before` and returns the updated snapshot with
/// its net effect, or `None` when the batch is invalid or a net no-op
/// (the minimizer treats both as "does not reproduce").
fn replay_updates(
    before: &CsrGraph,
    updates: &[EdgeUpdate],
) -> Option<(CsrGraph, Vec<(NodeId, NodeId, u32)>, Vec<(NodeId, NodeId, u32)>)> {
    let mut dg = DynamicGraph::new(before.clone());
    let out = dg.apply(&UpdateBatch::from_updates(updates.to_vec())).ok()?;
    let snap = dg.snapshot().ok()?.clone();
    Some((snap, out.added, out.removed))
}

/// The expected fixpoint: a from-scratch CPU recompute on `g`.
fn truth(g: &CsrGraph, kind: RepairKind, src: NodeId, model: &CpuCostModel) -> Vec<u32> {
    agg_cpu::recompute(g, kind.relax(), src, model).result
}

/// Runs the dynamic differential matrix over the corpus. Deterministic
/// in `cfg`; returns every confirmed (and update-minimized) divergence
/// rather than panicking, so callers can write artifacts before failing.
pub fn dyn_fuzz(cfg: &DynFuzzConfig) -> DynFuzzReport {
    let mut report = DynFuzzReport {
        cases: cfg.cases,
        ..DynFuzzReport::default()
    };
    let model = CpuCostModel::default();
    let opts = RunOptions::default();
    let device = || {
        DeviceConfig::tesla_c2070().with_fidelity(SimFidelity::Functional)
    };
    for case in 0..cfg.cases {
        let CaseGraph {
            graph,
            generator,
            src,
        } = case_graph_weighted(cfg.seed, case, 16);
        let n = graph.node_count() as u32;
        if n == 0 {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(
            cfg.seed ^ 0xD15_C0DE ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Deletes draw from the ledger; pre-seeding it with the base
        // edges lets the stream delete *original* edges (the affecting-
        // delete checks), not only its own inserts.
        let mut ledger: Vec<(NodeId, NodeId)> =
            graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut dg = DynamicGraph::new(graph);
        let mut session = match Session::with_device(dg.snapshot().expect("base snapshot"), device())
        {
            Ok(s) => s,
            Err(e) => {
                report.divergences.push(DynDivergence {
                    case,
                    round: 0,
                    generator: generator.into(),
                    algo: "session".into(),
                    lane: "setup".into(),
                    nodes: n as usize,
                    edges: 0,
                    src,
                    error: Some(e.to_string()),
                    mismatched_at: Vec::new(),
                    minimized_updates: Vec::new(),
                });
                continue;
            }
        };
        for round in 0..cfg.rounds {
            let before = dg.snapshot().expect("pre-batch snapshot").clone();
            // Pre-batch fixpoints, one per algorithm, from the live session.
            let mut old = Vec::with_capacity(KINDS.len());
            for &(kind, _) in &KINDS {
                match session.run(query_for(kind, src), &opts) {
                    Ok(r) => old.push(r.values),
                    Err(e) => {
                        report.divergences.push(error_divergence(
                            case, round, generator, kind, &before, src, e.to_string(), "gpu-fresh",
                        ));
                        old.push(Vec::new());
                    }
                }
            }
            let batch = random_batch(&mut rng, n, cfg.update_size, true, &mut ledger);
            let out = match dg.apply(&batch) {
                Ok(out) => out,
                Err(e) => {
                    report.divergences.push(error_divergence(
                        case, round, generator, RepairKind::Bfs, &before, src,
                        format!("apply failed: {e}"), "apply",
                    ));
                    continue;
                }
            };
            if !out.bumped {
                report.rounds_noop += 1;
                continue;
            }
            report.rounds_applied += 1;
            if out.compacted {
                report.compactions += 1;
            }
            let snap = dg.snapshot().expect("post-batch snapshot").clone();
            if let Err(e) = session.reload_graph(&snap) {
                report.divergences.push(error_divergence(
                    case, round, generator, RepairKind::Bfs, &snap, src,
                    format!("reload failed: {e}"), "reload",
                ));
                continue;
            }
            let (sn, sm) = (snap.node_count(), snap.edge_count());
            let avg_deg = sm as f64 / sn.max(1) as f64;
            for (&(kind, algo), old) in KINDS.iter().zip(&old) {
                if old.is_empty() {
                    continue;
                }
                let expected = truth(&snap, kind, src, &model);
                // Builds (but does not push) a value-mismatch divergence,
                // ddmin-shrinking the batch for the failing lane.
                let mk_fail = |lane: &str, actual: &[u32]| -> DynDivergence {
                    let minimized = minimize_for_lane(
                        lane, &before, old, kind, src, &model, &batch.updates, &opts,
                    );
                    DynDivergence {
                        case,
                        round,
                        generator: generator.into(),
                        algo: algo.into(),
                        lane: lane.into(),
                        nodes: sn,
                        edges: sm,
                        src,
                        error: None,
                        mismatched_at: mismatches(&expected, actual),
                        minimized_updates: minimized,
                    }
                };
                // Lane 1: cold GPU run on the updated snapshot.
                report.checks += 1;
                match session.run(query_for(kind, src), &opts) {
                    Ok(r) if r.values == expected => {}
                    Ok(r) => report.divergences.push(mk_fail("gpu-fresh", &r.values)),
                    Err(e) => report.divergences.push(error_divergence(
                        case, round, generator, kind, &snap, src, e.to_string(), "gpu-fresh",
                    )),
                }
                // Lane 2: the CPU oracle executing the planner's decision.
                let plan = plan_repair(kind, old, &out.added, &out.removed, sn, sm, avg_deg);
                match plan {
                    RepairPlan::Unchanged => report.plans_unchanged += 1,
                    RepairPlan::Incremental { .. } => report.plans_incremental += 1,
                    RepairPlan::Recompute { .. } => report.plans_recompute += 1,
                }
                report.checks += 1;
                let oracle = cpu_apply_plan(&snap, kind, old, &plan, src, &model);
                if oracle != expected {
                    report.divergences.push(mk_fail("cpu-incremental", &oracle));
                }
                // Lane 3: "unchanged" must mean exactly that.
                if plan == RepairPlan::Unchanged {
                    report.checks += 1;
                    if old != &expected {
                        report.divergences.push(mk_fail("plan-unchanged", old));
                    }
                }
                // Lane 4: the GPU warm-start path on incremental plans.
                if matches!(plan, RepairPlan::Incremental { .. }) {
                    report.checks += 1;
                    report.warm_runs += 1;
                    match session.run_warm(query_for(kind, src), &opts, old, &out.added) {
                        Ok(r) if r.values == expected => {}
                        Ok(r) => report.divergences.push(mk_fail("gpu-warm", &r.values)),
                        Err(e) => report.divergences.push(error_divergence(
                            case, round, generator, kind, &snap, src, e.to_string(), "gpu-warm",
                        )),
                    }
                }
            }
        }
    }
    report
}

/// ddmin over the batch's update sequence for the failing lane: replay a
/// candidate subsequence from the pre-batch graph, re-evaluate just that
/// lane, keep shrinking while it still diverges.
#[allow(clippy::too_many_arguments)]
fn minimize_for_lane(
    lane: &str,
    before: &CsrGraph,
    old: &[u32],
    kind: RepairKind,
    src: NodeId,
    model: &CpuCostModel,
    updates: &[EdgeUpdate],
    opts: &RunOptions,
) -> Vec<EdgeUpdate> {
    let device = DeviceConfig::tesla_c2070().with_fidelity(SimFidelity::Functional);
    let fails = |cand: &[EdgeUpdate]| -> bool {
        let Some((snap, added, removed)) = replay_updates(before, cand) else {
            return false;
        };
        let expected = truth(&snap, kind, src, model);
        let (sn, sm) = (snap.node_count(), snap.edge_count());
        let plan = plan_repair(kind, old, &added, &removed, sn, sm, sm as f64 / sn.max(1) as f64);
        match lane {
            "gpu-fresh" => Session::with_device(&snap, device.clone())
                .and_then(|mut s| s.run(query_for(kind, src), opts))
                .map(|r| r.values != expected)
                .unwrap_or(true),
            "cpu-incremental" => cpu_apply_plan(&snap, kind, old, &plan, src, model) != expected,
            "plan-unchanged" => plan == RepairPlan::Unchanged && old != expected.as_slice(),
            "gpu-warm" => {
                if !matches!(plan, RepairPlan::Incremental { .. }) {
                    return false;
                }
                Session::with_device(&snap, device.clone())
                    .and_then(|mut s| s.run_warm(query_for(kind, src), opts, old, &added))
                    .map(|r| r.values != expected)
                    .unwrap_or(true)
            }
            _ => false,
        }
    };
    if !fails(updates) {
        // The divergence does not reproduce from a clean replay (e.g. it
        // needed accumulated session state): report the whole batch.
        return updates.to_vec();
    }
    minimize_updates(updates, fails)
}

#[allow(clippy::too_many_arguments)]
fn error_divergence(
    case: usize,
    round: usize,
    generator: &str,
    kind: RepairKind,
    g: &CsrGraph,
    src: NodeId,
    error: String,
    lane: &str,
) -> DynDivergence {
    let algo = KINDS
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, a)| *a)
        .unwrap_or("bfs");
    DynDivergence {
        case,
        round,
        generator: generator.into(),
        algo: algo.into(),
        lane: lane.into(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        src,
        error: Some(error),
        mismatched_at: Vec::new(),
        minimized_updates: Vec::new(),
    }
}

// ------------------------------------------------------------- Crossover

/// One measured point of the crossover sweep.
#[derive(Debug, Clone)]
pub struct CrossoverPoint {
    /// Algorithm (`bfs` / `sssp` / `cc`).
    pub algo: String,
    /// Insert-batch size applied before measuring.
    pub batch_size: usize,
    /// Seed improvements the planner found.
    pub seeds: usize,
    /// The planner's decision (`unchanged` / `incremental` / `recompute`).
    pub plan: String,
    /// Modeled time of a cold run on the updated graph, ns.
    pub fresh_ns: f64,
    /// Modeled time of the warm-repair run, ns (absent when the planner
    /// did not pick incremental).
    pub warm_ns: Option<f64>,
}

impl CrossoverPoint {
    /// Cold time over warm time (> 1 means repair wins).
    pub fn speedup(&self) -> Option<f64> {
        self.warm_ns.map(|w| self.fresh_ns / w.max(1e-9))
    }

    /// This point as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("algo", self.algo.as_str().into()),
            ("batch_size", self.batch_size.into()),
            ("seeds", self.seeds.into()),
            ("plan", self.plan.as_str().into()),
            ("fresh_ns", self.fresh_ns.into()),
            (
                "warm_ns",
                match self.warm_ns {
                    Some(w) => w.into(),
                    None => Json::Null,
                },
            ),
            (
                "speedup",
                match self.speedup() {
                    Some(s) => s.into(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// The crossover sweep's outcome.
#[derive(Debug, Clone, Default)]
pub struct CrossoverReport {
    /// Every measured `(algo, batch size)` point.
    pub rows: Vec<CrossoverPoint>,
    /// Per algorithm: the first swept batch size at which incremental
    /// repair stopped winning — because warm modeled time met or
    /// exceeded cold, or because the planner itself fell back — and
    /// `None` when repair won at every swept size.
    pub crossover_at: Vec<(String, Option<usize>)>,
    /// Whether every warm result matched its cold recompute bit-for-bit.
    pub identity_ok: bool,
}

impl CrossoverReport {
    /// This report as a JSON object (the `BENCH_dynamic.json` payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("identity_ok", Json::Bool(self.identity_ok)),
            (
                "crossover_at",
                Json::arr(self.crossover_at.iter().map(|(algo, at)| {
                    Json::obj([
                        ("algo", algo.as_str().into()),
                        (
                            "batch_size",
                            match at {
                                Some(k) => Json::from(*k),
                                None => Json::Null,
                            },
                        ),
                    ])
                })),
            ),
            ("rows", Json::arr(self.rows.iter().map(CrossoverPoint::to_json))),
        ])
    }
}

/// Batch sizes the sweep measures for a graph with `m` edges: fixed
/// small sizes where repair should win, then fractions of `m` where the
/// planner's cost estimate must eventually fall back to recompute.
pub fn sweep_sizes(m: usize) -> Vec<usize> {
    let mut sizes = vec![1, 2, 4, 8, 16, 32, 64];
    for frac in [m / 8, m / 4, m / 2, m] {
        if frac > 0 {
            sizes.push(frac);
        }
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// Measures recompute-vs-incremental modeled time on `base` for each
/// insert-batch size in `sizes` (see [`sweep_sizes`]), per repairable
/// algorithm. Each point starts from the pristine base graph, applies
/// one batch of inserts whose sources are drawn from nodes the old
/// fixpoint reached (hot-region updates — the case warm repair exists
/// for), and times a cold run vs the warm-repair run on the same
/// simulated device. Warm values are verified bit-identical to cold
/// before any time is reported.
pub fn crossover(base: &CsrGraph, seed: u64, sizes: &[usize]) -> CrossoverReport {
    let mut report = CrossoverReport {
        identity_ok: true,
        ..CrossoverReport::default()
    };
    let n = base.node_count() as u32;
    if n == 0 {
        report.identity_ok = false;
        return report;
    }
    for &(kind, algo) in &KINDS {
        let query = query_for(kind, 0);
        let mut first_loss: Option<usize> = None;
        for &k in sizes {
            let mut rng = StdRng::seed_from_u64(seed ^ ((k as u64) << 8) ^ (algo.len() as u64));
            let mut dg = DynamicGraph::new(base.clone());
            let mut session =
                Session::with_device(dg.snapshot().expect("base snapshot"), DeviceConfig::tesla_c2070())
                    .expect("crossover session");
            let opts = RunOptions::default();
            let old = session.run(query, &opts).expect("crossover warmup").values;
            let reached: Vec<u32> = (0..n).filter(|&v| old[v as usize] != INF).collect();
            if reached.is_empty() {
                break;
            }
            let mut batch = UpdateBatch::new();
            for _ in 0..k {
                let u = reached[rng.gen_range(0..reached.len())];
                let v = rng.gen_range(0..n);
                batch.insert(u, v, 1 + rng.gen_range(0u32..16));
            }
            let out = dg.apply(&batch).expect("crossover apply");
            if !out.bumped {
                continue;
            }
            let snap = dg.snapshot().expect("crossover snapshot").clone();
            session.reload_graph(&snap).expect("crossover reload");
            let (sn, sm) = (snap.node_count(), snap.edge_count());
            let plan = plan_repair(
                kind,
                &old,
                &out.added,
                &out.removed,
                sn,
                sm,
                sm as f64 / sn.max(1) as f64,
            );
            let fresh = session.run(query, &opts).expect("crossover cold run");
            let (seeds, plan_name) = match &plan {
                RepairPlan::Unchanged => (0, "unchanged"),
                RepairPlan::Incremental { seeds } => (seeds.len(), "incremental"),
                RepairPlan::Recompute { .. } => (0, "recompute"),
            };
            let warm_ns = if matches!(plan, RepairPlan::Incremental { .. }) {
                let warm = session
                    .run_warm(query, &opts, &old, &out.added)
                    .expect("crossover warm run");
                if warm.values != fresh.values {
                    report.identity_ok = false;
                }
                Some(warm.total_ns)
            } else {
                None
            };
            let lost = match warm_ns {
                Some(w) => w >= fresh.total_ns,
                // The planner falling back *is* the crossover; a
                // no-seed "unchanged" point is a win, not a loss.
                None => plan_name == "recompute",
            };
            if lost && first_loss.is_none() {
                first_loss = Some(k);
            }
            report.rows.push(CrossoverPoint {
                algo: algo.into(),
                batch_size: k,
                seeds,
                plan: plan_name.into(),
                fresh_ns: fresh.total_ns,
                warm_ns,
            });
        }
        report.crossover_at.push((algo.into(), first_loss));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::GraphBuilder;

    #[test]
    fn tiny_dyn_fuzz_run_is_clean_and_exercises_every_plan_arm() {
        let cfg = DynFuzzConfig::new(10, 0xD1A);
        let r = dyn_fuzz(&cfg);
        assert!(r.is_clean(), "divergences: {:?}", r.divergences);
        assert_eq!(r.cases, 10);
        assert!(r.rounds_applied > 0, "no batch ever changed a graph");
        assert!(r.checks > 0);
        assert!(
            r.plans_unchanged > 0 && r.plans_incremental > 0 && r.plans_recompute > 0,
            "plan arms not all exercised: unchanged {} incremental {} recompute {}",
            r.plans_unchanged,
            r.plans_incremental,
            r.plans_recompute
        );
        assert_eq!(r.warm_runs, r.plans_incremental);
        let s = r.to_json().render();
        assert!(s.contains("\"clean\":true"), "{s}");
        assert!(s.contains("\"divergences\":[]"), "{s}");
    }

    #[test]
    fn dyn_fuzz_is_deterministic() {
        let cfg = DynFuzzConfig::new(4, 99);
        let (a, b) = (dyn_fuzz(&cfg), dyn_fuzz(&cfg));
        assert_eq!(a.rounds_applied, b.rounds_applied);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.plans_incremental, b.plans_incremental);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    /// Disjoint chains make warm repair obviously cheaper than recompute
    /// at batch size 1 (single seeds, near-empty frontiers, and — for
    /// CC — cross-chain inserts that actually lower labels), and the
    /// m-sized insert batch must push the planner (or the clock) past
    /// the crossover.
    #[test]
    fn crossover_sweep_finds_the_flip_on_a_chain() {
        let (chains, len) = (40u32, 50u32);
        let mut edges = Vec::new();
        for c in 0..chains {
            for i in 0..len - 1 {
                let u = c * len + i;
                edges.push((u, u + 1, 1 + (u % 7)));
            }
        }
        let g = GraphBuilder::from_weighted_edges((chains * len) as usize, &edges).unwrap();
        let sizes = sweep_sizes(g.edge_count());
        let r = crossover(&g, 7, &sizes);
        assert!(r.identity_ok, "warm repair diverged from cold recompute");
        assert!(!r.rows.is_empty());
        // Traversals are where repair pays: small-batch warm runs must
        // beat the cold recompute. (CC recomputes in a handful of
        // near-flat iterations, so its warm path rarely wins on the
        // modeled clock — the sweep records that honestly instead of
        // asserting it away.)
        for algo in ["bfs", "sssp"] {
            let wins = r
                .rows
                .iter()
                .filter(|p| p.algo == algo && p.batch_size <= 4)
                .filter_map(CrossoverPoint::speedup)
                .any(|s| s > 1.0);
            assert!(wins, "{algo}: incremental never beat recompute at small batches");
        }
        // Every algorithm records a crossover somewhere in the sweep —
        // by the clock (CC, immediately) or by the planner's own
        // cost-estimate fallback on m-sized batches (BFS/SSSP).
        for (algo, at) in &r.crossover_at {
            assert!(at.is_some(), "{algo}: no crossover recorded in {sizes:?}");
        }
        let s = r.to_json().render();
        assert!(s.contains("\"identity_ok\":true"), "{s}");
        assert!(s.contains("\"crossover_at\""), "{s}");
    }
}
