//! The epoch-keyed, byte-bounded result cache.
//!
//! Results are memoized per `(graph name, graph epoch, query identity)`,
//! where query identity is [`Query::cache_key`](agg_core::Query::cache_key)
//! — deliberately **excluding** execution policy ([`agg_core::RunOptions`]),
//! because the workspace invariant (enforced by the differential harness)
//! is that values are bit-identical across strategies, variants, engines,
//! and shard counts. Two clients asking for BFS from the same source get
//! the same bits no matter how the scheduler chose to run it.
//!
//! The epoch is the invalidation hook: a graph's epoch is a monotonic
//! counter owned by the server, and the dynamic-update path bumps it
//! after mutating the graph. [`ResultCache::invalidate_before`] then
//! strands exactly that graph's older-epoch entries — other graphs'
//! entries and current-epoch entries are untouched — while
//! [`ResultCache::stale_entries`] lets the update path *repair* stale
//! entries (warm-start from them) before the sweep drops the leftovers.
//!
//! The cache is additionally bounded by a **byte budget**: each entry is
//! charged its value payload (4 bytes per `u32`) plus a fixed key
//! overhead, and inserting past the budget evicts least-recently-used
//! entries until the new entry fits. Recency is a monotonic tick bumped
//! on hits and inserts — a service-path cache of at most thousands of
//! entries does not need an intrusive list. Values are `Arc`-shared so a
//! hit never copies the vector.

use std::collections::HashMap;
use std::sync::Arc;

/// Default byte budget: 64 MiB of cached result payloads.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// Flat per-entry overhead charged on top of the value payload: the key
/// strings, the epoch, map slot, and recency bookkeeping.
const ENTRY_OVERHEAD: usize = 96;

#[derive(Debug)]
struct Entry {
    values: Arc<Vec<u32>>,
    /// Recency stamp: larger = more recently used.
    tick: u64,
}

/// A memo of query results keyed by `(graph, epoch, query identity)`,
/// bounded by a byte budget with least-recently-used eviction.
///
/// Not synchronized — the service thread owns it; the replay client owns
/// its own copy. Wrap in a mutex only if a future design shares it.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<(String, u64, String), Entry>,
    /// Byte budget; entries are evicted LRU-first when an insert would
    /// exceed it.
    budget: usize,
    /// Bytes currently charged against the budget.
    bytes: usize,
    /// Monotonic recency clock.
    clock: u64,
    /// Lifetime hit count (lookups that found an entry).
    pub hits: u64,
    /// Lifetime miss count (lookups that found nothing).
    pub misses: u64,
    /// Lifetime count of entries removed by [`invalidate_before`](Self::invalidate_before).
    pub invalidated: u64,
    /// Lifetime count of entries evicted by the byte budget.
    pub evicted: u64,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::with_budget(DEFAULT_CACHE_BUDGET)
    }
}

fn entry_cost(values: &[u32]) -> usize {
    values.len() * 4 + ENTRY_OVERHEAD
}

impl ResultCache {
    /// An empty cache with the default byte budget.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// An empty cache bounded to `budget` bytes of charged entries. A
    /// single entry larger than the whole budget is still admitted alone
    /// (the cache never refuses to serve, it only bounds accumulation).
    pub fn with_budget(budget: usize) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            budget,
            bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            invalidated: 0,
            evicted: 0,
        }
    }

    /// Looks up a result, counting the hit or miss and refreshing the
    /// entry's recency on a hit.
    pub fn get(&mut self, graph: &str, epoch: u64, key: &str) -> Option<Arc<Vec<u32>>> {
        // HashMap<(String,..)> can't be probed with borrowed parts, and
        // this is a service-path map of at most a few thousand entries —
        // allocate the probe key rather than hand-rolling a borrowed
        // tuple key.
        let probe = (graph.to_string(), epoch, key.to_string());
        self.clock += 1;
        match self.entries.get_mut(&probe) {
            Some(e) => {
                e.tick = self.clock;
                self.hits += 1;
                Some(Arc::clone(&e.values))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching the hit/miss counters or recency (used by
    /// identity verification, which must not distort the reported hit
    /// rate).
    pub fn peek(&self, graph: &str, epoch: u64, key: &str) -> Option<Arc<Vec<u32>>> {
        let probe = (graph.to_string(), epoch, key.to_string());
        self.entries.get(&probe).map(|e| Arc::clone(&e.values))
    }

    /// Stores a result, evicting least-recently-used entries first if the
    /// byte budget would be exceeded. Replacing an existing key never
    /// counts as an eviction.
    pub fn insert(&mut self, graph: &str, epoch: u64, key: &str, values: Arc<Vec<u32>>) {
        let full_key = (graph.to_string(), epoch, key.to_string());
        let cost = entry_cost(&values);
        if let Some(old) = self.entries.remove(&full_key) {
            self.bytes -= entry_cost(&old.values);
        }
        while self.bytes + cost > self.budget && !self.entries.is_empty() {
            self.evict_lru();
        }
        self.clock += 1;
        self.bytes += cost;
        self.entries.insert(
            full_key,
            Entry {
                values,
                tick: self.clock,
            },
        );
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            if let Some(e) = self.entries.remove(&k) {
                self.bytes -= entry_cost(&e.values);
                self.evicted += 1;
            }
        }
    }

    /// Removes every entry for `graph` with an epoch **older than**
    /// `epoch`, returning how many were stranded. Entries for other
    /// graphs, and entries already at `epoch` or newer, are untouched.
    pub fn invalidate_before(&mut self, graph: &str, epoch: u64) -> usize {
        let before = self.entries.len();
        let bytes = &mut self.bytes;
        self.entries.retain(|(g, e, _), entry| {
            let keep = g != graph || *e >= epoch;
            if !keep {
                *bytes -= entry_cost(&entry.values);
            }
            keep
        });
        let removed = before - self.entries.len();
        self.invalidated += removed as u64;
        removed
    }

    /// Enumerates `(query key, values)` for every entry of `graph` with
    /// an epoch **older than** `epoch` — the stale set a dynamic update
    /// may repair (warm-start) before sweeping with
    /// [`invalidate_before`](Self::invalidate_before). Does not touch
    /// counters or recency; keys are returned sorted for determinism.
    pub fn stale_entries(&self, graph: &str, epoch: u64) -> Vec<(String, Arc<Vec<u32>>)> {
        let mut stale: Vec<(String, Arc<Vec<u32>>)> = self
            .entries
            .iter()
            .filter(|((g, e, _), _)| g == graph && *e < epoch)
            .map(|((_, _, k), entry)| (k.clone(), Arc::clone(&entry.values)))
            .collect();
        stale.sort_by(|a, b| a.0.cmp(&b.0));
        stale
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[u32]) -> Arc<Vec<u32>> {
        Arc::new(xs.to_vec())
    }

    #[test]
    fn hits_and_misses_are_counted_and_values_are_shared() {
        let mut cache = ResultCache::new();
        assert!(cache.get("g", 0, "bfs:0").is_none());
        cache.insert("g", 0, "bfs:0", vals(&[0, 1, 2]));
        let v = cache.get("g", 0, "bfs:0").expect("hit");
        assert_eq!(*v, vec![0, 1, 2]);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // peek doesn't move the counters
        assert!(cache.peek("g", 0, "bfs:0").is_some());
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // same query at a different epoch is a distinct entry
        assert!(cache.get("g", 1, "bfs:0").is_none());
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn invalidation_strands_exactly_the_older_entries_of_one_graph() {
        let mut cache = ResultCache::new();
        cache.insert("a", 0, "bfs:0", vals(&[1]));
        cache.insert("a", 0, "cc", vals(&[2]));
        cache.insert("a", 1, "bfs:0", vals(&[3]));
        cache.insert("b", 0, "bfs:0", vals(&[4]));
        assert_eq!(cache.invalidate_before("a", 1), 2);
        assert_eq!(cache.len(), 2);
        // graph a's epoch-1 entry survives, graph b is untouched
        assert!(cache.peek("a", 1, "bfs:0").is_some());
        assert!(cache.peek("b", 0, "bfs:0").is_some());
        assert!(cache.peek("a", 0, "bfs:0").is_none());
        assert!(cache.peek("a", 0, "cc").is_none());
        assert_eq!(cache.invalidated, 2);
        // idempotent: a second sweep removes nothing
        assert_eq!(cache.invalidate_before("a", 1), 0);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        // Budget fits exactly two single-word entries.
        let mut cache = ResultCache::with_budget(2 * (4 + 96));
        cache.insert("g", 0, "bfs:0", vals(&[1]));
        cache.insert("g", 0, "bfs:1", vals(&[2]));
        assert_eq!(cache.bytes(), 2 * 100);
        // Touch bfs:0 so bfs:1 becomes the LRU victim.
        assert!(cache.get("g", 0, "bfs:0").is_some());
        cache.insert("g", 0, "bfs:2", vals(&[3]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted, 1);
        assert!(cache.peek("g", 0, "bfs:0").is_some());
        assert!(cache.peek("g", 0, "bfs:1").is_none());
        assert!(cache.peek("g", 0, "bfs:2").is_some());
        // Accounting survives eviction and invalidation alike.
        cache.invalidate_before("g", 1);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_entry_is_admitted_alone() {
        let mut cache = ResultCache::with_budget(8);
        cache.insert("g", 0, "cc", vals(&[1, 2, 3, 4]));
        assert_eq!(cache.len(), 1);
        assert!(cache.peek("g", 0, "cc").is_some());
        // The next insert evicts it — accumulation stays bounded.
        cache.insert("g", 0, "bfs:0", vals(&[5]));
        assert_eq!(cache.len(), 1);
        assert!(cache.peek("g", 0, "cc").is_none());
        assert_eq!(cache.evicted, 1);
    }

    #[test]
    fn replacing_a_key_is_not_an_eviction_and_rebalances_bytes() {
        let mut cache = ResultCache::new();
        cache.insert("g", 0, "cc", vals(&[1, 2, 3, 4]));
        let big = cache.bytes();
        cache.insert("g", 0, "cc", vals(&[9]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evicted, 0);
        assert!(cache.bytes() < big);
        assert_eq!(*cache.peek("g", 0, "cc").unwrap(), vec![9]);
    }

    #[test]
    fn stale_entries_enumerates_exactly_the_older_epochs_of_one_graph() {
        let mut cache = ResultCache::new();
        cache.insert("a", 0, "bfs:0", vals(&[1]));
        cache.insert("a", 1, "cc", vals(&[2]));
        cache.insert("a", 2, "sssp:3", vals(&[3]));
        cache.insert("b", 0, "bfs:0", vals(&[4]));
        let stale = cache.stale_entries("a", 2);
        let keys: Vec<&str> = stale.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["bfs:0", "cc"]);
        // Enumeration is non-destructive and counter-neutral.
        assert_eq!(cache.len(), 4);
        assert_eq!((cache.hits, cache.misses), (0, 0));
    }
}
