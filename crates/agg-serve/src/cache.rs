//! The epoch-keyed result cache.
//!
//! Results are memoized per `(graph name, graph epoch, query identity)`,
//! where query identity is [`Query::cache_key`](agg_core::Query::cache_key)
//! — deliberately **excluding** execution policy ([`agg_core::RunOptions`]),
//! because the workspace invariant (enforced by the differential harness)
//! is that values are bit-identical across strategies, variants, engines,
//! and shard counts. Two clients asking for BFS from the same source get
//! the same bits no matter how the scheduler chose to run it.
//!
//! The epoch is the invalidation hook: a graph's epoch is a monotonic
//! counter owned by the server, and any future dynamic-update path bumps
//! it after mutating the graph. [`ResultCache::invalidate_before`] then
//! strands exactly that graph's older-epoch entries — other graphs'
//! entries and current-epoch entries are untouched. Values are
//! `Arc`-shared so a hit never copies the vector.

use std::collections::HashMap;
use std::sync::Arc;

/// A memo of query results keyed by `(graph, epoch, query identity)`.
///
/// Not synchronized — the service thread owns it; the replay client owns
/// its own copy. Wrap in a mutex only if a future design shares it.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<(String, u64, String), Arc<Vec<u32>>>,
    /// Lifetime hit count (lookups that found an entry).
    pub hits: u64,
    /// Lifetime miss count (lookups that found nothing).
    pub misses: u64,
    /// Lifetime count of entries removed by [`invalidate_before`](Self::invalidate_before).
    pub invalidated: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Looks up a result, counting the hit or miss.
    pub fn get(&mut self, graph: &str, epoch: u64, key: &str) -> Option<Arc<Vec<u32>>> {
        // HashMap<(String,..)> can't be probed with borrowed parts, and
        // this is a service-path map of at most a few thousand entries —
        // allocate the probe key rather than hand-rolling a borrowed
        // tuple key.
        let probe = (graph.to_string(), epoch, key.to_string());
        match self.entries.get(&probe) {
            Some(v) => {
                self.hits += 1;
                Some(Arc::clone(v))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching the hit/miss counters (used by identity
    /// verification, which must not distort the reported hit rate).
    pub fn peek(&self, graph: &str, epoch: u64, key: &str) -> Option<Arc<Vec<u32>>> {
        let probe = (graph.to_string(), epoch, key.to_string());
        self.entries.get(&probe).map(Arc::clone)
    }

    /// Stores a result.
    pub fn insert(&mut self, graph: &str, epoch: u64, key: &str, values: Arc<Vec<u32>>) {
        self.entries
            .insert((graph.to_string(), epoch, key.to_string()), values);
    }

    /// Removes every entry for `graph` with an epoch **older than**
    /// `epoch`, returning how many were stranded. Entries for other
    /// graphs, and entries already at `epoch` or newer, are untouched.
    pub fn invalidate_before(&mut self, graph: &str, epoch: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|(g, e, _), _| g != graph || *e >= epoch);
        let removed = before - self.entries.len();
        self.invalidated += removed as u64;
        removed
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[u32]) -> Arc<Vec<u32>> {
        Arc::new(xs.to_vec())
    }

    #[test]
    fn hits_and_misses_are_counted_and_values_are_shared() {
        let mut cache = ResultCache::new();
        assert!(cache.get("g", 0, "bfs:0").is_none());
        cache.insert("g", 0, "bfs:0", vals(&[0, 1, 2]));
        let v = cache.get("g", 0, "bfs:0").expect("hit");
        assert_eq!(*v, vec![0, 1, 2]);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // peek doesn't move the counters
        assert!(cache.peek("g", 0, "bfs:0").is_some());
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // same query at a different epoch is a distinct entry
        assert!(cache.get("g", 1, "bfs:0").is_none());
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn invalidation_strands_exactly_the_older_entries_of_one_graph() {
        let mut cache = ResultCache::new();
        cache.insert("a", 0, "bfs:0", vals(&[1]));
        cache.insert("a", 0, "cc", vals(&[2]));
        cache.insert("a", 1, "bfs:0", vals(&[3]));
        cache.insert("b", 0, "bfs:0", vals(&[4]));
        assert_eq!(cache.invalidate_before("a", 1), 2);
        assert_eq!(cache.len(), 2);
        // graph a's epoch-1 entry survives, graph b is untouched
        assert!(cache.peek("a", 1, "bfs:0").is_some());
        assert!(cache.peek("b", 0, "bfs:0").is_some());
        assert!(cache.peek("a", 0, "bfs:0").is_none());
        assert!(cache.peek("a", 0, "cc").is_none());
        assert_eq!(cache.invalidated, 2);
        // idempotent: a second sweep removes nothing
        assert_eq!(cache.invalidate_before("a", 1), 0);
    }
}
