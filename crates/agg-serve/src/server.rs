//! The live threaded service and its client.
//!
//! Thread layout (hand-rolled over `std::thread` + `std::sync::mpsc`;
//! the workspace builds offline, so no async runtime):
//!
//! ```text
//!   acceptor ──spawns──▶ per-connection reader ──try_send──▶ bounded queue
//!                              │ (shed: typed Overloaded          │
//!                              │  written straight back)          ▼
//!   client ◀── Arc<Mutex<TcpStream>> writes ◀────────── service thread
//!                                                (micro-batcher + Sessions
//!                                                 + epoch-keyed cache)
//! ```
//!
//! One service thread owns every [`Hosted`] graph, the
//! [`ResultCache`], and all epochs — so cache and epoch access need no
//! locking and responses for one connection are written through that
//! connection's stream mutex. Admission control lives at the reader:
//! query requests are `try_send` into the bounded queue and a full queue
//! is answered immediately with [`Response::Overloaded`] — the client
//! always hears back, the service thread is never blocked by overload.
//! Control requests (epoch bumps, stats) use a blocking send instead:
//! they are rare, must not be shed, and back-pressure on them is fine.

use crate::cache::ResultCache;
use crate::protocol::{read_frame, write_frame, Request, Response, ServeStats};
use crate::ServeError;
use agg_core::{CoreError, Query, RunOptions, Session};
use agg_dynamic::{plan_repair, DynStats, DynamicGraph, RepairKind, RepairPlan, UpdateBatch};
use agg_gpu_sim::DeviceConfig;
use agg_graph::CsrGraph;
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A graph resident in the service: the `Arc`-shared current snapshot,
/// the batch-dynamic graph behind it, the [`Session`] that answers
/// queries against it, and its monotonic epoch.
pub struct Hosted {
    /// Name clients address the graph by.
    pub name: String,
    /// The current immutable snapshot (swapped on dynamic updates).
    pub graph: Arc<CsrGraph>,
    /// Current epoch; bumped by the invalidation hook and by every
    /// effective update batch.
    pub epoch: u64,
    dynamic: DynamicGraph,
    session: Session,
}

/// What [`Hosted::apply_update`] did with one update batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateApplied {
    /// The epoch after the batch (unchanged when `bumped` is false).
    pub epoch: u64,
    /// True when the batch had a net effect. A no-op batch (empty, or
    /// inserts cancelled by this batch's own deletes) leaves the graph,
    /// the epoch, and the cache untouched.
    pub bumped: bool,
    /// Updates in the batch as received.
    pub applied: usize,
    /// Stale cache entries carried to the new epoch (proven unchanged or
    /// warm-repaired on the engine).
    pub repaired: usize,
    /// Stale cache entries dropped instead.
    pub invalidated: usize,
}

/// What [`Hosted::serve_batch`] produced for one flush of queries.
pub struct BatchServed {
    /// Per input query, in order: the value vector and whether it came
    /// from the cache (`true`) or this flush's execution (`false` — also
    /// for duplicates deduplicated into a twin's run).
    pub results: Vec<(Arc<Vec<u32>>, bool)>,
    /// The epoch every result in this flush was computed/served at.
    pub epoch: u64,
    /// Modeled critical-path time of the `run_batch` call, ns (`0.0`
    /// when everything was served from cache).
    pub makespan_ns: f64,
    /// Unique queries that actually executed.
    pub executed: usize,
}

impl Hosted {
    /// Uploads `graph` to a fresh device and wraps it for serving.
    pub fn new(
        name: impl Into<String>,
        graph: Arc<CsrGraph>,
        device: DeviceConfig,
    ) -> Result<Hosted, CoreError> {
        let session = Session::with_device(&graph, device)?;
        Ok(Hosted {
            name: name.into(),
            dynamic: DynamicGraph::new((*graph).clone()),
            graph,
            epoch: 0,
            session,
        })
    }

    /// Bumps the epoch and strands this graph's stale cache entries,
    /// returning the count removed — the blunt invalidation hook
    /// (no repair; [`apply_update`](Self::apply_update) is the surgical
    /// path).
    pub fn bump_epoch(&mut self, cache: &mut ResultCache) -> usize {
        self.epoch += 1;
        cache.invalidate_before(&self.name, self.epoch)
    }

    /// Applies one batch of edge updates: mutate the dynamic graph, and —
    /// if the batch had a net effect — reload the session on the new
    /// snapshot, bump the epoch, then settle every stale cache entry per
    /// its [`RepairPlan`]: carry it forward unchanged, warm-repair it on
    /// the engine, or drop it (the next query recomputes). A no-op batch
    /// touches nothing: no epoch bump, no invalidation, no compaction.
    pub fn apply_update(
        &mut self,
        batch: &UpdateBatch,
        cache: &mut ResultCache,
        options: &RunOptions,
    ) -> Result<UpdateApplied, ServeError> {
        let applied = batch.len();
        let out = self
            .dynamic
            .apply(batch)
            .map_err(|e| ServeError::Protocol(format!("invalid update batch: {e}")))?;
        if !out.bumped {
            return Ok(UpdateApplied {
                epoch: self.epoch,
                bumped: false,
                applied,
                repaired: 0,
                invalidated: 0,
            });
        }
        let snapshot = self
            .dynamic
            .snapshot()
            .map_err(|e| ServeError::Protocol(format!("snapshot failed: {e}")))?
            .clone();
        self.session.reload_graph(&snapshot)?;
        self.graph = Arc::new(snapshot);
        self.epoch += 1;
        let n = self.graph.node_count();
        let m = self.graph.edge_count();
        let avg_out_degree = m as f64 / n.max(1) as f64;
        let mut repaired = 0usize;
        for (key, old) in cache.stale_entries(&self.name, self.epoch) {
            // PageRank (and anything unparseable) has no repair path —
            // leave it for the sweep below.
            let Some(query) = query_from_cache_key(&key) else {
                continue;
            };
            let Some(kind) = RepairKind::from_query(&query) else {
                continue;
            };
            if old.len() != n {
                continue;
            }
            match plan_repair(kind, &old, &out.added, &out.removed, n, m, avg_out_degree) {
                RepairPlan::Unchanged => {
                    cache.insert(&self.name, self.epoch, &key, old);
                    repaired += 1;
                }
                RepairPlan::Incremental { .. } => {
                    // A warm-start rejection (e.g. a pinned ordered
                    // strategy) just drops the entry; never fail the
                    // update over a cache repair.
                    if let Ok(rep) = self.session.run_warm(query, options, &old, &out.added) {
                        cache.insert(&self.name, self.epoch, &key, Arc::new(rep.values));
                        repaired += 1;
                    }
                }
                RepairPlan::Recompute { .. } => {}
            }
        }
        // The sweep removes every old-epoch entry — including the
        // originals of repaired ones (their carried copy lives at the new
        // epoch) — so the dropped-without-repair count is the difference.
        let swept = cache.invalidate_before(&self.name, self.epoch);
        Ok(UpdateApplied {
            epoch: self.epoch,
            bumped: true,
            applied,
            repaired,
            invalidated: swept - repaired,
        })
    }

    /// The dynamic layer's lifetime counters (applied/no-op batches,
    /// inserted/removed edges, compactions).
    pub fn dynamic_stats(&self) -> DynStats {
        self.dynamic.stats()
    }

    /// Answers one flush of queries against this graph: serves what the
    /// cache already holds, deduplicates the rest by query identity, runs
    /// the unique remainder as **one** `Session::run_batch`, and memoizes
    /// the new results at the current epoch.
    ///
    /// Shared by the live service thread and the virtual-time replay
    /// client, so both paths have identical cache/dedup/batch semantics.
    pub fn serve_batch(
        &mut self,
        cache: &mut ResultCache,
        queries: &[Query],
        options: &RunOptions,
    ) -> Result<BatchServed, CoreError> {
        // Slot per input; fill from cache first.
        let mut slots: Vec<Option<(Arc<Vec<u32>>, bool)>> = vec![None; queries.len()];
        // Unique misses, in first-appearance order.
        let mut unique: Vec<Query> = Vec::new();
        let mut unique_index: HashMap<String, usize> = HashMap::new();
        // Which unique run feeds each un-cached slot.
        let mut feeds: Vec<(usize, usize)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let key = q.cache_key();
            if let Some(values) = cache.get(&self.name, self.epoch, &key) {
                slots[i] = Some((values, true));
                continue;
            }
            let u = *unique_index.entry(key).or_insert_with(|| {
                unique.push(*q);
                unique.len() - 1
            });
            feeds.push((i, u));
        }
        let mut makespan_ns = 0.0;
        if !unique.is_empty() {
            let batch = self.session.run_batch(&unique, options)?;
            makespan_ns = batch.makespan_ns;
            let fresh: Vec<Arc<Vec<u32>>> = batch
                .queries
                .into_iter()
                .map(|qr| Arc::new(qr.report.values))
                .collect();
            for (q, values) in unique.iter().zip(&fresh) {
                cache.insert(&self.name, self.epoch, &q.cache_key(), Arc::clone(values));
            }
            for (slot, u) in feeds {
                slots[slot] = Some((Arc::clone(&fresh[u]), false));
            }
        }
        Ok(BatchServed {
            results: slots
                .into_iter()
                .map(|s| s.expect("every query slot filled"))
                .collect(),
            epoch: self.epoch,
            makespan_ns,
            executed: unique.len(),
        })
    }

    /// Runs one query straight through the session, bypassing the cache —
    /// the reference path hit-verification compares against.
    pub fn run_uncached(
        &mut self,
        query: Query,
        options: &RunOptions,
    ) -> Result<Vec<u32>, CoreError> {
        Ok(self.session.run(query, options)?.values)
    }
}

/// Inverts [`Query::cache_key`] for the repairable algorithms. PageRank
/// keys return `None` — rank vectors have no monotone repair, so their
/// stale entries are always dropped.
fn query_from_cache_key(key: &str) -> Option<Query> {
    if key == "cc" {
        return Some(Query::Cc);
    }
    if let Some(src) = key.strip_prefix("bfs:") {
        return src.parse().ok().map(|src| Query::Bfs { src });
    }
    if let Some(src) = key.strip_prefix("sssp:") {
        return src.parse().ok().map(|src| Query::Sssp { src });
    }
    None
}

/// Service tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: query requests beyond this many pending are shed
    /// with a typed [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Flush a micro-batch as soon as it holds this many queries.
    pub max_batch: usize,
    /// Flush a smaller micro-batch once its oldest query has waited this
    /// long.
    pub max_wait: Duration,
    /// Device every hosted graph is uploaded to.
    pub device: DeviceConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            device: DeviceConfig::tesla_c2070(),
        }
    }
}

/// Lifetime counters shared across the server's threads.
#[derive(Default)]
struct StatsCells {
    received: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    epoch_bumps: AtomicU64,
    updates: AtomicU64,
    repaired: AtomicU64,
    cache_evicted: AtomicU64,
    errors: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            received: self.received.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            epoch_bumps: self.epoch_bumps.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            repaired: self.repaired.load(Ordering::Relaxed),
            cache_evicted: self.cache_evicted.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// A write handle to one client connection (readers and the service
/// thread both answer through it).
type Reply = Arc<Mutex<TcpStream>>;

/// One unit of work queued for the service thread.
enum Work {
    Query {
        id: u64,
        graph: String,
        query: Query,
        reply: Reply,
    },
    Bump {
        id: u64,
        graph: String,
        reply: Reply,
    },
    Update {
        id: u64,
        graph: String,
        updates: UpdateBatch,
        reply: Reply,
    },
    Stats {
        id: u64,
        reply: Reply,
    },
    Shutdown,
}

/// The running service: a TCP listener plus its acceptor and service
/// threads. Dropping without [`Server::shutdown`] leaks the threads, so
/// call it.
pub struct Server {
    addr: SocketAddr,
    tx: SyncSender<Work>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    service: Option<JoinHandle<()>>,
    stats: Arc<StatsCells>,
}

impl Server {
    /// Binds `127.0.0.1:0` (a fresh ephemeral port) and starts serving
    /// the given graphs.
    pub fn start(hosts: Vec<Hosted>, config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        // +1 so control messages (blocking sends) always have headroom
        // even when queries hold `queue_capacity` slots.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Work>(config.queue_capacity + 1);
        let stopping = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsCells::default());

        let service = {
            let stats = Arc::clone(&stats);
            let config = config.clone();
            std::thread::spawn(move || service_loop(hosts, rx, &config, &stats))
        };
        let acceptor = {
            let tx = tx.clone();
            let stopping = Arc::clone(&stopping);
            let stats = Arc::clone(&stats);
            let capacity = config.queue_capacity;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let tx = tx.clone();
                    let stats = Arc::clone(&stats);
                    std::thread::spawn(move || reader_loop(stream, &tx, capacity, &stats));
                }
            })
        };
        Ok(Server {
            addr,
            tx,
            stopping,
            acceptor: Some(acceptor),
            service: Some(service),
            stats,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time read of the lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Stops accepting, drains the service thread, joins everything, and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.stopping.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.tx.send(Work::Shutdown);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.service.take() {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

/// Per-connection reader: decode frames, shed or enqueue.
fn reader_loop(stream: TcpStream, tx: &SyncSender<Work>, capacity: usize, stats: &StatsCells) {
    let reply: Reply = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut read = stream;
    loop {
        let payload = match read_frame(&mut read) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        stats.received.fetch_add(1, Ordering::Relaxed);
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    id: 0,
                    detail: e.to_string(),
                };
                if send_response(&reply, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let work = match request {
            Request::Query { id, graph, query } => {
                let work = Work::Query {
                    id,
                    graph,
                    query,
                    reply: Arc::clone(&reply),
                };
                // Admission control: a full queue answers *now* with a
                // typed shed, it never blocks the reader.
                match tx.try_send(work) {
                    Ok(()) => continue,
                    Err(TrySendError::Full(_)) => {
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::Overloaded {
                            id,
                            queue_depth: capacity,
                            capacity,
                        };
                        if send_response(&reply, &resp).is_err() {
                            return;
                        }
                        continue;
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Request::BumpEpoch { id, graph } => Work::Bump {
                id,
                graph,
                reply: Arc::clone(&reply),
            },
            Request::Update { id, graph, updates } => Work::Update {
                id,
                graph,
                updates,
                reply: Arc::clone(&reply),
            },
            Request::Stats { id } => Work::Stats {
                id,
                reply: Arc::clone(&reply),
            },
        };
        // Control traffic may block on a full queue; it is never shed.
        if tx.send(work).is_err() {
            return;
        }
    }
}

fn send_response(reply: &Reply, resp: &Response) -> std::io::Result<()> {
    let payload = resp.to_json().render().into_bytes();
    let mut stream = reply.lock().unwrap_or_else(|p| p.into_inner());
    write_frame(&mut *stream, &payload)?;
    stream.flush()
}

/// The service thread: micro-batch queries, process control work inline.
fn service_loop(
    hosts: Vec<Hosted>,
    rx: Receiver<Work>,
    config: &ServeConfig,
    stats: &StatsCells,
) {
    let mut hosts: HashMap<String, Hosted> =
        hosts.into_iter().map(|h| (h.name.clone(), h)).collect();
    let mut cache = ResultCache::new();
    loop {
        let first = match rx.recv() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut batch = Vec::new();
        let mut stop = false;
        match first {
            Work::Shutdown => return,
            Work::Query { id, graph, query, reply } => batch.push((id, graph, query, reply)),
            control => {
                handle_control(control, &mut hosts, &mut cache, stats);
                continue;
            }
        }
        // Collect the micro-batch: flush on size or on the oldest
        // query's deadline, whichever comes first.
        let deadline = Instant::now() + config.max_wait;
        while batch.len() < config.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(Work::Query { id, graph, query, reply }) => {
                    batch.push((id, graph, query, reply));
                }
                Ok(Work::Shutdown) => {
                    stop = true;
                    break;
                }
                Ok(control) => handle_control(control, &mut hosts, &mut cache, stats),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    stop = true;
                    break;
                }
            }
        }
        flush_batch(batch, &mut hosts, &mut cache, stats);
        if stop {
            return;
        }
    }
}

fn handle_control(
    work: Work,
    hosts: &mut HashMap<String, Hosted>,
    cache: &mut ResultCache,
    stats: &StatsCells,
) {
    match work {
        Work::Bump { id, graph, reply } => {
            let resp = match hosts.get_mut(&graph) {
                Some(h) => {
                    let invalidated = h.bump_epoch(cache);
                    stats.epoch_bumps.fetch_add(1, Ordering::Relaxed);
                    Response::EpochBumped {
                        id,
                        epoch: h.epoch,
                        invalidated,
                    }
                }
                None => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error {
                        id,
                        detail: ServeError::UnknownGraph(graph).to_string(),
                    }
                }
            };
            let _ = send_response(&reply, &resp);
        }
        Work::Update {
            id,
            graph,
            updates,
            reply,
        } => {
            stats.updates.fetch_add(1, Ordering::Relaxed);
            let resp = match hosts.get_mut(&graph) {
                Some(h) => match h.apply_update(&updates, cache, &RunOptions::default()) {
                    Ok(a) => {
                        if a.bumped {
                            stats.epoch_bumps.fetch_add(1, Ordering::Relaxed);
                        }
                        stats.repaired.fetch_add(a.repaired as u64, Ordering::Relaxed);
                        Response::Updated {
                            id,
                            epoch: a.epoch,
                            bumped: a.bumped,
                            applied: a.applied,
                            repaired: a.repaired,
                            invalidated: a.invalidated,
                        }
                    }
                    Err(e) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            id,
                            detail: e.to_string(),
                        }
                    }
                },
                None => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error {
                        id,
                        detail: ServeError::UnknownGraph(graph).to_string(),
                    }
                }
            };
            stats.cache_evicted.store(cache.evicted, Ordering::Relaxed);
            let _ = send_response(&reply, &resp);
        }
        Work::Stats { id, reply } => {
            let resp = Response::Stats {
                id,
                stats: stats.snapshot(),
            };
            let _ = send_response(&reply, &resp);
        }
        Work::Query { .. } | Work::Shutdown => unreachable!("not control work"),
    }
}

/// Executes one collected micro-batch: group by graph, serve each group
/// through the shared [`Hosted::serve_batch`] path, answer every client.
fn flush_batch(
    batch: Vec<(u64, String, Query, Reply)>,
    hosts: &mut HashMap<String, Hosted>,
    cache: &mut ResultCache,
    stats: &StatsCells,
) {
    if batch.is_empty() {
        return;
    }
    let mut by_graph: HashMap<String, Vec<(u64, Query, Reply)>> = HashMap::new();
    for (id, graph, query, reply) in batch {
        by_graph
            .entry(graph)
            .or_default()
            .push((id, query, reply));
    }
    for (graph, items) in by_graph {
        let Some(host) = hosts.get_mut(&graph) else {
            for (id, _, reply) in items {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    id,
                    detail: ServeError::UnknownGraph(graph.clone()).to_string(),
                };
                let _ = send_response(&reply, &resp);
            }
            continue;
        };
        let queries: Vec<Query> = items.iter().map(|(_, q, _)| *q).collect();
        match host.serve_batch(cache, &queries, &RunOptions::default()) {
            Ok(served) => {
                if served.executed > 0 {
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                }
                for ((id, _, reply), (values, cached)) in items.into_iter().zip(served.results)
                {
                    stats.served.fetch_add(1, Ordering::Relaxed);
                    if cached {
                        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    let resp = Response::Result {
                        id,
                        epoch: served.epoch,
                        cached,
                        values: (*values).clone(),
                    };
                    let _ = send_response(&reply, &resp);
                }
            }
            Err(e) => {
                // The whole flush failed validation (run_batch fails fast
                // before executing anything) — answer every member.
                let detail = e.to_string();
                for (id, _, reply) in items {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error {
                        id,
                        detail: detail.clone(),
                    };
                    let _ = send_response(&reply, &resp);
                }
            }
        }
    }
    stats.cache_evicted.store(cache.evicted, Ordering::Relaxed);
}

/// A small synchronous client: one connection, correlation ids handled
/// for you.
pub struct ServeClient {
    stream: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a running [`Server`].
    pub fn connect(addr: SocketAddr) -> Result<ServeClient, ServeError> {
        Ok(ServeClient {
            stream: TcpStream::connect(addr)?,
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let payload = request.to_json().render().into_bytes();
        write_frame(&mut self.stream, &payload)?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".into()))?;
        Response::decode(&frame)
    }

    /// Runs `query` against `graph` on the server.
    pub fn query(&mut self, graph: &str, query: Query) -> Result<Response, ServeError> {
        let id = self.fresh_id();
        self.request(&Request::Query {
            id,
            graph: graph.to_string(),
            query,
        })
    }

    /// Bumps `graph`'s epoch on the server.
    pub fn bump_epoch(&mut self, graph: &str) -> Result<Response, ServeError> {
        let id = self.fresh_id();
        self.request(&Request::BumpEpoch {
            id,
            graph: graph.to_string(),
        })
    }

    /// Applies a batch of edge updates to `graph` on the server.
    pub fn update(
        &mut self,
        graph: &str,
        updates: UpdateBatch,
    ) -> Result<Response, ServeError> {
        let id = self.fresh_id();
        self.request(&Request::Update {
            id,
            graph: graph.to_string(),
            updates,
        })
    }

    /// Reads the server's lifetime counters.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        let id = self.fresh_id();
        match self.request(&Request::Stats { id })? {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(ServeError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::{Dataset, Scale};

    fn graph(seed: u64) -> Arc<CsrGraph> {
        Arc::new(Dataset::Amazon.generate_weighted(Scale::Tiny, seed, 64))
    }

    fn hosts(device: &DeviceConfig) -> Vec<Hosted> {
        vec![
            Hosted::new("a", graph(1), device.clone()).expect("host a"),
            Hosted::new("b", graph(2), device.clone()).expect("host b"),
        ]
    }

    #[test]
    fn served_values_match_direct_session_runs() {
        let config = ServeConfig::default();
        let server = Server::start(hosts(&config.device), config.clone()).expect("start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");

        let g = graph(1);
        let mut reference = Session::with_device(&g, config.device.clone()).expect("session");
        for query in [
            Query::Bfs { src: 3 },
            Query::Sssp { src: 3 },
            Query::Cc,
            Query::pagerank(),
        ] {
            let expect = reference
                .run(query, &RunOptions::default())
                .expect("direct run")
                .values;
            match client.query("a", query).expect("serve") {
                Response::Result { values, .. } => {
                    assert_eq!(values, expect, "served {query:?} differs from direct run");
                }
                other => panic!("expected a result, got {other:?}"),
            }
        }
        // Repeat one query: now a cache hit, same values.
        match client.query("a", Query::Bfs { src: 3 }).expect("serve") {
            Response::Result { cached, values, .. } => {
                assert!(cached, "repeat of an identical query must hit the cache");
                assert_eq!(
                    values,
                    reference
                        .run(Query::Bfs { src: 3 }, &RunOptions::default())
                        .expect("rerun")
                        .values
                );
            }
            other => panic!("expected a result, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.served, 5);
        assert!(stats.cache_hits >= 1);
    }

    #[test]
    fn unknown_graphs_and_invalid_queries_are_typed_errors() {
        let config = ServeConfig::default();
        let server = Server::start(hosts(&config.device), config).expect("start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        match client.query("nope", Query::Cc).expect("roundtrip") {
            Response::Error { detail, .. } => assert!(detail.contains("unknown graph")),
            other => panic!("expected an error, got {other:?}"),
        }
        // Source out of range: rejected by validation, connection stays up.
        match client
            .query("a", Query::Bfs { src: 1_000_000 })
            .expect("roundtrip")
        {
            Response::Error { detail, .. } => {
                assert!(detail.contains("out of range") || detail.contains("invalid"), "{detail}");
            }
            other => panic!("expected an error, got {other:?}"),
        }
        // And the server still answers good queries afterwards.
        assert!(matches!(
            client.query("a", Query::Cc).expect("roundtrip"),
            Response::Result { .. }
        ));
        server.shutdown();
    }

    #[test]
    fn epoch_bumps_are_acknowledged_and_invalidate_server_side_entries() {
        let config = ServeConfig::default();
        let server = Server::start(hosts(&config.device), config).expect("start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        // Warm the cache on graph a.
        client.query("a", Query::Cc).expect("warm");
        match client.bump_epoch("a").expect("bump") {
            Response::EpochBumped {
                epoch, invalidated, ..
            } => {
                assert_eq!(epoch, 1);
                assert_eq!(invalidated, 1, "exactly the warmed entry is stranded");
            }
            other => panic!("expected an epoch ack, got {other:?}"),
        }
        // Same query again: recomputed (miss), served at the new epoch.
        match client.query("a", Query::Cc).expect("requery") {
            Response::Result { epoch, cached, .. } => {
                assert_eq!(epoch, 1);
                assert!(!cached, "stale entry must not be served after a bump");
            }
            other => panic!("expected a result, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.epoch_bumps, 1);
    }

    #[test]
    fn live_updates_repair_the_cache_and_serve_the_updated_graph() {
        let config = ServeConfig::default();
        let server = Server::start(hosts(&config.device), config.clone()).expect("start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        // Warm the cache: two repairable entries plus a PageRank entry
        // (which has no repair path and must be dropped by the update).
        let bfs = Query::Bfs { src: 3 };
        client.query("a", bfs).expect("warm bfs");
        client.query("a", Query::Cc).expect("warm cc");
        client.query("a", Query::pagerank()).expect("warm pagerank");
        // One inserted edge: an effective batch.
        let mut batch = UpdateBatch::new();
        batch.insert(3, 70, 1);
        match client.update("a", batch).expect("update") {
            Response::Updated {
                epoch,
                bumped,
                applied,
                repaired,
                invalidated,
                ..
            } => {
                assert!(bumped, "a real insert must bump the epoch");
                assert_eq!(epoch, 1);
                assert_eq!(applied, 1);
                // Every warmed entry was settled one way or the other;
                // the PageRank entry is always in the dropped set.
                assert_eq!(repaired + invalidated, 3);
                assert!(invalidated >= 1, "pagerank entry must be dropped");
            }
            other => panic!("expected an update ack, got {other:?}"),
        }
        // Served values now match a from-scratch session on the updated
        // topology — whether the cache repaired them or they recompute.
        let updated = graph(1).rebuilt_with(&[(3, 70, 1)], &[]).expect("rebuild");
        let mut reference =
            Session::with_device(&updated, config.device.clone()).expect("session");
        for query in [bfs, Query::Cc] {
            let expect = reference
                .run(query, &RunOptions::default())
                .expect("direct run")
                .values;
            match client.query("a", query).expect("requery") {
                Response::Result { epoch, values, .. } => {
                    assert_eq!(epoch, 1);
                    assert_eq!(values, expect, "served {query:?} diverges after update");
                }
                other => panic!("expected a result, got {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.epoch_bumps, 1);
    }

    #[test]
    fn empty_update_batch_is_a_typed_noop_over_the_wire() {
        let config = ServeConfig::default();
        let server = Server::start(hosts(&config.device), config).expect("start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        client.query("a", Query::Cc).expect("warm");
        match client.update("a", UpdateBatch::new()).expect("noop") {
            Response::Updated {
                epoch,
                bumped,
                applied,
                repaired,
                invalidated,
                ..
            } => {
                assert_eq!(
                    (epoch, bumped, applied, repaired, invalidated),
                    (0, false, 0, 0, 0),
                    "an empty batch must touch nothing"
                );
            }
            other => panic!("expected an update ack, got {other:?}"),
        }
        // The warmed entry still serves as a hit at the untouched epoch.
        match client.query("a", Query::Cc).expect("requery") {
            Response::Result { epoch, cached, .. } => {
                assert_eq!(epoch, 0);
                assert!(cached, "no-op update must not invalidate the cache");
            }
            other => panic!("expected a result, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.epoch_bumps, 0, "no-op batches never bump");
    }

    #[test]
    fn overload_is_shed_with_a_typed_response_not_dropped() {
        // Tiny queue, singleton batches: each flush runs a full PageRank
        // while the reader floods the queue far faster than flushes
        // drain it.
        let config = ServeConfig {
            queue_capacity: 2,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        };
        let server = Server::start(hosts(&config.device), config).expect("start");
        let mut client = ServeClient::connect(server.addr()).expect("connect");

        // Fire a burst without reading responses; the bounded queue must
        // shed some and answer every single request either way. Distinct
        // epsilons keep every query a cache miss (full recompute each).
        let burst = 24u64;
        for i in 0..burst {
            let req = Request::Query {
                id: i,
                graph: "a".to_string(),
                query: Query::PageRank {
                    config: agg_core::PageRankConfig {
                        damping: 0.85,
                        epsilon: 1e-4 + i as f32 * 1e-6,
                    },
                },
            };
            let payload = req.to_json().render().into_bytes();
            write_frame(&mut client.stream, &payload).expect("write");
        }
        let mut answered = 0;
        let mut shed = 0;
        for _ in 0..burst {
            let frame = read_frame(&mut client.stream)
                .expect("read")
                .expect("response per request");
            match Response::decode(&frame).expect("decode") {
                Response::Result { .. } => answered += 1,
                Response::Overloaded { capacity, .. } => {
                    assert_eq!(capacity, 2);
                    shed += 1;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(answered + shed, burst);
        assert!(shed > 0, "a 24-deep burst into a 2-slot queue must shed");
        assert!(answered > 0, "admitted queries are still answered");
        let stats = server.shutdown();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.served, answered);
    }
}
