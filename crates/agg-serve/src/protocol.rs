//! The framed wire protocol: length-prefixed JSON with typed
//! request/response values.
//!
//! A frame is a 4-byte **big-endian** payload length followed by that
//! many bytes of UTF-8 JSON. Frames are independent — a connection is a
//! sequence of frames in each direction, and every request carries a
//! caller-chosen `id` echoed on its response, so clients may pipeline.
//! The JSON layer is the workspace's zero-dependency
//! [`agg_gpu_sim::Json`] module (render on send, parse on
//! receive); the frame length is capped at [`MAX_FRAME_LEN`] so a
//! corrupt prefix cannot trigger an absurd allocation.
//!
//! Request documents (`"op"` selects the variant):
//!
//! ```json
//! {"op":"query","id":7,"graph":"amazon","query":{"algo":"bfs","src":4}}
//! {"op":"query","id":8,"graph":"web","query":{"algo":"pagerank","damping":0.85,"epsilon":0.0001}}
//! {"op":"update","id":9,"graph":"amazon","updates":[{"op":"insert","src":3,"dst":9,"w":2},{"op":"delete","src":0,"dst":4}]}
//! {"op":"bump_epoch","id":10,"graph":"amazon"}
//! {"op":"stats","id":11}
//! ```
//!
//! Response documents (`"status"` selects the variant): `"ok"` carries
//! the epoch the result was computed at, whether it was served from the
//! cache, and the value vector; `"shed"` is the typed admission-control
//! overload answer; `"error"` carries the engine/protocol rejection;
//! `"epoch"` acknowledges a bump with the new epoch and the number of
//! cache entries it stranded; `"updated"` acknowledges a dynamic update
//! batch with the new epoch and what happened to the stale cache
//! entries; `"stats"` carries a [`ServeStats`].

use crate::ServeError;
use agg_core::{PageRankConfig, Query};
use agg_dynamic::{EdgeUpdate, UpdateBatch};
use agg_gpu_sim::Json;
use std::io::{Read, Write};

/// Upper bound on a frame payload, in bytes (64 MiB). Large enough for a
/// multi-million-node value vector, small enough that a corrupt length
/// prefix fails fast instead of attempting a huge allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between frames).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) one typed query against a hosted graph.
    Query {
        /// Caller-chosen correlation id, echoed on the response.
        id: u64,
        /// Hosted graph name.
        graph: String,
        /// The typed query.
        query: Query,
    },
    /// Apply a batch of edge inserts/deletes to a hosted graph. The
    /// service applies the batch between micro-batch flushes, bumps the
    /// graph's epoch (unless the batch nets to nothing), and repairs or
    /// strands exactly the stale cache entries.
    Update {
        /// Caller-chosen correlation id.
        id: u64,
        /// Hosted graph name.
        graph: String,
        /// The edge updates, in application order.
        updates: UpdateBatch,
    },
    /// Bump a hosted graph's epoch without mutating it — the blunt
    /// invalidation hook. Strands every cache entry of older epochs for
    /// that graph.
    BumpEpoch {
        /// Caller-chosen correlation id.
        id: u64,
        /// Hosted graph name.
        graph: String,
    },
    /// Read the server's lifetime counters.
    Stats {
        /// Caller-chosen correlation id.
        id: u64,
    },
}

impl Request {
    /// The correlation id this request carries.
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Update { id, .. }
            | Request::BumpEpoch { id, .. }
            | Request::Stats { id } => *id,
        }
    }

    /// Encodes this request as a JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Query { id, graph, query } => Json::obj([
                ("op", "query".into()),
                ("id", (*id).into()),
                ("graph", graph.clone().into()),
                ("query", query.to_json()),
            ]),
            Request::Update { id, graph, updates } => Json::obj([
                ("op", "update".into()),
                ("id", (*id).into()),
                ("graph", graph.clone().into()),
                (
                    "updates",
                    Json::arr(updates.updates.iter().map(update_to_json)),
                ),
            ]),
            Request::BumpEpoch { id, graph } => Json::obj([
                ("op", "bump_epoch".into()),
                ("id", (*id).into()),
                ("graph", graph.clone().into()),
            ]),
            Request::Stats { id } => {
                Json::obj([("op", "stats".into()), ("id", (*id).into())])
            }
        }
    }

    /// Decodes a request from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ServeError> {
        let doc = parse_doc(payload)?;
        let id = field_u64(&doc, "id")?;
        match field_str(&doc, "op")? {
            "query" => Ok(Request::Query {
                id,
                graph: field_str(&doc, "graph")?.to_string(),
                query: query_from_json(
                    doc.get("query")
                        .ok_or_else(|| missing("query"))?,
                )?,
            }),
            "update" => {
                let items = doc
                    .get("updates")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| missing("updates"))?;
                let updates = items
                    .iter()
                    .map(update_from_json)
                    .collect::<Result<Vec<EdgeUpdate>, ServeError>>()?;
                Ok(Request::Update {
                    id,
                    graph: field_str(&doc, "graph")?.to_string(),
                    updates: UpdateBatch::from_updates(updates),
                })
            }
            "bump_epoch" => Ok(Request::BumpEpoch {
                id,
                graph: field_str(&doc, "graph")?.to_string(),
            }),
            "stats" => Ok(Request::Stats { id }),
            other => Err(ServeError::Protocol(format!("unknown op '{other}'"))),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query's result values.
    Result {
        /// Echo of the request id.
        id: u64,
        /// The graph epoch the result was computed at.
        epoch: u64,
        /// True when the values came from the result cache.
        cached: bool,
        /// Final per-node values (levels, distances, labels, or f32 rank
        /// bit patterns — exactly [`agg_core::RunReport::values`]).
        values: Vec<u32>,
    },
    /// Typed admission-control shed: the bounded queue was full. The
    /// request was **not** executed; the client may retry later.
    Overloaded {
        /// Echo of the request id.
        id: u64,
        /// Pending queries when the request was refused.
        queue_depth: usize,
        /// The admission bound.
        capacity: usize,
    },
    /// The request was rejected (malformed query, unknown graph, engine
    /// error).
    Error {
        /// Echo of the request id.
        id: u64,
        /// What went wrong.
        detail: String,
    },
    /// Acknowledges a [`Request::BumpEpoch`].
    EpochBumped {
        /// Echo of the request id.
        id: u64,
        /// The graph's new (monotonic) epoch.
        epoch: u64,
        /// Cache entries stranded by the bump.
        invalidated: usize,
    },
    /// Acknowledges a [`Request::Update`].
    Updated {
        /// Echo of the request id.
        id: u64,
        /// The graph's epoch after the batch (unchanged for a no-op).
        epoch: u64,
        /// True when the batch had a net effect and bumped the epoch. A
        /// no-op batch (empty, or inserts cancelled by deletes) leaves
        /// the graph, the epoch, and the cache untouched.
        bumped: bool,
        /// Updates in the batch as received (before net-effect folding).
        applied: usize,
        /// Stale cache entries carried to the new epoch — either proven
        /// unchanged or warm-repaired on the engine.
        repaired: usize,
        /// Stale cache entries dropped (recompute was the better plan).
        invalidated: usize,
    },
    /// Lifetime counters.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// The counters.
        stats: ServeStats,
    },
}

impl Response {
    /// The correlation id this response echoes.
    pub fn id(&self) -> u64 {
        match self {
            Response::Result { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. }
            | Response::EpochBumped { id, .. }
            | Response::Updated { id, .. }
            | Response::Stats { id, .. } => *id,
        }
    }

    /// Encodes this response as a JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Result {
                id,
                epoch,
                cached,
                values,
            } => Json::obj([
                ("status", "ok".into()),
                ("id", (*id).into()),
                ("epoch", (*epoch).into()),
                ("cached", (*cached).into()),
                ("values", Json::arr(values.iter().map(|&v| Json::from(v)))),
            ]),
            Response::Overloaded {
                id,
                queue_depth,
                capacity,
            } => Json::obj([
                ("status", "shed".into()),
                ("id", (*id).into()),
                ("queue_depth", (*queue_depth).into()),
                ("capacity", (*capacity).into()),
            ]),
            Response::Error { id, detail } => Json::obj([
                ("status", "error".into()),
                ("id", (*id).into()),
                ("detail", detail.clone().into()),
            ]),
            Response::EpochBumped {
                id,
                epoch,
                invalidated,
            } => Json::obj([
                ("status", "epoch".into()),
                ("id", (*id).into()),
                ("epoch", (*epoch).into()),
                ("invalidated", (*invalidated).into()),
            ]),
            Response::Updated {
                id,
                epoch,
                bumped,
                applied,
                repaired,
                invalidated,
            } => Json::obj([
                ("status", "updated".into()),
                ("id", (*id).into()),
                ("epoch", (*epoch).into()),
                ("bumped", (*bumped).into()),
                ("applied", (*applied).into()),
                ("repaired", (*repaired).into()),
                ("invalidated", (*invalidated).into()),
            ]),
            Response::Stats { id, stats } => Json::obj([
                ("status", "stats".into()),
                ("id", (*id).into()),
                ("stats", stats.to_json()),
            ]),
        }
    }

    /// Decodes a response from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ServeError> {
        let doc = parse_doc(payload)?;
        let id = field_u64(&doc, "id")?;
        match field_str(&doc, "status")? {
            "ok" => {
                let values = doc
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| missing("values"))?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .ok_or_else(|| {
                                ServeError::Protocol("non-u32 entry in values".into())
                            })
                    })
                    .collect::<Result<Vec<u32>, ServeError>>()?;
                Ok(Response::Result {
                    id,
                    epoch: field_u64(&doc, "epoch")?,
                    cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
                    values,
                })
            }
            "shed" => Ok(Response::Overloaded {
                id,
                queue_depth: field_u64(&doc, "queue_depth")? as usize,
                capacity: field_u64(&doc, "capacity")? as usize,
            }),
            "error" => Ok(Response::Error {
                id,
                detail: field_str(&doc, "detail")?.to_string(),
            }),
            "epoch" => Ok(Response::EpochBumped {
                id,
                epoch: field_u64(&doc, "epoch")?,
                invalidated: field_u64(&doc, "invalidated")? as usize,
            }),
            "updated" => Ok(Response::Updated {
                id,
                epoch: field_u64(&doc, "epoch")?,
                bumped: doc.get("bumped").and_then(Json::as_bool).unwrap_or(false),
                applied: field_u64(&doc, "applied")? as usize,
                repaired: field_u64(&doc, "repaired")? as usize,
                invalidated: field_u64(&doc, "invalidated")? as usize,
            }),
            "stats" => Ok(Response::Stats {
                id,
                stats: ServeStats::from_json(
                    doc.get("stats").ok_or_else(|| missing("stats"))?,
                )?,
            }),
            other => Err(ServeError::Protocol(format!("unknown status '{other}'"))),
        }
    }
}

/// Lifetime service counters, reported over the wire and by
/// [`Server::shutdown`](crate::Server::shutdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests received (all ops).
    pub received: u64,
    /// Queries answered with values (cached or computed).
    pub served: u64,
    /// Queries refused by admission control.
    pub shed: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that had to run on the engine.
    pub cache_misses: u64,
    /// `Session::run_batch` calls issued by the micro-batcher.
    pub batches: u64,
    /// Epoch bumps applied (explicit bumps and effective update batches).
    pub epoch_bumps: u64,
    /// Update batches received (including no-ops).
    pub updates: u64,
    /// Stale cache entries repaired across epochs (unchanged-carry or
    /// warm engine repair) instead of being dropped.
    pub repaired: u64,
    /// Cache entries evicted by the result cache's byte budget.
    pub cache_evicted: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
}

impl ServeStats {
    /// These counters as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("received", self.received.into()),
            ("served", self.served.into()),
            ("shed", self.shed.into()),
            ("cache_hits", self.cache_hits.into()),
            ("cache_misses", self.cache_misses.into()),
            ("batches", self.batches.into()),
            ("epoch_bumps", self.epoch_bumps.into()),
            ("updates", self.updates.into()),
            ("repaired", self.repaired.into()),
            ("cache_evicted", self.cache_evicted.into()),
            ("errors", self.errors.into()),
        ])
    }

    /// Decodes counters from their JSON object.
    pub fn from_json(doc: &Json) -> Result<ServeStats, ServeError> {
        Ok(ServeStats {
            received: field_u64(doc, "received")?,
            served: field_u64(doc, "served")?,
            shed: field_u64(doc, "shed")?,
            cache_hits: field_u64(doc, "cache_hits")?,
            cache_misses: field_u64(doc, "cache_misses")?,
            batches: field_u64(doc, "batches")?,
            epoch_bumps: field_u64(doc, "epoch_bumps")?,
            updates: field_u64(doc, "updates")?,
            repaired: field_u64(doc, "repaired")?,
            cache_evicted: field_u64(doc, "cache_evicted")?,
            errors: field_u64(doc, "errors")?,
        })
    }
}

/// Encodes one edge update as its wire object.
fn update_to_json(u: &EdgeUpdate) -> Json {
    match u {
        EdgeUpdate::Insert { src, dst, weight } => Json::obj([
            ("op", "insert".into()),
            ("src", (*src).into()),
            ("dst", (*dst).into()),
            ("w", (*weight).into()),
        ]),
        EdgeUpdate::Delete { src, dst } => Json::obj([
            ("op", "delete".into()),
            ("src", (*src).into()),
            ("dst", (*dst).into()),
        ]),
    }
}

/// Decodes one edge update from its wire object. A missing `w` on an
/// insert defaults to weight 1 (the unweighted-graph convention).
fn update_from_json(doc: &Json) -> Result<EdgeUpdate, ServeError> {
    let src = field_u64(doc, "src")? as u32;
    let dst = field_u64(doc, "dst")? as u32;
    match field_str(doc, "op")? {
        "insert" => Ok(EdgeUpdate::Insert {
            src,
            dst,
            weight: doc.get("w").and_then(Json::as_u64).unwrap_or(1) as u32,
        }),
        "delete" => Ok(EdgeUpdate::Delete { src, dst }),
        other => Err(ServeError::Protocol(format!(
            "unknown update op '{other}'"
        ))),
    }
}

/// Decodes the typed query object (`{"algo": ..., ...}` — the same shape
/// [`Query::to_json`] emits for telemetry).
pub fn query_from_json(doc: &Json) -> Result<Query, ServeError> {
    let algo = field_str(doc, "algo")?;
    match algo {
        "bfs" => Ok(Query::Bfs {
            src: field_u64(doc, "src")? as u32,
        }),
        "sssp" => Ok(Query::Sssp {
            src: field_u64(doc, "src")? as u32,
        }),
        "cc" => Ok(Query::Cc),
        "pagerank" => {
            let damping = doc
                .get("damping")
                .and_then(Json::as_f64)
                .unwrap_or(0.85) as f32;
            let epsilon = doc
                .get("epsilon")
                .and_then(Json::as_f64)
                .unwrap_or(1e-4) as f32;
            Ok(Query::PageRank {
                config: PageRankConfig { damping, epsilon },
            })
        }
        other => Err(ServeError::Protocol(format!("unknown algo '{other}'"))),
    }
}

fn parse_doc(payload: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ServeError::Protocol("frame payload is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| ServeError::Protocol(e.to_string()))
}

fn missing(key: &str) -> ServeError {
    ServeError::Protocol(format!("missing field '{key}'"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, ServeError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::Protocol(format!("missing/non-integer field '{key}'")))
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ServeError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| missing(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.to_json().render().into_bytes();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.to_json().render().into_bytes();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        round_trip_request(Request::Query {
            id: 1,
            graph: "amazon".into(),
            query: Query::Bfs { src: 17 },
        });
        round_trip_request(Request::Query {
            id: 2,
            graph: "web".into(),
            query: Query::Sssp { src: 0 },
        });
        round_trip_request(Request::Query {
            id: 3,
            graph: "web".into(),
            query: Query::Cc,
        });
        round_trip_request(Request::BumpEpoch {
            id: 4,
            graph: "amazon".into(),
        });
        round_trip_request(Request::Stats { id: 5 });
        let mut updates = UpdateBatch::new();
        updates.insert(3, 9, 2).delete(0, 4).insert(7, 7, 1);
        round_trip_request(Request::Update {
            id: 6,
            graph: "amazon".into(),
            updates,
        });
        // An empty batch is legal on the wire; the server treats it as a
        // typed no-op.
        round_trip_request(Request::Update {
            id: 7,
            graph: "amazon".into(),
            updates: UpdateBatch::new(),
        });
    }

    #[test]
    fn insert_weight_defaults_to_one_on_the_wire() {
        let payload = br#"{"op":"update","id":1,"graph":"g","updates":[{"op":"insert","src":2,"dst":5}]}"#;
        match Request::decode(payload).unwrap() {
            Request::Update { updates, .. } => {
                assert_eq!(
                    updates.updates,
                    vec![EdgeUpdate::Insert {
                        src: 2,
                        dst: 5,
                        weight: 1
                    }]
                );
            }
            other => panic!("decoded to {other:?}"),
        }
        // An unknown update op is a typed protocol error.
        let bad = br#"{"op":"update","id":1,"graph":"g","updates":[{"op":"toggle","src":2,"dst":5}]}"#;
        assert!(matches!(
            Request::decode(bad),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn pagerank_params_survive_the_wire_bit_exactly() {
        // f32 -> f64 -> JSON decimal -> f64 -> f32 must be the identity
        // (f64 holds every f32 exactly, and the renderer prints the
        // shortest round-trippable decimal).
        let query = Query::PageRank {
            config: PageRankConfig {
                damping: 0.85,
                epsilon: 1.234_567_9e-5,
            },
        };
        let req = Request::Query {
            id: 9,
            graph: "g".into(),
            query,
        };
        let decoded = Request::decode(&req.to_json().render().into_bytes()).unwrap();
        match decoded {
            Request::Query {
                query: Query::PageRank { config },
                ..
            } => {
                assert_eq!(config.damping.to_bits(), 0.85f32.to_bits());
                assert_eq!(config.epsilon.to_bits(), 1.234_567_9e-5f32.to_bits());
            }
            other => panic!("decoded to {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_encoding() {
        round_trip_response(Response::Result {
            id: 1,
            epoch: 3,
            cached: true,
            values: vec![0, 1, u32::MAX, 7],
        });
        round_trip_response(Response::Overloaded {
            id: 2,
            queue_depth: 64,
            capacity: 64,
        });
        round_trip_response(Response::Error {
            id: 3,
            detail: "invalid query: source 99 out of range".into(),
        });
        round_trip_response(Response::EpochBumped {
            id: 4,
            epoch: 5,
            invalidated: 12,
        });
        round_trip_response(Response::Updated {
            id: 6,
            epoch: 9,
            bumped: true,
            applied: 5,
            repaired: 3,
            invalidated: 1,
        });
        round_trip_response(Response::Updated {
            id: 7,
            epoch: 9,
            bumped: false,
            applied: 0,
            repaired: 0,
            invalidated: 0,
        });
        round_trip_response(Response::Stats {
            id: 5,
            stats: ServeStats {
                received: 10,
                served: 8,
                shed: 1,
                cache_hits: 3,
                cache_misses: 5,
                batches: 2,
                epoch_bumps: 1,
                updates: 4,
                repaired: 2,
                cache_evicted: 6,
                errors: 1,
            },
        });
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"world!"[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        // Truncate the payload mid-frame: an error, not a clean EOF.
        let mut r = &buf[..buf.len() - 2];
        assert!(read_frame(&mut r).is_err());
        // A length prefix past the cap fails before allocating.
        let huge = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn malformed_payloads_are_typed_protocol_errors() {
        for bad in [
            &b"not json"[..],
            br#"{"op":"query","id":1}"#,
            br#"{"op":"warp","id":1}"#,
            br#"{"id":1}"#,
            br#"{"op":"query","id":1,"graph":"g","query":{"algo":"dfs"}}"#,
            b"\xff\xfe",
        ] {
            let err = Request::decode(bad).unwrap_err();
            assert!(
                matches!(err, ServeError::Protocol(_)),
                "expected Protocol error for {bad:?}, got {err}"
            );
        }
    }
}
