//! Deterministic open-loop arrival traces.
//!
//! A trace is what a load generator would send: a time-ordered sequence
//! of [`Arrival`]s, each a typed query against one of the hosted graphs,
//! a dynamic edge-update batch, or a bare epoch bump. Inter-arrival
//! times are drawn from an exponential distribution (inverse-CDF over
//! the seeded xoshiro stream), so the trace is a Poisson process at the
//! configured rate — **open loop**: arrival times never depend on how
//! fast the server answers, so a slow server builds queue depth instead
//! of quietly throttling its own offered load. Everything is derived
//! from [`TraceConfig::seed`], so the same config always produces
//! byte-identical traces — the foundation of the reproducible
//! `BENCH_serve.json` numbers and of the replay-twice determinism test.

use agg_core::{PageRankConfig, Query};
use agg_dynamic::{random_batch, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// What arrives: a query for a graph, a dynamic edge-update batch, or a
/// bare epoch bump (updates are what generated traces carry; the bump
/// remains for hand-built traces and the blunt invalidation path).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A typed query against the named hosted graph.
    Query {
        /// Hosted graph name.
        graph: String,
        /// The query.
        query: Query,
    },
    /// Apply a batch of edge updates to the named graph (the dynamic
    /// path: mutate, bump the epoch, repair or strand cached results).
    Update {
        /// Hosted graph name.
        graph: String,
        /// The edge updates, in application order.
        batch: UpdateBatch,
    },
    /// Bump the named graph's epoch without mutating it.
    BumpEpoch {
        /// Hosted graph name.
        graph: String,
    },
}

/// One trace entry: an event and its arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival time in virtual nanoseconds from trace start.
    pub at_ns: u64,
    /// What arrived.
    pub event: Event,
}

/// Parameters of a generated trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of query arrivals (epoch bumps are extra events).
    pub queries: usize,
    /// Offered load in queries per second of virtual time.
    pub rate_qps: f64,
    /// Seed for the arrival-time and query-mix streams.
    pub seed: u64,
    /// Hosted graph names to spread queries over (must be non-empty).
    pub graphs: Vec<String>,
    /// Traversal sources are drawn from `0..source_pool` — a small pool
    /// (relative to `queries`) creates repeats, which is what gives the
    /// cache something to do. Update endpoints are drawn from the same
    /// pool, so wherever the queries are valid the updates are too.
    pub source_pool: u32,
    /// Insert a dynamic edge-update batch after every `update_every`
    /// queries (0 = never) — the events that used to be bare epoch bumps.
    pub update_every: usize,
    /// Edge updates per generated batch.
    pub update_size: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            queries: 500,
            rate_qps: 2000.0,
            seed: 42,
            graphs: vec!["g".to_string()],
            source_pool: 8,
            update_every: 0,
            update_size: 4,
        }
    }
}

/// A generated trace: arrivals sorted by time.
#[derive(Debug, Clone)]
pub struct ArrivalTrace {
    /// The config that produced it.
    pub config: TraceConfig,
    /// Time-ordered arrivals.
    pub arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Generates the trace for `config` deterministically.
    ///
    /// The algorithm mix is fixed at roughly 40% BFS, 30% SSSP, 15% CC,
    /// 15% PageRank — traversals dominate (they are cheap and repetitive,
    /// the cache's bread and butter), with enough whole-graph analytics
    /// to exercise every kernel family. PageRank draws its ε from a tiny
    /// pool so parameter-keyed caching sees repeats too.
    pub fn generate(config: TraceConfig) -> ArrivalTrace {
        assert!(!config.graphs.is_empty(), "trace needs at least one graph");
        assert!(config.rate_qps > 0.0, "trace needs a positive rate");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mean_gap_ns = 1e9 / config.rate_qps;
        let mut arrivals = Vec::with_capacity(config.queries + config.queries / 16);
        let mut t_ns = 0.0f64;
        // Per-graph ledgers of inserted pairs, so generated deletes
        // target edges the trace itself added to that graph.
        let mut ledgers: HashMap<String, Vec<(u32, u32)>> = HashMap::new();
        for i in 0..config.queries {
            // Inverse-CDF exponential: gap = -ln(1-u) * mean, u in [0,1).
            let u: f64 = rng.gen();
            t_ns += -(1.0 - u).ln() * mean_gap_ns;
            let graph = config.graphs[rng.gen_range(0..config.graphs.len())].clone();
            let pick: f64 = rng.gen();
            let query = if pick < 0.40 {
                Query::Bfs {
                    src: rng.gen_range(0..config.source_pool.max(1)),
                }
            } else if pick < 0.70 {
                Query::Sssp {
                    src: rng.gen_range(0..config.source_pool.max(1)),
                }
            } else if pick < 0.85 {
                Query::Cc
            } else {
                let epsilons = [1e-4f32, 5e-4, 1e-3];
                Query::PageRank {
                    config: PageRankConfig {
                        damping: 0.85,
                        epsilon: epsilons[rng.gen_range(0..epsilons.len())],
                    },
                }
            };
            arrivals.push(Arrival {
                at_ns: t_ns as u64,
                event: Event::Query { graph, query },
            });
            if config.update_every > 0
                && (i + 1) % config.update_every == 0
                && i + 1 < config.queries
            {
                let target = config.graphs[rng.gen_range(0..config.graphs.len())].clone();
                let ledger = ledgers.entry(target.clone()).or_default();
                let batch = random_batch(
                    &mut rng,
                    config.source_pool.max(1),
                    config.update_size,
                    true,
                    ledger,
                );
                arrivals.push(Arrival {
                    at_ns: t_ns as u64 + 1,
                    event: Event::Update {
                        graph: target,
                        batch,
                    },
                });
            }
        }
        ArrivalTrace { config, arrivals }
    }

    /// Query arrivals only (excluding epoch bumps).
    pub fn query_count(&self) -> usize {
        self.arrivals
            .iter()
            .filter(|a| matches!(a.event, Event::Query { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TraceConfig {
        TraceConfig {
            queries: 200,
            rate_qps: 1000.0,
            seed: 7,
            graphs: vec!["a".into(), "b".into()],
            source_pool: 4,
            update_every: 50,
            update_size: 4,
        }
    }

    #[test]
    fn traces_are_deterministic_and_time_ordered() {
        let t1 = ArrivalTrace::generate(config());
        let t2 = ArrivalTrace::generate(config());
        assert_eq!(t1.arrivals, t2.arrivals);
        assert!(t1
            .arrivals
            .windows(2)
            .all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(t1.query_count(), 200);
        // 200 queries / update_every 50 with no trailing event = 3 updates
        assert_eq!(t1.arrivals.len() - t1.query_count(), 3);
    }

    #[test]
    fn generated_updates_are_valid_and_deletes_target_inserted_pairs() {
        use agg_dynamic::EdgeUpdate;
        let t = ArrivalTrace::generate(config());
        let mut inserted: std::collections::HashMap<String, std::collections::HashSet<(u32, u32)>> =
            std::collections::HashMap::new();
        let mut updates = 0usize;
        for a in &t.arrivals {
            if let Event::Update { graph, batch } = &a.event {
                updates += 1;
                assert_eq!(batch.len(), 4, "batches honor update_size");
                let seen = inserted.entry(graph.clone()).or_default();
                for u in &batch.updates {
                    let (src, dst) = u.endpoints();
                    assert!(src < 4 && dst < 4, "endpoints stay in the source pool");
                    match u {
                        EdgeUpdate::Insert { .. } => {
                            seen.insert((src, dst));
                        }
                        EdgeUpdate::Delete { .. } => {
                            assert!(
                                seen.contains(&(src, dst)),
                                "deletes only target trace-inserted pairs"
                            );
                        }
                    }
                }
            }
        }
        assert_eq!(updates, 3);
    }

    #[test]
    fn traces_mix_algorithms_graphs_and_repeat_sources() {
        let t = ArrivalTrace::generate(config());
        let mut bfs = 0;
        let mut sssp = 0;
        let mut cc = 0;
        let mut pr = 0;
        let mut graphs = std::collections::HashSet::new();
        let mut keys = std::collections::HashSet::new();
        for a in &t.arrivals {
            if let Event::Query { graph, query } = &a.event {
                graphs.insert(graph.clone());
                keys.insert(query.cache_key());
                match query {
                    Query::Bfs { .. } => bfs += 1,
                    Query::Sssp { .. } => sssp += 1,
                    Query::Cc => cc += 1,
                    Query::PageRank { .. } => pr += 1,
                }
            }
        }
        assert!(bfs > 0 && sssp > 0 && cc > 0 && pr > 0, "all four algorithms appear");
        assert_eq!(graphs.len(), 2, "both graphs receive traffic");
        // The source pool is tiny, so distinct query identities are far
        // fewer than arrivals — repeats exist for the cache to hit.
        assert!(keys.len() < t.query_count() / 2, "{} keys", keys.len());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = ArrivalTrace::generate(TraceConfig { seed: 1, ..config() });
        let b = ArrivalTrace::generate(TraceConfig { seed: 2, ..config() });
        assert_ne!(a.arrivals, b.arrivals);
    }

    #[test]
    fn mean_interarrival_tracks_the_configured_rate() {
        let t = ArrivalTrace::generate(TraceConfig {
            queries: 2000,
            update_every: 0,
            ..config()
        });
        let last = t.arrivals.last().expect("non-empty").at_ns as f64;
        let observed_qps = 2000.0 / (last / 1e9);
        // Poisson noise at n=2000 is ~2%; allow 15%.
        assert!(
            (observed_qps - 1000.0).abs() < 150.0,
            "observed {observed_qps:.0} qps"
        );
    }
}
