#![warn(missing_docs)]

//! The throughput-serving layer: a long-lived graph query service over
//! the adaptive runtime.
//!
//! The [`Session`](agg_core::Session) scheduler (DESIGN.md §5c) answers
//! one batch at a time; production traffic arrives continuously. This
//! crate turns an open-loop arrival stream into Sessions:
//!
//! ```text
//!   clients ──frames──▶ admission ──▶ micro-batcher ──▶ Session::run_batch
//!                (bounded queue,   (flush on batch      (one resident graph
//!                 typed shed)       size or deadline)    per hosted name)
//!                        │                                   │
//!                        └──────── epoch-keyed result cache ◀┘
//! ```
//!
//! - [`protocol`] — the framed wire format: 4-byte big-endian length
//!   prefix + a JSON document (the zero-dependency
//!   [`agg_gpu_sim::Json`] module, which both renders and parses),
//!   with typed [`Request`] / [`Response`] values on either side.
//! - [`cache`] — results memoized per `(graph, epoch, query identity)`
//!   using [`Query::cache_key`](agg_core::Query::cache_key), bounded by
//!   a byte budget with LRU eviction; a graph's monotonic epoch is the
//!   invalidation hook, and the dynamic-update path bumps it to strand
//!   (or repair) exactly that graph's older entries.
//! - [`server`] — the live threaded service: an acceptor + per-connection
//!   reader/writer threads around one service thread that owns every
//!   hosted graph (a batch-dynamic [`agg_dynamic::DynamicGraph`] behind
//!   an `Arc`-shared CSR snapshot), admission-controls with a bounded
//!   queue (overflow is answered with a typed [`Response::Overloaded`],
//!   never dropped), micro-batches misses into `Session::run_batch`, and
//!   applies [`Request::Update`] batches between flushes — bumping the
//!   epoch and settling stale cache entries per their
//!   [`agg_dynamic::RepairPlan`] (carry unchanged, warm-repair on the
//!   engine, or drop).
//! - [`trace`] — deterministic open-loop arrival traces: Poisson-process
//!   inter-arrivals (inverse-CDF exponential over the seeded xoshiro
//!   stream), a mixed algorithm distribution over several hosted graphs,
//!   and periodic dynamic edge-update batches.
//! - [`mod@replay`] — the replay client: drives a trace through the same
//!   admission → batch → Session → cache pipeline in **virtual time**
//!   (arrivals from the trace, service times from the simulator's modeled
//!   nanoseconds), producing a deterministic [`ReplayReport`] with
//!   p50/p99 latency, queries/sec, shed and hit/miss counts — the source
//!   of `BENCH_serve.json`.
//!
//! Results served from the cache are bit-identical to uncached
//! recomputation (enforced by `verify_hits` replays in tests and CI) —
//! the cache can change *when* an answer arrives, never *what* it is.

pub mod cache;
pub mod protocol;
pub mod replay;
pub mod server;
pub mod trace;

pub use cache::{ResultCache, DEFAULT_CACHE_BUDGET};
pub use protocol::{read_frame, write_frame, Request, Response, ServeStats};
pub use replay::{replay, ReplayConfig, ReplayOutcome, ReplayReport};
pub use server::{Hosted, ServeConfig, ServeClient, Server, UpdateApplied};
pub use trace::{Arrival, ArrivalTrace, Event, TraceConfig};

use std::fmt;

/// Service-layer errors.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or stream failed.
    Io(std::io::Error),
    /// A frame arrived but its payload was not a valid request/response.
    Protocol(String),
    /// The request named a graph this server does not host.
    UnknownGraph(String),
    /// The engine rejected a query or batch.
    Core(agg_core::CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ServeError::UnknownGraph(name) => write!(f, "unknown graph '{name}'"),
            ServeError::Core(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<agg_core::CoreError> for ServeError {
    fn from(e: agg_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}
