//! The replay client: drives an [`ArrivalTrace`] through the same
//! admission → micro-batch → Session → cache pipeline as the live
//! server, but in **virtual time**.
//!
//! Wall-clock latency of a simulator-backed service measures the host
//! machine, not the modeled GPU. The replay instead advances a virtual
//! clock: arrival times come from the (deterministic) trace, service
//! times are the simulator's modeled `makespan_ns` for each flushed
//! batch, and a cache hit costs a fixed [`ReplayConfig::cache_hit_ns`].
//! Every latency, percentile, and throughput number is therefore exactly
//! reproducible — same trace + same config = byte-identical
//! [`ReplayReport`] — which is what lets `BENCH_serve.json` carry a
//! meaningful history across PRs and lets CI assert on it.
//!
//! The discrete-event rules (mirroring the live server's policy):
//!
//! 1. Arrivals are processed in time order. A query that hits the cache
//!    (at its graph's current epoch) is answered at
//!    `arrival + cache_hit_ns` and never occupies a queue slot.
//! 2. A miss is admitted to the pending queue, or **shed** if
//!    [`ReplayConfig::queue_capacity`] queries are already pending.
//! 3. The server flushes the oldest `max_batch` pending queries when it
//!    is free and either the batch is full or the oldest pending query
//!    has waited [`ReplayConfig::max_wait_ns`].
//! 4. A flush groups its queries by graph and serves each group through
//!    [`Hosted::serve_batch`] (cache re-check, dedup, one
//!    `Session::run_batch`, memoize); the groups share one device, so
//!    the flush's modeled service time is the **sum** of group
//!    makespans, and every member completes when the whole flush does.

use crate::cache::ResultCache;
use crate::server::Hosted;
use crate::trace::{ArrivalTrace, Event};
use crate::ServeError;
use agg_core::{Query, RunOptions};
use agg_gpu_sim::Json;
use std::collections::HashMap;
use std::sync::Arc;

/// Replay policy knobs (the virtual-time mirror of
/// [`ServeConfig`](crate::ServeConfig)).
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Admission bound on pending (queued, un-flushed) queries.
    pub queue_capacity: usize,
    /// Flush as soon as this many queries are pending.
    pub max_batch: usize,
    /// Flush a partial batch once its oldest query has waited this long
    /// (virtual ns).
    pub max_wait_ns: u64,
    /// Modeled cost of answering straight from the cache, ns.
    pub cache_hit_ns: u64,
    /// Recompute every cache hit through the uncached path and compare
    /// bit-for-bit (the cached-vs-uncached identity check; slower, used
    /// by tests, CI, and the benchmark's verification leg).
    pub verify_hits: bool,
    /// `false` disables the cache entirely — every query is queued and
    /// executed. The uncached baseline the benchmark compares against.
    pub use_cache: bool,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            queue_capacity: 256,
            max_batch: 8,
            max_wait_ns: 200_000,
            cache_hit_ns: 20_000,
            verify_hits: false,
            use_cache: true,
        }
    }
}

/// How one traced query fared.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Index among the trace's query arrivals (bump events not counted).
    pub index: usize,
    /// Hosted graph the query targeted.
    pub graph: String,
    /// Query identity ([`Query::cache_key`]).
    pub key: String,
    /// Arrival time, virtual ns.
    pub at_ns: u64,
    /// `None` when the query was shed.
    pub latency_ns: Option<u64>,
    /// True when the answer came from the cache (either before admission
    /// or at flush time).
    pub cached: bool,
    /// The served values (`None` when shed). `Arc`-shared with the cache.
    pub values: Option<Arc<Vec<u32>>>,
}

/// Aggregate results of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Query arrivals in the trace.
    pub queries: usize,
    /// Queries answered with values.
    pub served: usize,
    /// Queries refused by admission control.
    pub shed: usize,
    /// Answers that came from the cache.
    pub cache_hits: usize,
    /// Answers that required execution (including dedup followers).
    pub cache_misses: usize,
    /// `Session::run_batch` calls issued.
    pub batches: usize,
    /// Epoch bumps applied (bare bump events plus effective update
    /// batches).
    pub epoch_bumps: usize,
    /// Cache entries stranded (dropped without repair) by bumps and
    /// updates.
    pub invalidated: usize,
    /// Dynamic update events applied (including no-op batches).
    pub updates: usize,
    /// Stale cache entries carried across update epochs — proven
    /// unchanged or warm-repaired — instead of being dropped.
    pub repaired: usize,
    /// Median served latency, virtual ns.
    pub p50_latency_ns: u64,
    /// 99th-percentile served latency, virtual ns.
    pub p99_latency_ns: u64,
    /// Mean served latency, virtual ns.
    pub mean_latency_ns: f64,
    /// End of the replay: when the last answer left, virtual ns.
    pub makespan_ns: u64,
    /// Served queries per second of virtual time.
    pub qps: f64,
    /// `false` if any verified cache hit differed from its uncached
    /// recomputation (only meaningful when `verify_hits` was on).
    pub cache_identity_ok: bool,
    /// Cache hits that were recomputed and compared.
    pub verified_hits: usize,
}

impl ReplayReport {
    /// This report as a JSON object (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("queries", self.queries.into()),
            ("served", self.served.into()),
            ("shed", self.shed.into()),
            ("cache_hits", self.cache_hits.into()),
            ("cache_misses", self.cache_misses.into()),
            ("batches", self.batches.into()),
            ("epoch_bumps", self.epoch_bumps.into()),
            ("invalidated", self.invalidated.into()),
            ("updates", self.updates.into()),
            ("repaired", self.repaired.into()),
            ("p50_latency_ns", self.p50_latency_ns.into()),
            ("p99_latency_ns", self.p99_latency_ns.into()),
            ("mean_latency_ns", self.mean_latency_ns.into()),
            ("makespan_ns", self.makespan_ns.into()),
            ("qps", self.qps.into()),
            ("cache_identity_ok", self.cache_identity_ok.into()),
            ("verified_hits", self.verified_hits.into()),
        ])
    }
}

/// The report plus per-query records (for identity tests and debugging).
pub struct ReplayOutcome {
    /// Aggregates.
    pub report: ReplayReport,
    /// One record per traced query arrival, in trace order.
    pub records: Vec<QueryRecord>,
    /// Final cache hit/miss/invalidation counters.
    pub cache_hits: u64,
    /// Cache misses counted by the cache itself.
    pub cache_misses: u64,
}

/// One pending (admitted, not yet flushed) query.
struct Pending {
    record: usize,
    at_ns: u64,
    graph: String,
    query: Query,
}

/// Replays `trace` against `hosts` under `config` in virtual time.
///
/// `hosts` must cover every graph name the trace mentions; an unknown
/// name is a [`ServeError::UnknownGraph`] (traces and hosts are built
/// from the same list in practice, so this is a programming error, not a
/// load condition).
pub fn replay(
    hosts: &mut [Hosted],
    trace: &ArrivalTrace,
    config: &ReplayConfig,
) -> Result<ReplayOutcome, ServeError> {
    let mut host_index: HashMap<String, usize> = hosts
        .iter()
        .enumerate()
        .map(|(i, h)| (h.name.clone(), i))
        .collect();
    for arrival in &trace.arrivals {
        let name = match &arrival.event {
            Event::Query { graph, .. }
            | Event::Update { graph, .. }
            | Event::BumpEpoch { graph } => graph,
        };
        if !host_index.contains_key(name) {
            return Err(ServeError::UnknownGraph(name.clone()));
        }
    }

    let options = RunOptions::default();
    let mut cache = ResultCache::new();
    let mut records: Vec<QueryRecord> = Vec::new();
    let mut pending: Vec<Pending> = Vec::new();
    let mut t_free: u64 = 0;
    let mut batches = 0usize;
    let mut epoch_bumps = 0usize;
    let mut invalidated = 0usize;
    let mut updates = 0usize;
    let mut repaired = 0usize;
    let mut verified_hits = 0usize;
    let mut cache_identity_ok = true;
    let mut last_answer_ns: u64 = 0;

    // Serves the oldest <= max_batch pending queries at `flush_at`.
    let flush = |pending: &mut Vec<Pending>,
                     t_free: &mut u64,
                     flush_at: u64,
                     hosts: &mut [Hosted],
                     cache: &mut ResultCache,
                     records: &mut Vec<QueryRecord>,
                     batches: &mut usize,
                     last_answer_ns: &mut u64,
                     verified_hits: &mut usize,
                     cache_identity_ok: &mut bool|
     -> Result<(), ServeError> {
        let take = pending.len().min(config.max_batch);
        let batch: Vec<Pending> = pending.drain(..take).collect();
        // Group by graph, preserving order within each group.
        let mut groups: HashMap<String, Vec<&Pending>> = HashMap::new();
        let mut group_order: Vec<String> = Vec::new();
        for p in &batch {
            if !groups.contains_key(&p.graph) {
                group_order.push(p.graph.clone());
            }
            groups.entry(p.graph.clone()).or_default().push(p);
        }
        // One device serves the groups back to back: total service time
        // is the sum of group makespans.
        let mut service_ns = 0.0f64;
        let mut answers: Vec<(usize, Arc<Vec<u32>>, bool)> = Vec::new();
        for name in &group_order {
            let members = &groups[name];
            let host = &mut hosts[host_index[name]];
            let queries: Vec<Query> = members.iter().map(|p| p.query).collect();
            let served = if config.use_cache {
                host.serve_batch(cache, &queries, &options)?
            } else {
                // A throwaway cache keeps the memo completely out of the
                // uncached baseline (within-flush dedup still applies —
                // that is batch semantics, not caching).
                host.serve_batch(&mut ResultCache::new(), &queries, &options)?
            };
            if served.executed > 0 {
                *batches += 1;
            }
            service_ns += served.makespan_ns;
            for (p, (values, cached)) in members.iter().zip(served.results) {
                if cached && config.verify_hits {
                    // Flush-time hits (filled between admission and
                    // flush) get the same identity check as
                    // pre-admission hits.
                    let fresh = host.run_uncached(p.query, &options)?;
                    *verified_hits += 1;
                    if fresh != *values {
                        *cache_identity_ok = false;
                    }
                }
                answers.push((p.record, values, cached));
            }
        }
        let done = flush_at + service_ns.ceil() as u64;
        *t_free = done;
        *last_answer_ns = (*last_answer_ns).max(done);
        for (record, values, cached) in answers {
            let r = &mut records[record];
            r.latency_ns = Some(done - r.at_ns);
            r.cached = cached;
            r.values = Some(values);
        }
        Ok(())
    };

    // When (in virtual time) the current pending set will flush, if ever.
    let flush_due = |pending: &[Pending], t_free: u64| -> Option<u64> {
        let first = pending.first()?;
        let trigger = if pending.len() >= config.max_batch {
            // The batch filled when its max_batch-th member arrived.
            pending[config.max_batch - 1].at_ns
        } else {
            first.at_ns + config.max_wait_ns
        };
        Some(trigger.max(t_free))
    };

    let mut query_index = 0usize;
    for arrival in &trace.arrivals {
        // Run every flush that fires before this arrival.
        while let Some(due) = flush_due(&pending, t_free) {
            if due > arrival.at_ns {
                break;
            }
            flush(
                &mut pending,
                &mut t_free,
                due,
                hosts,
                &mut cache,
                &mut records,
                &mut batches,
                &mut last_answer_ns,
                &mut verified_hits,
                &mut cache_identity_ok,
            )?;
        }
        match &arrival.event {
            Event::BumpEpoch { graph } => {
                let host = &mut hosts[host_index[graph]];
                invalidated += host.bump_epoch(&mut cache);
                epoch_bumps += 1;
            }
            Event::Update { graph, batch } => {
                // Applied between flushes, like the live service thread.
                // Repair work is treated as off-critical-path maintenance
                // and not charged to the virtual clock.
                let host = &mut hosts[host_index[graph]];
                let a = host.apply_update(batch, &mut cache, &options)?;
                updates += 1;
                if a.bumped {
                    epoch_bumps += 1;
                }
                repaired += a.repaired;
                invalidated += a.invalidated;
            }
            Event::Query { graph, query } => {
                let record = records.len();
                records.push(QueryRecord {
                    index: query_index,
                    graph: graph.clone(),
                    key: query.cache_key(),
                    at_ns: arrival.at_ns,
                    latency_ns: None,
                    cached: false,
                    values: None,
                });
                query_index += 1;
                let host = &mut hosts[host_index[graph]];
                let hit = if config.use_cache {
                    cache.get(&host.name, host.epoch, &records[record].key)
                } else {
                    None
                };
                if let Some(values) = hit {
                    if config.verify_hits {
                        let fresh = host.run_uncached(*query, &options)?;
                        verified_hits += 1;
                        if fresh != *values {
                            cache_identity_ok = false;
                        }
                    }
                    let done = arrival.at_ns + config.cache_hit_ns;
                    last_answer_ns = last_answer_ns.max(done);
                    let r = &mut records[record];
                    r.latency_ns = Some(config.cache_hit_ns);
                    r.cached = true;
                    r.values = Some(values);
                } else if pending.len() >= config.queue_capacity {
                    // Shed: record stays latency-less and value-less.
                } else {
                    pending.push(Pending {
                        record,
                        at_ns: arrival.at_ns,
                        graph: graph.clone(),
                        query: *query,
                    });
                }
            }
        }
    }
    // Drain what's still pending.
    while let Some(due) = flush_due(&pending, t_free) {
        flush(
            &mut pending,
            &mut t_free,
            due,
            hosts,
            &mut cache,
            &mut records,
            &mut batches,
            &mut last_answer_ns,
            &mut verified_hits,
            &mut cache_identity_ok,
        )?;
    }
    host_index.clear();

    // Aggregate.
    let mut latencies: Vec<u64> = records.iter().filter_map(|r| r.latency_ns).collect();
    latencies.sort_unstable();
    let served = latencies.len();
    let shed = records.len() - served;
    let cache_hits = records.iter().filter(|r| r.cached).count();
    let cache_misses = served - cache_hits;
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * served as f64).ceil() as usize;
        latencies[rank.clamp(1, served) - 1]
    };
    let mean = if served == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / served as f64
    };
    let qps = if last_answer_ns == 0 {
        0.0
    } else {
        served as f64 / (last_answer_ns as f64 / 1e9)
    };
    let report = ReplayReport {
        queries: records.len(),
        served,
        shed,
        cache_hits,
        cache_misses,
        batches,
        epoch_bumps,
        invalidated,
        updates,
        repaired,
        p50_latency_ns: pct(50.0),
        p99_latency_ns: pct(99.0),
        mean_latency_ns: mean,
        makespan_ns: last_answer_ns,
        qps,
        cache_identity_ok,
        verified_hits,
    };
    Ok(ReplayOutcome {
        report,
        records,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use agg_graph::{CsrGraph, Dataset, Scale};
    use agg_gpu_sim::DeviceConfig;

    fn graph(dataset: Dataset, seed: u64) -> Arc<CsrGraph> {
        Arc::new(dataset.generate_weighted(Scale::Tiny, seed, 64))
    }

    fn hosts() -> Vec<Hosted> {
        vec![
            Hosted::new("amazon", graph(Dataset::Amazon, 1), DeviceConfig::tesla_c2070())
                .expect("host"),
            Hosted::new("google", graph(Dataset::Google, 2), DeviceConfig::tesla_c2070())
                .expect("host"),
        ]
    }

    fn trace(queries: usize, update_every: usize) -> ArrivalTrace {
        ArrivalTrace::generate(TraceConfig {
            queries,
            rate_qps: 5000.0,
            seed: 11,
            graphs: vec!["amazon".into(), "google".into()],
            source_pool: 6,
            update_every,
            update_size: 4,
        })
    }

    #[test]
    fn cached_answers_are_bit_identical_to_uncached_recomputation() {
        // All four algorithm families appear in the trace; verify_hits
        // recomputes every hit through the uncached path and compares.
        let mut hosts = hosts();
        let t = trace(150, 0);
        let outcome = replay(
            &mut hosts,
            &t,
            &ReplayConfig {
                verify_hits: true,
                ..ReplayConfig::default()
            },
        )
        .expect("replay");
        assert!(outcome.report.cache_hits > 0, "trace must produce hits");
        assert!(outcome.report.verified_hits >= outcome.report.cache_hits);
        assert!(
            outcome.report.cache_identity_ok,
            "cached values must equal uncached recomputation bit-for-bit"
        );
        // Cross-check independently of the replay's own flag: group
        // served records by (graph, key) — every record of an identity
        // must hold the same bits, cached or not.
        let mut by_key: HashMap<(String, String), Arc<Vec<u32>>> = HashMap::new();
        for r in outcome.records.iter().filter(|r| r.values.is_some()) {
            let v = r.values.clone().expect("served");
            let k = (r.graph.clone(), r.key.clone());
            if let Some(prev) = by_key.get(&k) {
                assert_eq!(**prev, *v, "{k:?} served two different answers");
            } else {
                by_key.insert(k, v);
            }
        }
    }

    #[test]
    fn updates_bump_epochs_and_settle_exactly_the_stale_entries() {
        let mut hosts = hosts();
        let t = trace(200, 40);
        let outcome = replay(&mut hosts, &t, &ReplayConfig::default()).expect("replay");
        // 200 queries / update_every 40 with no trailing event = 4.
        assert_eq!(outcome.report.updates, 4);
        assert!(outcome.report.epoch_bumps > 0);
        assert!(
            outcome.report.repaired + outcome.report.invalidated > 0,
            "updates over a warm cache must settle stale entries"
        );
        // Epochs only move forward, and ended where the effective
        // batches put them (no-op batches bump neither counter).
        let total: u64 = hosts.iter().map(|h| h.epoch).sum();
        assert_eq!(total as usize, outcome.report.epoch_bumps);
    }

    #[test]
    fn served_values_track_the_mutating_topology() {
        // With updates in the trace, a replay with hit-verification on
        // must still find every cached answer bit-identical to an
        // uncached recomputation *at the epoch it was served* — repair
        // carries entries across epochs only when that holds.
        let mut hosts = hosts();
        let t = trace(200, 25);
        let outcome = replay(
            &mut hosts,
            &t,
            &ReplayConfig {
                verify_hits: true,
                ..ReplayConfig::default()
            },
        )
        .expect("replay");
        assert!(outcome.report.updates > 0);
        assert!(outcome.report.cache_hits > 0);
        assert!(
            outcome.report.cache_identity_ok,
            "cached values diverged from recomputation under dynamic updates"
        );
    }

    #[test]
    fn replaying_the_same_trace_twice_is_deterministic() {
        let t = trace(150, 30);
        let config = ReplayConfig::default();
        let a = replay(&mut hosts(), &t, &config).expect("first");
        let b = replay(&mut hosts(), &t, &config).expect("second");
        assert_eq!(a.report, b.report, "same trace, same config, same report");
        assert_eq!((a.cache_hits, a.cache_misses), (b.cache_hits, b.cache_misses));
    }

    #[test]
    fn the_cache_changes_when_not_what() {
        // With and without the cache, every served query gets the same
        // bits; the cached run just answers (many of them) sooner.
        let t = trace(120, 0);
        let cached = replay(&mut hosts(), &t, &ReplayConfig::default()).expect("cached");
        let uncached = replay(
            &mut hosts(),
            &t,
            &ReplayConfig {
                use_cache: false,
                ..ReplayConfig::default()
            },
        )
        .expect("uncached");
        assert_eq!(cached.report.queries, uncached.report.queries);
        assert_eq!(uncached.report.cache_hits, 0);
        assert!(cached.report.cache_hits > 0);
        for (c, u) in cached.records.iter().zip(&uncached.records) {
            if let (Some(cv), Some(uv)) = (&c.values, &u.values) {
                assert_eq!(**cv, **uv, "query #{} differs with caching", c.index);
            }
        }
        assert!(
            cached.report.mean_latency_ns <= uncached.report.mean_latency_ns,
            "caching must not slow the mean answer down \
             (cached {} ns vs uncached {} ns)",
            cached.report.mean_latency_ns,
            uncached.report.mean_latency_ns,
        );
    }

    #[test]
    fn overload_sheds_and_reports_instead_of_growing_without_bound() {
        let t = trace(150, 0);
        let outcome = replay(
            &mut hosts(),
            &t,
            &ReplayConfig {
                queue_capacity: 2,
                use_cache: false,
                ..ReplayConfig::default()
            },
        )
        .expect("replay");
        assert!(outcome.report.shed > 0, "a 2-slot queue at 5k qps must shed");
        assert_eq!(
            outcome.report.served + outcome.report.shed,
            outcome.report.queries
        );
        // Shed queries carry no values and no latency.
        for r in &outcome.records {
            assert_eq!(r.latency_ns.is_none(), r.values.is_none());
        }
    }
}
