//! The CPU cost model: work counters → modeled nanoseconds.
//!
//! Calibration targets a ~2010 Core i7 (Nehalem/Westmere class) running
//! `-O3` compiled graph code:
//!
//! * simple ALU/branch work retires at a few ops per cycle → ~0.5 ns per
//!   counted operation;
//! * a neighbor gather on a graph that does not fit in L2 mostly misses to
//!   L3/DRAM → ~8 ns average;
//! * queue pushes/pops are pointer bumps → ~2 ns;
//! * binary-heap operations cost a base plus `log2(size)` swap levels.
//!
//! These constants put serial BFS at ~10-20 M nodes/s on the paper's
//! datasets — the throughput class the paper's Tables 2/3 imply (its best
//! GPU BFS reaches hundreds of M nodes/s at speedups of ~10x).

use serde::{Deserialize, Serialize};

/// Work counters accumulated by an instrumented baseline run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCounters {
    /// Nodes processed (dequeued / settled).
    pub nodes: u64,
    /// Edges scanned (neighbor gathers).
    pub edges: u64,
    /// FIFO queue pushes + pops.
    pub queue_ops: u64,
    /// Heap pushes + pops.
    pub heap_ops: u64,
    /// Sum of `log2(heap_size)` over heap operations (sift depth).
    pub heap_log_sum: f64,
    /// Algorithm iterations (outer loop count, for Bellman-Ford).
    pub iterations: u64,
}

/// Converts counters to modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// Fixed per-node bookkeeping cost (ns).
    pub per_node_ns: f64,
    /// Average cost of scanning one edge, including the irregular gather
    /// (ns).
    pub per_edge_ns: f64,
    /// Cost per FIFO queue operation (ns).
    pub queue_op_ns: f64,
    /// Base cost per heap operation (ns).
    pub heap_base_ns: f64,
    /// Cost per sift level (multiplied by `log2(heap size)`) (ns).
    pub heap_level_ns: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel::core_i7_2010()
    }
}

impl CpuCostModel {
    /// Calibration described in the module docs.
    pub fn core_i7_2010() -> CpuCostModel {
        CpuCostModel {
            per_node_ns: 12.0,
            per_edge_ns: 8.0,
            queue_op_ns: 2.0,
            heap_base_ns: 14.0,
            heap_level_ns: 2.5,
        }
    }

    /// Modeled nanoseconds for a counted run.
    pub fn modeled_ns(&self, c: &CpuCounters) -> f64 {
        c.nodes as f64 * self.per_node_ns
            + c.edges as f64 * self.per_edge_ns
            + c.queue_ops as f64 * self.queue_op_ns
            + c.heap_ops as f64 * self.heap_base_ns
            + c.heap_log_sum * self.heap_level_ns
    }
}

/// The result of an instrumented baseline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuRun {
    /// Per-node output (levels or distances).
    pub result: Vec<u32>,
    /// Work counters.
    pub counters: CpuCounters,
    /// Modeled time in nanoseconds.
    pub time_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_time_is_linear_in_counters() {
        let m = CpuCostModel::core_i7_2010();
        let a = CpuCounters {
            nodes: 10,
            edges: 100,
            ..Default::default()
        };
        let b = CpuCounters {
            nodes: 20,
            edges: 200,
            ..Default::default()
        };
        assert!((m.modeled_ns(&b) - 2.0 * m.modeled_ns(&a)).abs() < 1e-9);
    }

    #[test]
    fn bfs_throughput_lands_in_calibration_band() {
        // 400k-node, 3.4M-edge Amazon-like BFS visits every node/edge once.
        let m = CpuCostModel::core_i7_2010();
        let c = CpuCounters {
            nodes: 400_000,
            edges: 3_400_000,
            queue_ops: 800_000,
            ..Default::default()
        };
        let secs = m.modeled_ns(&c) / 1e9;
        let nodes_per_sec = 400_000.0 / secs;
        assert!(
            (5.0e6..4.0e7).contains(&nodes_per_sec),
            "serial BFS modeled at {:.1} M nodes/s — outside the 2010-i7 band",
            nodes_per_sec / 1e6
        );
    }

    #[test]
    fn heap_ops_cost_more_than_queue_ops() {
        let m = CpuCostModel::core_i7_2010();
        let q = CpuCounters {
            queue_ops: 1000,
            ..Default::default()
        };
        let h = CpuCounters {
            heap_ops: 1000,
            heap_log_sum: 10_000.0,
            ..Default::default()
        };
        assert!(m.modeled_ns(&h) > 5.0 * m.modeled_ns(&q));
    }
}
