//! Instrumented serial connected-components baseline (worklist min-label
//! propagation — the CPU analog of the unordered GPU CC extension).

use crate::cost::{CpuCostModel, CpuCounters, CpuRun};
use agg_graph::CsrGraph;

/// Worklist min-label propagation: starts with every node labeled by its
/// own id and active; relaxes out-edges until fixpoint. On symmetric
/// graphs the labels are connected components.
pub fn connected_components(g: &CsrGraph, model: &CpuCostModel) -> CpuRun {
    let n = g.node_count();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut c = CpuCounters::default();
    let mut frontier: Vec<u32> = (0..n as u32).collect();
    let mut in_next = vec![false; n];
    while !frontier.is_empty() {
        c.iterations += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            c.nodes += 1;
            c.queue_ops += 1;
            let lu = label[u as usize];
            for v in g.neighbors(u) {
                c.edges += 1;
                if lu < label[v as usize] {
                    label[v as usize] = lu;
                    if !in_next[v as usize] {
                        in_next[v as usize] = true;
                        next.push(v);
                        c.queue_ops += 1;
                    }
                }
            }
        }
        for &v in &next {
            in_next[v as usize] = false;
        }
        frontier = next;
    }
    let time_ns = model.modeled_ns(&c);
    CpuRun {
        result: label,
        counters: c,
        time_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::{traversal, Dataset, GraphBuilder, Scale};

    #[test]
    fn matches_naive_oracle_on_datasets() {
        for d in [Dataset::CoRoad, Dataset::P2p, Dataset::Google] {
            let g = d.generate(Scale::Tiny, 55);
            let run = connected_components(&g, &CpuCostModel::default());
            assert_eq!(run.result, traversal::min_labels(&g), "{}", d.name());
            assert!(run.time_ns > 0.0);
        }
    }

    #[test]
    fn counts_components_on_a_forest() {
        let mut b = GraphBuilder::new(7);
        b.add_undirected_edge(0, 1).unwrap();
        b.add_undirected_edge(2, 3).unwrap();
        b.add_undirected_edge(3, 4).unwrap();
        let g = b.build().unwrap();
        let run = connected_components(&g, &CpuCostModel::default());
        let mut roots: Vec<u32> = run.result.clone();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots, vec![0, 2, 5, 6]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let run = connected_components(&g, &CpuCostModel::default());
        assert!(run.result.is_empty());
    }
}
