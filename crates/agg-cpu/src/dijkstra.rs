//! Instrumented serial SSSP baselines: binary-heap Dijkstra (the paper's
//! Table 3 baseline) and frontier Bellman-Ford (the serial analog of the
//! unordered GPU algorithm, used in convergence studies).

use crate::cost::{CpuCostModel, CpuCounters, CpuRun};
use agg_graph::{CsrGraph, NodeId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Dijkstra with a binary heap, counting node settles, edge scans, and
/// heap traffic (including sift depth).
pub fn dijkstra(g: &CsrGraph, src: NodeId, model: &CpuCostModel) -> CpuRun {
    let n = g.node_count();
    let mut dist = vec![INF; n];
    let mut c = CpuCounters::default();
    if n > 0 {
        dist[src as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u32, src)));
        c.heap_ops += 1;
        while let Some(Reverse((d, u))) = heap.pop() {
            c.heap_ops += 1;
            c.heap_log_sum += ((heap.len() + 1) as f64).log2();
            if d > dist[u as usize] {
                continue; // stale entry
            }
            c.nodes += 1;
            for (v, w) in g.weighted_neighbors(u) {
                c.edges += 1;
                let nd = d.saturating_add(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                    c.heap_ops += 1;
                    c.heap_log_sum += (heap.len() as f64).log2();
                }
            }
        }
    }
    let time_ns = model.modeled_ns(&c);
    CpuRun {
        result: dist,
        counters: c,
        time_ns,
    }
}

/// Frontier Bellman-Ford: relax out-edges of the frontier until fixpoint.
/// Matches [`dijkstra`]'s distances for non-negative weights while doing
/// the (larger) amount of work an unordered algorithm does.
pub fn bellman_ford(g: &CsrGraph, src: NodeId, model: &CpuCostModel) -> CpuRun {
    let n = g.node_count();
    let mut dist = vec![INF; n];
    let mut c = CpuCounters::default();
    if n > 0 {
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        let mut in_next = vec![false; n];
        while !frontier.is_empty() {
            c.iterations += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                c.nodes += 1;
                c.queue_ops += 1;
                let du = dist[u as usize];
                for (v, w) in g.weighted_neighbors(u) {
                    c.edges += 1;
                    let nd = du.saturating_add(w);
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        if !in_next[v as usize] {
                            in_next[v as usize] = true;
                            next.push(v);
                            c.queue_ops += 1;
                        }
                    }
                }
            }
            for &v in &next {
                in_next[v as usize] = false;
            }
            frontier = next;
        }
    }
    let time_ns = model.modeled_ns(&c);
    CpuRun {
        result: dist,
        counters: c,
        time_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::traversal;
    use agg_graph::{Dataset, Scale};

    fn weighted_tiny(d: Dataset, seed: u64) -> CsrGraph {
        d.generate_weighted(Scale::Tiny, seed, 64)
    }

    #[test]
    fn dijkstra_matches_reference() {
        for d in [Dataset::CoRoad, Dataset::Amazon, Dataset::Google] {
            let g = weighted_tiny(d, 7);
            let run = dijkstra(&g, 0, &CpuCostModel::default());
            assert_eq!(run.result, traversal::dijkstra(&g, 0), "{}", d.name());
        }
    }

    #[test]
    fn bellman_ford_matches_dijkstra_but_does_more_work() {
        let g = weighted_tiny(Dataset::Google, 8);
        let m = CpuCostModel::default();
        let dj = dijkstra(&g, 0, &m);
        let bf = bellman_ford(&g, 0, &m);
        assert_eq!(dj.result, bf.result);
        // Unordered re-relaxation: Bellman-Ford scans at least as many edges.
        assert!(bf.counters.edges >= dj.counters.edges);
        assert!(bf.counters.iterations > 0);
    }

    #[test]
    fn heap_accounting_is_populated() {
        let g = weighted_tiny(Dataset::Amazon, 9);
        let run = dijkstra(&g, 0, &CpuCostModel::default());
        assert!(run.counters.heap_ops > run.counters.nodes);
        assert!(run.counters.heap_log_sum > 0.0);
        assert!(run.time_ns > 0.0);
    }

    #[test]
    fn empty_and_isolated() {
        let m = CpuCostModel::default();
        let g = CsrGraph::empty(0);
        assert!(dijkstra(&g, 0, &m).result.is_empty());
        assert!(bellman_ford(&g, 0, &m).result.is_empty());
        let g = CsrGraph::empty(3);
        assert_eq!(dijkstra(&g, 1, &m).result, vec![INF, 0, INF]);
        assert_eq!(bellman_ford(&g, 1, &m).result, vec![INF, 0, INF]);
    }
}
