//! Serial PageRank baselines (extension): an instrumented delta/push
//! implementation (the CPU mirror of the GPU kernels) and a power-
//! iteration oracle for accuracy checks.
//!
//! Both use the same dangling-node convention as the GPU kernels: mass
//! pushed by a node with no out-edges is dropped (so rank totals come out
//! slightly below `n`); teleport contributes `1 - d` to every node.

use crate::cost::{CpuCostModel, CpuCounters};
use agg_graph::CsrGraph;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of a serial PageRank run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageRankRun {
    /// Final rank per node.
    pub ranks: Vec<f32>,
    /// Work counters.
    pub counters: CpuCounters,
    /// Modeled time, ns.
    pub time_ns: f64,
}

/// Delta (push-style) PageRank: worklist of nodes whose residual exceeds
/// `epsilon`; claiming a node folds its residual into its rank and pushes
/// `residual * damping / outdeg` to each neighbor.
pub fn pagerank_delta(
    g: &CsrGraph,
    damping: f32,
    epsilon: f32,
    model: &CpuCostModel,
) -> PageRankRun {
    let n = g.node_count();
    let mut rank = vec![0.0f32; n];
    let mut residual = vec![1.0 - damping; n];
    let mut in_queue = vec![true; n];
    let mut queue: VecDeque<u32> = (0..n as u32).collect();
    let mut c = CpuCounters::default();
    while let Some(u) = queue.pop_front() {
        c.queue_ops += 1;
        in_queue[u as usize] = false;
        let r = residual[u as usize];
        residual[u as usize] = 0.0;
        rank[u as usize] += r;
        c.nodes += 1;
        let deg = g.out_degree(u);
        if deg == 0 {
            continue; // dangling: pushed mass dropped
        }
        let push = r * damping / deg as f32;
        for v in g.neighbors(u) {
            c.edges += 1;
            let old = residual[v as usize];
            residual[v as usize] = old + push;
            if old < epsilon && old + push >= epsilon && !in_queue[v as usize] {
                in_queue[v as usize] = true;
                queue.push_back(v);
                c.queue_ops += 1;
            }
        }
    }
    let time_ns = model.modeled_ns(&c);
    PageRankRun {
        ranks: rank,
        counters: c,
        time_ns,
    }
}

/// Power-iteration oracle: `p_{k+1}[v] = (1 - d) + d * Σ_{u->v} p_k[u] / outdeg(u)`
/// with dangling mass dropped. Iterates until the max per-node change is
/// below `tol` (or `max_iter`).
pub fn pagerank_power(g: &CsrGraph, damping: f32, tol: f32, max_iter: u32) -> Vec<f32> {
    let n = g.node_count();
    let mut p = vec![1.0f32; n];
    for _ in 0..max_iter {
        let mut next = vec![1.0 - damping; n];
        for u in 0..n as u32 {
            let deg = g.out_degree(u);
            if deg == 0 {
                continue;
            }
            let share = damping * p[u as usize] / deg as f32;
            for v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let delta = p
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        p = next;
        if delta < tol {
            break;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::{Dataset, GraphBuilder, Scale};

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn delta_converges_to_power_iteration_fixpoint() {
        for d in [Dataset::P2p, Dataset::Google] {
            let g = d.generate(Scale::Tiny, 91);
            let delta = pagerank_delta(&g, 0.85, 1e-6, &CpuCostModel::default());
            let power = pagerank_power(&g, 0.85, 1e-7, 500);
            let diff = max_abs_diff(&delta.ranks, &power);
            assert!(diff < 1e-3, "{}: max diff {diff}", d.name());
        }
    }

    #[test]
    fn ring_graph_has_uniform_ranks() {
        let n = 10u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = GraphBuilder::from_edges(n as usize, &edges).unwrap();
        let run = pagerank_delta(&g, 0.85, 1e-7, &CpuCostModel::default());
        for &r in &run.ranks {
            assert!((r - 1.0).abs() < 1e-3, "ring rank {r} != 1.0");
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        // star pointing inward: all leaves -> hub 0
        let edges: Vec<_> = (1..8u32).map(|v| (v, 0)).collect();
        let g = GraphBuilder::from_edges(8, &edges).unwrap();
        let run = pagerank_delta(&g, 0.85, 1e-7, &CpuCostModel::default());
        for v in 1..8 {
            assert!(
                run.ranks[0] > 3.0 * run.ranks[v],
                "hub {} leaf {}",
                run.ranks[0],
                run.ranks[v]
            );
        }
    }

    #[test]
    fn total_mass_is_bounded_by_teleport_plus_damping() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 92);
        let n = g.node_count() as f32;
        let run = pagerank_delta(&g, 0.85, 1e-7, &CpuCostModel::default());
        let total: f32 = run.ranks.iter().sum();
        assert!(total <= n * 1.001, "total {total} exceeds node count {n}");
        assert!(total > n * 0.5, "total {total} suspiciously low");
        assert!(run.counters.edges > 0 && run.time_ns > 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        assert!(pagerank_delta(&g, 0.85, 1e-6, &CpuCostModel::default())
            .ranks
            .is_empty());
        assert!(pagerank_power(&g, 0.85, 1e-6, 10).is_empty());
    }
}
