#![warn(missing_docs)]

//! Serial CPU baselines for the paper's speedup tables.
//!
//! The paper reports every GPU number as a speedup over a serial CPU
//! implementation compiled with `gcc -O3` on a ~2010 Intel Core i7. The
//! simulated GPU's times are *modeled*, so comparing them against measured
//! wall-clock on whatever machine runs this crate would entangle the
//! reproduction with host hardware. Instead these baselines are
//! *instrumented* — they count the work they do — and an analytic
//! [`CpuCostModel`] converts the counts to modeled nanoseconds, calibrated
//! to the throughput class of the paper's CPU (see [`cost`]).
//!
//! The algorithms are the ones the paper names: queue-based BFS, Dijkstra
//! with a binary heap (the "serial CPU baseline Dijkstra's algorithm" of
//! Table 3), and frontier Bellman-Ford as the serial analog of unordered
//! SSSP.

pub mod bfs;
pub mod cc;
pub mod cost;
pub mod dijkstra;
pub mod incremental;
pub mod pagerank;

pub use bfs::bfs;
pub use cc::connected_components;
pub use cost::{CpuCostModel, CpuCounters, CpuRun};
pub use dijkstra::{bellman_ford, dijkstra};
pub use incremental::{repair, recompute, RelaxKind};
pub use pagerank::{pagerank_delta, pagerank_power, PageRankRun};
