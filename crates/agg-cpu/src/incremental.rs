//! Instrumented incremental repair — the CPU oracle for `agg-dynamic`.
//!
//! BFS levels, SSSP distances, and CC min-labels are each the *unique*
//! fixpoint of a monotone relaxation over the graph, so repairing a stale
//! value array by re-relaxing from a set of seed improvements converges to
//! exactly the same array a from-scratch recompute would produce — bit
//! identity is a theorem, not a tolerance. This module provides the
//! worklist relaxation shared by all three algorithms, counting its work
//! like every other baseline in this crate so the differential harness can
//! compare modeled repair cost against recompute cost.
//!
//! The caller (the `agg-dynamic` crate) decides *what* to seed: on edge
//! insertion a value can only decrease, so the seeds are the insertion
//! endpoints whose tentative value improves; deletions that could raise a
//! value fall back to recompute there.

use crate::cost::{CpuCostModel, CpuCounters, CpuRun};
use agg_graph::{CsrGraph, NodeId, INF};
use std::collections::VecDeque;

/// Which monotone relaxation is being repaired. Determines the candidate
/// value an edge `(u, v, w)` proposes for `v` given `value[u]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelaxKind {
    /// BFS levels: `value[u] + 1`.
    Bfs,
    /// SSSP distances: `value[u] + w` (saturating).
    Sssp,
    /// CC min-labels: `value[u]` (labels flow along edge direction).
    Cc,
}

impl RelaxKind {
    /// The value edge `(u, v)` with weight `w` proposes for `v`.
    #[inline]
    pub fn candidate(self, value_u: u32, w: u32) -> u32 {
        match self {
            RelaxKind::Bfs => value_u.saturating_add(1),
            RelaxKind::Sssp => value_u.saturating_add(w),
            RelaxKind::Cc => value_u,
        }
    }
}

/// Worklist repair: starting from the stale `old` array, applies the seed
/// improvements `(node, candidate)` and re-relaxes to the fixpoint over
/// `g` (which must be the *updated* graph). Returns the repaired array —
/// bit-identical to a from-scratch recompute — plus work counters.
///
/// Seeding every node with its initial value (`(src, 0)` over all-`INF`
/// for BFS/SSSP; `(i, i)` for CC) makes this a full recompute, which the
/// tests exploit.
pub fn repair(
    g: &CsrGraph,
    kind: RelaxKind,
    old: &[u32],
    seeds: &[(NodeId, u32)],
    model: &CpuCostModel,
) -> CpuRun {
    let n = g.node_count();
    assert_eq!(old.len(), n, "stale value array must cover every node");
    let mut value = old.to_vec();
    let mut c = CpuCounters::default();
    let mut q = VecDeque::new();
    let mut queued = vec![false; n];
    for &(node, cand) in seeds {
        if cand < value[node as usize] {
            value[node as usize] = cand;
            if !queued[node as usize] {
                queued[node as usize] = true;
                q.push_back(node);
                c.queue_ops += 1;
            }
        }
    }
    while let Some(u) = q.pop_front() {
        c.queue_ops += 1;
        queued[u as usize] = false;
        c.nodes += 1;
        let base = value[u as usize];
        for (v, w) in g.weighted_neighbors(u) {
            c.edges += 1;
            let cand = kind.candidate(base, w);
            if cand < value[v as usize] {
                value[v as usize] = cand;
                if !queued[v as usize] {
                    queued[v as usize] = true;
                    q.push_back(v);
                    c.queue_ops += 1;
                }
            }
        }
    }
    let time_ns = model.modeled_ns(&c);
    CpuRun {
        result: value,
        counters: c,
        time_ns,
    }
}

/// Full recompute via [`repair`] seeded from scratch — the reference the
/// incremental path is compared against. For [`RelaxKind::Cc`] the `src`
/// argument is ignored (every node seeds its own label).
pub fn recompute(g: &CsrGraph, kind: RelaxKind, src: NodeId, model: &CpuCostModel) -> CpuRun {
    let n = g.node_count();
    match kind {
        RelaxKind::Bfs | RelaxKind::Sssp => {
            let old = vec![INF; n];
            let seeds = if n == 0 { vec![] } else { vec![(src, 0)] };
            repair(g, kind, &old, &seeds, model)
        }
        RelaxKind::Cc => {
            let old = vec![INF; n];
            let seeds: Vec<(NodeId, u32)> = (0..n as u32).map(|i| (i, i)).collect();
            repair(g, kind, &old, &seeds, model)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::traversal;
    use agg_graph::{Dataset, Scale};

    #[test]
    fn scratch_seeded_repair_matches_reference_bfs() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 3);
        let run = recompute(&g, RelaxKind::Bfs, 0, &CpuCostModel::default());
        assert_eq!(run.result, traversal::bfs_levels(&g, 0));
    }

    #[test]
    fn scratch_seeded_repair_matches_reference_cc() {
        let g = Dataset::P2p.generate(Scale::Tiny, 5);
        let run = recompute(&g, RelaxKind::Cc, 0, &CpuCostModel::default());
        assert_eq!(run.result, traversal::min_labels(&g));
    }

    #[test]
    fn scratch_seeded_repair_matches_dijkstra() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = Dataset::P2p
            .generate(Scale::Tiny, 7)
            .with_random_weights(&mut rng, 16);
        let run = recompute(&g, RelaxKind::Sssp, 0, &CpuCostModel::default());
        let reference = crate::dijkstra(&g, 0, &CpuCostModel::default());
        assert_eq!(run.result, reference.result);
    }

    #[test]
    fn insert_repair_is_bit_identical_to_recompute() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 9);
        let model = CpuCostModel::default();
        let old = recompute(&g, RelaxKind::Bfs, 0, &model).result;
        // Insert an edge from a reachable node to wherever node n-1 is.
        let n = g.node_count() as u32;
        let added = [(0u32, n - 1, 1u32)];
        let updated = g.rebuilt_with(&added, &[]).unwrap();
        let seeds: Vec<(u32, u32)> = added
            .iter()
            .filter(|&&(u, _, _)| old[u as usize] != INF)
            .map(|&(u, v, w)| (v, RelaxKind::Bfs.candidate(old[u as usize], w)))
            .collect();
        let repaired = repair(&updated, RelaxKind::Bfs, &old, &seeds, &model);
        let fresh = recompute(&updated, RelaxKind::Bfs, 0, &model);
        assert_eq!(repaired.result, fresh.result);
        // The repair touched far fewer edges than the recompute.
        assert!(repaired.counters.edges <= fresh.counters.edges);
    }

    #[test]
    fn noop_seeds_touch_nothing() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 2);
        let model = CpuCostModel::default();
        let old = recompute(&g, RelaxKind::Bfs, 0, &model).result;
        // A seed no better than the current value is ignored outright.
        let seeds = vec![(0u32, old[0])];
        let run = repair(&g, RelaxKind::Bfs, &old, &seeds, &model);
        assert_eq!(run.result, old);
        assert_eq!(run.counters.nodes, 0);
        assert_eq!(run.counters.edges, 0);
    }

    #[test]
    fn empty_graph_repair() {
        let g = CsrGraph::empty(0);
        let run = repair(&g, RelaxKind::Cc, &[], &[], &CpuCostModel::default());
        assert!(run.result.is_empty());
        assert_eq!(run.time_ns, 0.0);
    }
}
