//! Instrumented serial BFS (the CPU baseline of the paper's Table 2).

use crate::cost::{CpuCostModel, CpuCounters, CpuRun};
use agg_graph::{CsrGraph, NodeId, INF};
use std::collections::VecDeque;

/// Queue-based BFS from `src`, counting the work it does and converting it
/// to modeled time under `model`.
pub fn bfs(g: &CsrGraph, src: NodeId, model: &CpuCostModel) -> CpuRun {
    let n = g.node_count();
    let mut level = vec![INF; n];
    let mut c = CpuCounters::default();
    if n > 0 {
        level[src as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(src);
        c.queue_ops += 1;
        while let Some(u) = q.pop_front() {
            c.queue_ops += 1;
            c.nodes += 1;
            let next = level[u as usize] + 1;
            for v in g.neighbors(u) {
                c.edges += 1;
                if level[v as usize] == INF {
                    level[v as usize] = next;
                    q.push_back(v);
                    c.queue_ops += 1;
                }
            }
        }
    }
    let time_ns = model.modeled_ns(&c);
    CpuRun {
        result: level,
        counters: c,
        time_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::traversal;
    use agg_graph::{Dataset, Scale};

    #[test]
    fn matches_reference_levels() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 3);
        let run = bfs(&g, 0, &CpuCostModel::default());
        assert_eq!(run.result, traversal::bfs_levels(&g, 0));
    }

    #[test]
    fn counters_reflect_reachable_subgraph() {
        let g = Dataset::P2p.generate(Scale::Tiny, 4);
        let run = bfs(&g, 0, &CpuCostModel::default());
        let reached = run.result.iter().filter(|&&l| l != INF).count() as u64;
        assert_eq!(run.counters.nodes, reached);
        assert!(run.counters.edges <= g.edge_count() as u64);
        assert!(run.time_ns > 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let run = bfs(&g, 0, &CpuCostModel::default());
        assert!(run.result.is_empty());
        assert_eq!(run.counters.nodes, 0);
        assert_eq!(run.time_ns, 0.0);
    }

    #[test]
    fn isolated_source() {
        let g = CsrGraph::empty(5);
        let run = bfs(&g, 2, &CpuCostModel::default());
        assert_eq!(run.result[2], 0);
        assert_eq!(run.result.iter().filter(|&&l| l == INF).count(), 4);
    }
}
