#![warn(missing_docs)]

//! The adaptive runtime — the paper's primary contribution (Section VI).
//!
//! Architecture (the paper's Figure 10):
//!
//! ```text
//!      Graph API                 [api::GpuGraph]
//!  ────────────────────
//!      Runtime
//!        graph inspector         [engine — ws-size monitoring w/ sampling]
//!        decision maker          [decision::decide — Figure 11 thresholds]
//!  ────────────────────
//!      Libraries (BFS, SSSP      [agg-kernels]
//!       x 8 variants each)
//! ```
//!
//! Every traversal iteration the engine (re)selects a kernel variant from
//! the working-set size and the graph's average outdegree, using the
//! three-threshold decision space of Figure 11. Switching is cheap by
//! construction: both working-set representations are derived from the
//! same update vector by the `workset_gen` kernel that runs each iteration
//! anyway.

pub mod api;
pub mod config;
pub mod decision;
pub mod engine;
pub mod metrics;
pub mod session;
pub mod shard;

pub use api::GpuGraph;
pub use config::{AdaptiveConfig, DegreeMode};
pub use decision::{decide, Region};
pub use engine::{
    run, run_warm, Algo, CensusMode, CoreError, IterationRecord, PageRankConfig, Query,
    RunOptions, RunOptionsBuilder, RunReport, Strategy,
};
pub use metrics::Metrics;
pub use session::{BatchReport, QueryReport, Session};
pub use shard::{ShardReport, ShardSlice, ShardedGraph};
