//! The iteration engine: the paper's Figure 8 driver with per-iteration
//! variant selection, working-set monitoring, and full time accounting.
//!
//! Per-iteration pipeline:
//!
//! 1. `prep` kernel — reset queue length / findmin cell / flag / census;
//! 2. `workset_gen` kernel — update vector → the representation chosen
//!    for this iteration (bitmap or queue);
//! 3. termination check — a 4-byte D2H read of the queue length or the
//!    nonempty flag (this PCIe round-trip is real per-iteration cost);
//! 4. inspector census (bitmap mode, when sampling) — `count` kernel +
//!    4-byte read;
//! 5. `findmin` kernel (ordered SSSP only);
//! 6. the computation kernel of the selected variant.
//!
//! Strategies: [`Strategy::Static`] (the paper's Tables 2/3),
//! [`Strategy::Adaptive`] (the paper's contribution),
//! [`Strategy::VirtualWarp`] (Hong et al. \[12\], extension), and
//! [`Strategy::Hybrid`] (CPU/GPU alternation in the spirit of Hong et
//! al. \[13\], extension): iterations whose working set is below a
//! threshold run on the host, paying state transfers at each processor
//! switch.

use crate::config::{AdaptiveConfig, DegreeMode};
use crate::decision::{decide, region, Region};
use crate::metrics::Metrics;
use agg_cpu::CpuCostModel;
use agg_gpu_sim::json::Json;
use agg_gpu_sim::mem::transfer::transfer_ns;
use agg_gpu_sim::prelude::*;
use agg_graph::{NodeId, INF};
use agg_kernels::{AlgoOrder, AlgoState, DeviceGraph, GpuKernels, Mapping, Variant, WorkSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    /// Breadth-first search (levels).
    Bfs,
    /// Single-source shortest paths (distances).
    Sssp,
    /// Connected components via min-label propagation (extension; the
    /// source argument is ignored and the graph should be symmetric for
    /// component semantics).
    Cc,
    /// PageRank-delta (extension): push-style PageRank over f32 ranks.
    /// The source argument is ignored; results are f32 bit patterns
    /// (see [`RunReport::values_as_f32`]).
    PageRank,
}

/// Implementation-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// One fixed variant for the whole traversal (the paper's Tables 2/3).
    Static(Variant),
    /// Per-iteration selection by the decision maker (Section VI).
    Adaptive,
    /// Virtual warp-centric mapping (extension; Hong et al., cited in
    /// Section II): each working-set element is handled by a sub-warp of
    /// `width` threads. Unordered BFS/SSSP only.
    VirtualWarp {
        /// Sub-warp width (power of two, 2..=32).
        width: u32,
        /// Working-set representation.
        workset: WorkSet,
    },
    /// Direction-optimizing BFS (extension, after Beamer et al.):
    /// iterations whose working set exceeds `bottom_up_fraction × n` run
    /// the *bottom-up* step (unvisited nodes scan in-edges for a frontier
    /// parent, atomic-free, early-exit); smaller ones run the adaptive
    /// top-down variants. Requires the reverse graph
    /// (`DeviceGraph::upload_reverse` / `GpuGraph::enable_bottom_up`).
    /// BFS only.
    DirectionOptimized {
        /// Working-set fraction of `n` above which the bottom-up step is
        /// used (Beamer's heuristic; ~0.05-0.1 works well).
        bottom_up_fraction: f64,
    },
    /// CPU/GPU alternation (extension, after Hong et al. \[13\]):
    /// iterations with fewer than `gpu_threshold` working-set elements run
    /// on the host CPU; larger ones run on the GPU with the adaptive
    /// decision maker. Each processor switch transfers the value array and
    /// update vector. Unordered BFS/SSSP only.
    Hybrid {
        /// Working-set size at which execution moves to the GPU.
        gpu_threshold: u32,
    },
}

/// Working-set census policy for bitmap iterations (queue iterations know
/// their size for free from the length counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CensusMode {
    /// Never run the census kernel; termination uses the nonempty flag.
    Off,
    /// Run it every `sampling_period` iterations (the paper's Section
    /// VI.E overhead/accuracy trade-off).
    Sampled,
    /// Run it every iteration (used to regenerate Figure 2).
    Every,
}

/// PageRank-delta parameters (extension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRankConfig {
    /// Damping factor `d` (teleport probability `1 - d`).
    pub damping: f32,
    /// Residual threshold below which a node stops propagating.
    pub epsilon: f32,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            epsilon: 1e-4,
        }
    }
}

/// A typed query against a resident graph: the algorithm plus its
/// per-algorithm parameters. This is the unit of work of
/// [`crate::session::Session`] batches and the single entrypoint
/// `GpuGraph::run` — source nodes belong to the traversal queries and
/// PageRank's damping/ε belong to [`Query::PageRank`], so [`RunOptions`]
/// carries only algorithm-independent execution policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Breadth-first search (levels) from `src`.
    Bfs {
        /// Source node; must be `< n`.
        src: NodeId,
    },
    /// Single-source shortest paths (distances) from `src`. Requires a
    /// weighted graph.
    Sssp {
        /// Source node; must be `< n`.
        src: NodeId,
    },
    /// Connected components via min-label propagation (source-free).
    Cc,
    /// PageRank-delta with explicit parameters.
    PageRank {
        /// Damping factor and residual threshold.
        config: PageRankConfig,
    },
}

impl Query {
    /// A PageRank query with the default parameters (d = 0.85, ε = 1e-4).
    pub fn pagerank() -> Query {
        Query::PageRank {
            config: PageRankConfig::default(),
        }
    }

    /// The algorithm this query runs.
    pub fn algo(&self) -> Algo {
        match self {
            Query::Bfs { .. } => Algo::Bfs,
            Query::Sssp { .. } => Algo::Sssp,
            Query::Cc => Algo::Cc,
            Query::PageRank { .. } => Algo::PageRank,
        }
    }

    /// The traversal source (0 for the source-free algorithms, whose
    /// kernels ignore it).
    pub fn source(&self) -> NodeId {
        match self {
            Query::Bfs { src } | Query::Sssp { src } => *src,
            Query::Cc | Query::PageRank { .. } => 0,
        }
    }

    /// The PageRank parameters this query carries (defaults for the other
    /// algorithms, which never read them).
    pub fn pagerank_config(&self) -> PageRankConfig {
        match self {
            Query::PageRank { config } => *config,
            _ => PageRankConfig::default(),
        }
    }

    /// A canonical identity string for result caching: two queries share
    /// a key iff they compute bit-identical values on the same graph
    /// snapshot. Float parameters key by their exact bit pattern, so
    /// near-equal PageRank configurations never alias.
    ///
    /// The key deliberately excludes [`RunOptions`]: final values are
    /// bit-identical across strategies, variants, execution engines, and
    /// shard counts (an invariant this workspace enforces in the
    /// differential harness and property tests), so execution policy is
    /// not part of a result's identity. `agg-serve` keys its epoch cache
    /// with `(graph, epoch, cache_key)`.
    pub fn cache_key(&self) -> String {
        match self {
            Query::Bfs { src } => format!("bfs:{src}"),
            Query::Sssp { src } => format!("sssp:{src}"),
            Query::Cc => "cc".to_string(),
            Query::PageRank { config } => format!(
                "pagerank:{:08x}:{:08x}",
                config.damping.to_bits(),
                config.epsilon.to_bits()
            ),
        }
    }

    /// Short lowercase name of the queried algorithm.
    pub fn name(&self) -> &'static str {
        match self.algo() {
            Algo::Bfs => "bfs",
            Algo::Sssp => "sssp",
            Algo::Cc => "cc",
            Algo::PageRank => "pagerank",
        }
    }

    /// This query as a JSON object (telemetry labels, not a wire format).
    pub fn to_json(&self) -> Json {
        match self {
            Query::Bfs { src } | Query::Sssp { src } => {
                Json::obj([("algo", self.name().into()), ("src", (*src).into())])
            }
            Query::Cc => Json::obj([("algo", self.name().into())]),
            Query::PageRank { config } => Json::obj([
                ("algo", self.name().into()),
                ("damping", f64::from(config.damping).into()),
                ("epsilon", f64::from(config.epsilon).into()),
            ]),
        }
    }
}

/// Options for a traversal run: algorithm-independent execution policy
/// (strategy, tuning, census cadence, tracing). Per-algorithm parameters
/// live on [`Query`].
///
/// The struct is non-exhaustive so future knobs are not semver breaks;
/// construct it with the builder:
///
/// ```
/// use agg_core::{CensusMode, RunOptions};
///
/// let opts = RunOptions::adaptive().trace().census(CensusMode::Every).build();
/// assert!(opts.record_trace);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RunOptions {
    /// Selection strategy.
    pub strategy: Strategy,
    /// Thresholds + kernel-configuration tuning.
    pub tuning: AdaptiveConfig,
    /// Census policy.
    pub census: CensusMode,
    /// Record a per-iteration trace in the report.
    pub record_trace: bool,
    /// Iteration safety cap; 0 = automatic (`4n + 64`).
    pub max_iterations: u64,
    /// Charge the CSR H2D transfer to this run (the paper's reported
    /// times include CPU-GPU transfers).
    pub include_graph_transfer: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            strategy: Strategy::Adaptive,
            tuning: AdaptiveConfig::default(),
            census: CensusMode::Sampled,
            record_trace: false,
            max_iterations: 0,
            include_graph_transfer: true,
        }
    }
}

impl RunOptions {
    /// A builder seeded with the defaults (adaptive strategy, sampled
    /// census, graph transfer charged).
    pub fn builder() -> RunOptionsBuilder {
        RunOptionsBuilder {
            opts: RunOptions::default(),
        }
    }

    /// A builder for an adaptive-runtime run (alias of
    /// [`RunOptions::builder`], reading as the strategy it selects).
    pub fn adaptive() -> RunOptionsBuilder {
        RunOptions::builder()
    }

    /// A static-variant run with default tuning (census off — a fixed
    /// variant has no decision to inform).
    pub fn static_variant(v: Variant) -> RunOptions {
        RunOptions::builder().static_variant(v).build()
    }
}

/// Builder for [`RunOptions`] (see [`RunOptions::builder`]).
#[derive(Debug, Clone, Copy)]
pub struct RunOptionsBuilder {
    opts: RunOptions,
}

impl RunOptionsBuilder {
    /// Sets the selection strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.opts.strategy = strategy;
        self
    }

    /// Pins one fixed variant and turns the census off (a fixed variant
    /// has no decision to inform).
    pub fn static_variant(mut self, v: Variant) -> Self {
        self.opts.strategy = Strategy::Static(v);
        self.opts.census = CensusMode::Off;
        self
    }

    /// Overrides the decision-maker thresholds and kernel tuning.
    pub fn tuning(mut self, tuning: AdaptiveConfig) -> Self {
        self.opts.tuning = tuning;
        self
    }

    /// Sets the working-set census policy.
    pub fn census(mut self, census: CensusMode) -> Self {
        self.opts.census = census;
        self
    }

    /// Records a per-iteration trace in the report.
    pub fn trace(mut self) -> Self {
        self.opts.record_trace = true;
        self
    }

    /// Sets the iteration safety cap (0 = automatic, `4n + 64`).
    pub fn max_iterations(mut self, cap: u64) -> Self {
        self.opts.max_iterations = cap;
        self
    }

    /// Whether the CSR H2D transfer is charged to the run.
    pub fn include_graph_transfer(mut self, include: bool) -> Self {
        self.opts.include_graph_transfer = include;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> RunOptions {
        self.opts
    }
}

/// One iteration's trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: u32,
    /// The variant that executed the computation (for host iterations of
    /// a hybrid run, the variant the GPU *would* have used).
    pub variant: Variant,
    /// Where the decision maker's inputs sat in the Figure 11 space when
    /// this iteration's variant was chosen (recorded for every strategy,
    /// even those that ignore it).
    pub region: Region,
    /// Working-set size, when known *exactly* (queue mode, censused bitmap
    /// mode, or any host iteration).
    pub ws_size: Option<u32>,
    /// The working-set size estimate the decision maker consumed for this
    /// iteration — stale whenever the census was skipped. Comparing this
    /// against [`IterationRecord::ws_size`] measures inspector-sampling
    /// error.
    pub est_ws: u32,
    /// The average-outdegree estimate the decision maker consumed (the
    /// whole-graph average, or the last working-set census in
    /// [`DegreeMode::WorkingSet`]).
    pub est_avg_deg: f64,
    /// Sub-warp width when the iteration ran a virtual-warp kernel.
    pub vwarp_width: Option<u32>,
    /// True when a hybrid run executed this iteration on the host CPU.
    pub on_host: bool,
    /// True when this iteration changed variant (or processor, for hybrid
    /// runs) relative to the previous one.
    pub switched: bool,
    /// Modeled time spent in the inspector this iteration (census kernels
    /// + their result reads), ns. Subset of `iter_ns`.
    pub inspector_ns: f64,
    /// Modeled time of this iteration (all launches + reads + host work),
    /// ns.
    pub iter_ns: f64,
}

impl IterationRecord {
    /// This record as a JSON object (one element of the trace array).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("iteration", self.iteration.into()),
            ("variant", self.variant.name().into()),
            ("region", self.region.name().into()),
            ("ws_size", self.ws_size.into()),
            ("est_ws", self.est_ws.into()),
            ("est_avg_deg", self.est_avg_deg.into()),
            ("vwarp_width", self.vwarp_width.into()),
            ("on_host", self.on_host.into()),
            ("switched", self.switched.into()),
            ("inspector_ns", self.inspector_ns.into()),
            ("iter_ns", self.iter_ns.into()),
        ])
    }
}

/// The result of a traversal run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Final per-node values (levels, distances, or labels).
    pub values: Vec<u32>,
    /// Traversal iterations executed (excluding the terminating check).
    pub iterations: u32,
    /// Number of times the runtime changed variant (or processor, for
    /// hybrid runs).
    pub switches: u32,
    /// Kernel launches performed.
    pub launches: u64,
    /// Total modeled time: state init + iterations + final D2H (+ graph
    /// H2D when configured) + host work, ns.
    pub total_ns: f64,
    /// Modeled time before the first iteration: state reset (+ the graph
    /// H2D transfer when configured), ns.
    pub setup_ns: f64,
    /// Modeled time after the last completed iteration: the terminating
    /// workset generation + emptiness check and the final values D2H, ns.
    /// `setup_ns + metrics.iter_ns_total + teardown_ns == total_ns`.
    pub teardown_ns: f64,
    /// Modeled host-CPU time within the total (hybrid runs), ns.
    pub host_ns: f64,
    /// Kernel statistics summed over every launch of this run (memory
    /// traffic, divergence, atomics) — the raw material of the locality
    /// and divergence experiments.
    pub gpu_stats: agg_gpu_sim::KernelStats,
    /// Always-on counters: per-variant iteration histogram, census
    /// launches, inspector time (cheap; recorded for every run).
    pub metrics: Metrics,
    /// Per-kernel launch profiles for this run (compute vs. bandwidth
    /// time, coalescing, occupancy). Always recorded.
    pub profile: agg_gpu_sim::ProfileReport,
    /// Per-iteration trace (empty unless requested).
    pub trace: Vec<IterationRecord>,
}

impl RunReport {
    /// Total modeled time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Reinterprets the value array as f32 (PageRank ranks).
    pub fn values_as_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&b| f32::from_bits(b)).collect()
    }

    /// The full telemetry payload as a JSON object: run summary, always-on
    /// metrics, per-kernel profile, and the trace (empty array unless the
    /// run recorded one). Values are omitted — they are data, not
    /// telemetry.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", self.values.len().into()),
            ("iterations", self.iterations.into()),
            ("switches", self.switches.into()),
            ("launches", self.launches.into()),
            ("total_ns", self.total_ns.into()),
            ("setup_ns", self.setup_ns.into()),
            ("teardown_ns", self.teardown_ns.into()),
            ("host_ns", self.host_ns.into()),
            ("metrics", self.metrics.to_json()),
            ("profile", self.profile.to_json()),
            (
                "trace",
                Json::arr(self.trace.iter().map(IterationRecord::to_json)),
            ),
        ])
    }
}

/// Engine errors.
#[derive(Debug)]
pub enum CoreError {
    /// A simulator error (OOB, bad launch, ...).
    Sim(SimError),
    /// The traversal did not converge within the iteration cap.
    NoConvergence {
        /// The cap that was hit.
        iterations: u64,
    },
    /// The query is malformed for the target graph: an out-of-range
    /// source, SSSP on a graph without edge weights, or PageRank
    /// parameters outside their domain. Every rejection is an `Err`, never
    /// a panic.
    InvalidQuery {
        /// Explanation of the rejected query.
        detail: String,
    },
    /// The algorithm/strategy combination does not exist (e.g. ordered
    /// connected components, virtual-warp CC, or a non-power-of-two
    /// sub-warp width).
    Unsupported {
        /// Explanation of the unsupported combination.
        detail: String,
    },
    /// The session or service was configured with values outside their
    /// domain (e.g. a parallel session with zero workers), following the
    /// `Device::try_new` / `SimError::InvalidConfig` convention: every
    /// rejection is an `Err`, never a silent clamp.
    InvalidConfig {
        /// Explanation of the rejected configuration.
        detail: String,
    },
    /// A worker thread panicked while executing a batch query. The batch
    /// fails with this typed error instead of propagating the unwind, so
    /// one poisoned query can never take down the process hosting the
    /// session.
    WorkerPanic {
        /// The worker (thread index) that panicked.
        worker: usize,
        /// Submission index of the query that was executing.
        query_index: usize,
        /// The panic payload, when it was a string.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::NoConvergence { iterations } => {
                write!(
                    f,
                    "traversal did not converge within {iterations} iterations"
                )
            }
            CoreError::InvalidQuery { detail } => write!(f, "invalid query: {detail}"),
            CoreError::Unsupported { detail } => write!(f, "unsupported combination: {detail}"),
            CoreError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            CoreError::WorkerPanic {
                worker,
                query_index,
                detail,
            } => write!(
                f,
                "worker {worker} panicked while executing query #{query_index}: {detail}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

// ------------------------------------------------------------------------
// Shared per-iteration machinery
// ------------------------------------------------------------------------

/// Everything one traversal needs, bundled so iteration helpers stay
/// readable.
struct Ctx<'a> {
    dev: &'a mut Device,
    kernels: &'a GpuKernels,
    dg: &'a DeviceGraph,
    state: &'a AlgoState,
    algo: Algo,
    tuning: AdaptiveConfig,
    census: CensusMode,
    pagerank: PageRankConfig,
    thread_threads: u32,
    block_threads: u32,
    /// Modeled time spent in inspector censuses (launch + result read), ns.
    inspector_ns: f64,
    /// Working-set size censuses launched (bitmap `count` kernel).
    census_launches: u32,
    /// Degree censuses launched (working-set outdegree inspector).
    degree_census_launches: u32,
}

impl<'a> Ctx<'a> {
    /// Steps 1-4: prep, workset generation into `ws_kind`, termination
    /// check, optional census. Returns `None` when the working set is
    /// empty (traversal done), else `(limit, known ws size)`.
    ///
    /// `force_census` makes a `Sampled` bitmap iteration run the census
    /// even off-cadence — the engine sets it right after a representation
    /// switch into bitmap mode so the decision maker never keeps running
    /// on a size estimate from before the switch. (`Off` stays off.)
    fn gen_and_check(
        &mut self,
        ws_kind: WorkSet,
        iteration: u32,
        force_census: bool,
    ) -> Result<Option<(u32, Option<u32>)>, CoreError> {
        let n = self.dg.n;
        self.dev.launch(
            &self.kernels.prep,
            Grid::new(1, 32),
            &self.state.prep_args(),
        )?;
        match ws_kind {
            WorkSet::Bitmap => {
                self.dev.launch(
                    &self.kernels.gen_bitmap,
                    Grid::linear(n as u64, self.thread_threads),
                    &self.state.gen_bitmap_args(n),
                )?;
                if self.dev.read_word(self.state.flag, 0)? == 0 {
                    return Ok(None);
                }
                let due = match self.census {
                    CensusMode::Off => false,
                    CensusMode::Every => true,
                    CensusMode::Sampled => {
                        force_census || iteration.is_multiple_of(self.tuning.sampling_period.max(1))
                    }
                };
                let ws = if due {
                    let census_start = self.dev.elapsed_ns();
                    self.dev.launch(
                        &self.kernels.count_bitmap,
                        Grid::linear(n as u64, self.thread_threads),
                        &self.state.count_args(n),
                    )?;
                    let count = self.dev.read_word(self.state.count, 0)?;
                    self.inspector_ns += self.dev.elapsed_ns() - census_start;
                    self.census_launches += 1;
                    Some(count)
                } else {
                    None
                };
                Ok(Some((n, ws)))
            }
            WorkSet::Queue => {
                let gen = if self.tuning.scan_queue_gen {
                    &self.kernels.gen_queue_scan
                } else {
                    &self.kernels.gen_queue
                };
                self.dev.launch(
                    gen,
                    Grid::linear(n as u64, self.thread_threads),
                    &self.state.gen_queue_args(n),
                )?;
                let len = self.dev.read_word(self.state.queue_len, 0)?;
                if len == 0 {
                    return Ok(None);
                }
                Ok(Some((len, Some(len))))
            }
        }
    }

    /// Inspector extension: degree census over the current working set;
    /// returns the summed outdegree of active nodes. The device-side
    /// accumulator is a (lo, hi) u32 pair so sums past 2^32 are exact.
    fn degree_census(&mut self, ws_kind: WorkSet, limit: u32) -> Result<u64, CoreError> {
        let kernel = match ws_kind {
            WorkSet::Bitmap => &self.kernels.degree_census_bitmap,
            WorkSet::Queue => &self.kernels.degree_census_queue,
        };
        let census_start = self.dev.elapsed_ns();
        self.dev.launch(
            kernel,
            Grid::linear(limit as u64, self.thread_threads),
            &self.state.degree_census_args(self.dg, ws_kind, limit),
        )?;
        let lo = self.dev.read_word(self.state.deg_sum, 0)?;
        let hi = self.dev.read_word(self.state.deg_sum, 1)?;
        self.inspector_ns += self.dev.elapsed_ns() - census_start;
        self.degree_census_launches += 1;
        Ok(((hi as u64) << 32) | lo as u64)
    }

    /// Step 5: findmin for ordered SSSP.
    fn findmin(&mut self, ws_kind: WorkSet, limit: u32) -> Result<(), CoreError> {
        let fk = match ws_kind {
            WorkSet::Bitmap => &self.kernels.findmin_bitmap,
            WorkSet::Queue => &self.kernels.findmin_queue,
        };
        self.dev.launch(
            fk,
            Grid::linear(limit as u64, self.thread_threads),
            &self.state.findmin_args(ws_kind, limit),
        )?;
        Ok(())
    }

    /// Step 6: the computation kernel for a standard (non-virtual-warp)
    /// variant.
    fn compute(&mut self, variant: Variant, limit: u32) -> Result<(), CoreError> {
        let grid = match variant.mapping {
            Mapping::Thread => Grid::linear(limit as u64, self.thread_threads),
            Mapping::Block => Grid::new(limit, self.block_threads),
        };
        match self.algo {
            Algo::Bfs => {
                self.dev.launch(
                    self.kernels.bfs_kernel(variant),
                    grid,
                    &self.state.bfs_args(self.dg, variant, limit),
                )?;
            }
            Algo::Sssp => {
                self.dev.launch(
                    self.kernels.sssp_kernel(variant),
                    grid,
                    &self.state.sssp_args(self.dg, variant, limit),
                )?;
            }
            Algo::Cc => {
                self.dev.launch(
                    self.kernels.cc_kernel(variant),
                    grid,
                    &self.state.cc_args(self.dg, variant, limit),
                )?;
            }
            Algo::PageRank => {
                // Deterministic claim → gather pair (see agg-kernels'
                // pagerank module docs): the claim folds residuals into
                // ranks and publishes push values; the gather accumulates
                // them per destination over the reverse CSR in a fixed
                // order, so ranks are bit-identical across variants,
                // geometries, execution modes, and shards.
                self.dev.launch(
                    self.kernels.pagerank_kernel(variant),
                    grid,
                    &self
                        .state
                        .pagerank_claim_args(self.dg, variant, limit, self.pagerank.damping),
                )?;
                let n = self.dg.n;
                self.dev.launch(
                    &self.kernels.pagerank_gather,
                    Grid::linear(n as u64, self.thread_threads),
                    &self
                        .state
                        .pagerank_gather_args(self.dg, n, self.pagerank.epsilon),
                )?;
                // Clear consumed push values with a device memset so the
                // next iteration's gather only sees fresh claims.
                self.dev.fill(self.state.aux2, 0)?;
            }
        }
        Ok(())
    }

    /// Step 6, virtual-warp flavor.
    fn compute_vwarp(&mut self, ws_kind: WorkSet, limit: u32, width: u32) -> Result<(), CoreError> {
        let grid = Grid::linear(limit as u64 * width as u64, self.thread_threads);
        let (kernel, args) = match self.algo {
            Algo::Bfs => (
                self.kernels.vwarp_kernel(true, ws_kind),
                self.state.bfs_vwarp_args(self.dg, ws_kind, limit, width),
            ),
            Algo::Sssp => (
                self.kernels.vwarp_kernel(false, ws_kind),
                self.state.sssp_vwarp_args(self.dg, ws_kind, limit, width),
            ),
            Algo::Cc | Algo::PageRank => unreachable!("rejected during validation"),
        };
        self.dev.launch(kernel, grid, &args)?;
        Ok(())
    }
}

/// Rejects malformed queries and nonexistent algorithm/strategy
/// combinations up front, before any state is touched. The session layer
/// calls this to fail a whole batch fast.
pub(crate) fn validate_query(
    query: Query,
    options: &RunOptions,
    dg: &DeviceGraph,
) -> Result<(), CoreError> {
    let algo = query.algo();
    if algo == Algo::Sssp && dg.weights.is_none() {
        return Err(CoreError::InvalidQuery {
            detail: "SSSP requires a weighted graph (use generate_weighted / with_weights)".into(),
        });
    }
    if matches!(query, Query::Bfs { .. } | Query::Sssp { .. }) && dg.n > 0 {
        let src = query.source();
        if src >= dg.n {
            return Err(CoreError::InvalidQuery {
                detail: format!("source {src} out of range (graph has {} nodes)", dg.n),
            });
        }
    }
    if let Query::PageRank { config } = query {
        if !(config.damping > 0.0 && config.damping < 1.0) {
            return Err(CoreError::InvalidQuery {
                detail: format!("PageRank damping {} must be in (0, 1)", config.damping),
            });
        }
        if config.epsilon.is_nan() || config.epsilon <= 0.0 {
            return Err(CoreError::InvalidQuery {
                detail: format!("PageRank epsilon {} must be positive", config.epsilon),
            });
        }
    }
    match (algo, options.strategy) {
        (Algo::Cc | Algo::PageRank, Strategy::Static(v)) if v.order == AlgoOrder::Ordered => {
            Err(CoreError::Unsupported {
                detail: format!("{algo:?} has no ordered formulation"),
            })
        }
        (Algo::Cc | Algo::PageRank, Strategy::VirtualWarp { .. }) => Err(CoreError::Unsupported {
            detail: "virtual-warp kernels exist for BFS/SSSP only".into(),
        }),
        (Algo::Cc | Algo::PageRank, Strategy::Hybrid { .. }) => Err(CoreError::Unsupported {
            detail: "hybrid execution exists for BFS/SSSP only".into(),
        }),
        (a, Strategy::DirectionOptimized { .. }) if a != Algo::Bfs => Err(CoreError::Unsupported {
            detail: "direction-optimized traversal exists for BFS only".into(),
        }),
        (_, Strategy::VirtualWarp { width, .. })
            if !(2..=32).contains(&width) || !width.is_power_of_two() =>
        {
            Err(CoreError::Unsupported {
                detail: format!("virtual-warp width {width} must be a power of two in 2..=32"),
            })
        }
        _ => Ok(()),
    }
}

fn empty_report() -> RunReport {
    RunReport {
        values: Vec::new(),
        iterations: 0,
        switches: 0,
        launches: 0,
        total_ns: 0.0,
        setup_ns: 0.0,
        teardown_ns: 0.0,
        host_ns: 0.0,
        gpu_stats: agg_gpu_sim::KernelStats::default(),
        metrics: Metrics::default(),
        profile: agg_gpu_sim::ProfileReport::default(),
        trace: Vec::new(),
    }
}

/// Per-run kernel statistics = cumulative-after minus cumulative-before.
fn subtract_kernel_stats(
    after: agg_gpu_sim::KernelStats,
    before: agg_gpu_sim::KernelStats,
) -> agg_gpu_sim::KernelStats {
    use agg_gpu_sim::timing::CostStats;
    let (a, b) = (after.totals, before.totals);
    agg_gpu_sim::KernelStats {
        issue_cycles: after.issue_cycles - before.issue_cycles,
        stall_cycles: after.stall_cycles - before.stall_cycles,
        totals: CostStats {
            instructions: a.instructions - b.instructions,
            active_lane_instructions: a.active_lane_instructions - b.active_lane_instructions,
            loads: a.loads - b.loads,
            stores: a.stores - b.stores,
            mem_transactions: a.mem_transactions - b.mem_transactions,
            mem_bytes: a.mem_bytes - b.mem_bytes,
            atomics: a.atomics - b.atomics,
            atomic_conflicts: a.atomic_conflicts - b.atomic_conflicts,
            divergent_branches: a.divergent_branches - b.divergent_branches,
            shared_accesses: a.shared_accesses - b.shared_accesses,
            shared_replays: a.shared_replays - b.shared_replays,
            syncs: a.syncs - b.syncs,
            barriers: a.barriers - b.barriers,
        },
    }
}

/// Snapshot of the device's cumulative race-detector counters
/// (launches checked, benign words, harmful words).
fn race_counts(dev: &Device) -> (u64, u64, u64) {
    let s = dev.race_summary();
    (s.launches_checked, s.benign_words, s.harmful_words)
}

/// Attributes the device's race-counter growth since `before` to `metrics`
/// (the device accumulates across runs; the run owns only its delta).
fn record_race_deltas(metrics: &mut Metrics, dev: &Device, before: (u64, u64, u64)) {
    let (launches, benign, harmful) = race_counts(dev);
    metrics.race_launches_checked = launches - before.0;
    metrics.race_benign_words = benign - before.1;
    metrics.race_harmful_words = harmful - before.2;
}

/// Runs one typed query. `state` is reset for the query's source
/// internally; the graph must already be uploaded as `dg`.
pub fn run(
    dev: &mut Device,
    kernels: &GpuKernels,
    dg: &DeviceGraph,
    state: &AlgoState,
    query: Query,
    options: &RunOptions,
) -> Result<RunReport, CoreError> {
    run_inner(dev, kernels, dg, state, query, options, None)
}

/// A warm start for incremental repair: the previous fixpoint plus the
/// net-inserted edges whose relaxation seeds the first working set.
struct WarmSpec<'a> {
    /// The value array of the previous fixpoint (length `n`).
    values: &'a [u32],
    /// Net-inserted `(src, dst, weight)` edges. Weights are remapped per
    /// algorithm before upload (BFS → 1, CC → 0, SSSP → as given).
    added: &'a [(u32, u32, u32)],
}

/// Runs one typed query *warm*: instead of resetting state for the
/// query's source, the device starts from `warm_values` (the fixpoint of
/// the pre-update graph, with any affecting deletions already ruled out
/// by the caller) and seeds the working set by relaxing `added` — the
/// update batch's net-inserted edges — via the repair kernel. Because
/// BFS levels, SSSP distances, and CC labels are unique fixpoints of a
/// monotone relaxation, the result is bit-identical to a from-scratch
/// run on the updated graph (`dg` must already hold it).
///
/// Only unordered relaxation can re-improve finite values, so ordered
/// static variants, `Hybrid`, and `DirectionOptimized` are rejected
/// (`Adaptive` always selects unordered variants), as is PageRank.
pub fn run_warm(
    dev: &mut Device,
    kernels: &GpuKernels,
    dg: &DeviceGraph,
    state: &AlgoState,
    query: Query,
    options: &RunOptions,
    warm_values: &[u32],
    added: &[(u32, u32, u32)],
) -> Result<RunReport, CoreError> {
    validate_query(query, options, dg)?;
    if query.algo() == Algo::PageRank {
        return Err(CoreError::Unsupported {
            detail: "warm-start repair covers the monotone algorithms (BFS/SSSP/CC); \
                     PageRank updates recompute"
                .into(),
        });
    }
    match options.strategy {
        Strategy::Hybrid { .. } | Strategy::DirectionOptimized { .. } => {
            return Err(CoreError::Unsupported {
                detail: "warm-start repair supports Adaptive, Static (unordered), and \
                         VirtualWarp strategies only"
                    .into(),
            });
        }
        Strategy::Static(v) if v.order == AlgoOrder::Ordered => {
            return Err(CoreError::Unsupported {
                detail: "warm-start repair needs unordered relaxation; ordered variants \
                         never re-improve finite values"
                    .into(),
            });
        }
        _ => {}
    }
    if dg.n == 0 {
        return Ok(empty_report());
    }
    if warm_values.len() != dg.n as usize {
        return Err(CoreError::InvalidQuery {
            detail: format!(
                "warm value array has {} entries for a {}-node graph",
                warm_values.len(),
                dg.n
            ),
        });
    }
    run_inner(
        dev,
        kernels,
        dg,
        state,
        query,
        options,
        Some(WarmSpec {
            values: warm_values,
            added,
        }),
    )
}

fn run_inner(
    dev: &mut Device,
    kernels: &GpuKernels,
    dg: &DeviceGraph,
    state: &AlgoState,
    query: Query,
    options: &RunOptions,
    warm: Option<WarmSpec<'_>>,
) -> Result<RunReport, CoreError> {
    validate_query(query, options, dg)?;
    if dg.n == 0 {
        return Ok(empty_report());
    }
    let algo = query.algo();
    let src = query.source();
    let pagerank = query.pagerank_config();
    if let Strategy::Hybrid { gpu_threshold } = options.strategy {
        return run_hybrid(dev, kernels, dg, state, algo, src, options, gpu_threshold);
    }
    if matches!(options.strategy, Strategy::DirectionOptimized { .. }) && dg.rrow.is_none() {
        return Err(CoreError::Unsupported {
            detail: "direction-optimized BFS needs the reverse graph; call \
                     GpuGraph::enable_bottom_up (or DeviceGraph::upload_reverse) first"
                .into(),
        });
    }
    if algo == Algo::PageRank && dg.rrow.is_none() {
        return Err(CoreError::Unsupported {
            detail: "PageRank's deterministic gather needs the reverse graph; call \
                     DeviceGraph::upload_reverse first (GpuGraph and Session do this \
                     automatically)"
                .into(),
        });
    }
    let n = dg.n;
    let tuning = options.tuning;
    let cap = if options.max_iterations == 0 {
        4 * n as u64 + 64
    } else {
        options.max_iterations
    };
    let start_ns = dev.elapsed_ns();
    let start_launches = dev.launch_count();
    let start_stats = dev.cumulative_stats();
    let start_profile = dev.profile().clone();
    let races_before = race_counts(dev);
    match &warm {
        Some(spec) => {
            // Warm start: previous fixpoint in, working set seeded by
            // relaxing the delta edge list (all charged to setup).
            state.reset_warm(dev, spec.values)?;
            if !spec.added.is_empty() {
                let count = spec.added.len();
                let esrc: Vec<u32> = spec.added.iter().map(|e| e.0).collect();
                let edst: Vec<u32> = spec.added.iter().map(|e| e.1).collect();
                let ew: Vec<u32> = spec
                    .added
                    .iter()
                    .map(|e| match algo {
                        Algo::Bfs => 1,
                        Algo::Cc => 0,
                        _ => e.2,
                    })
                    .collect();
                let esrc = dev.alloc_from_slice("repair_esrc", &esrc);
                let edst = dev.alloc_from_slice("repair_edst", &edst);
                let ew = dev.alloc_from_slice("repair_ew", &ew);
                dev.launch(
                    &kernels.repair_relax,
                    Grid::linear(count as u64, tuning.thread_block_threads),
                    &state.repair_args(esrc, edst, ew, count as u32),
                )?;
            }
        }
        None => match algo {
            Algo::Cc => state.reset_cc(dev, n)?,
            Algo::PageRank => state.reset_pagerank(dev, pagerank.damping)?,
            _ => state.reset(dev, src)?,
        },
    }
    // Setup covers everything before the first iteration; the graph H2D
    // transfer (when charged to this run) belongs to it. Folding it in
    // here keeps `setup + Σ iter + teardown == total` exact.
    let mut setup_ns = dev.elapsed_ns() - start_ns;
    if options.include_graph_transfer {
        setup_ns += transfer_ns(dev.config(), dg.bytes);
    }

    let block_threads =
        tuning.block_mapping_threads(dg.avg_outdegree, dev.config().max_threads_per_block);
    let thread_threads = tuning.thread_block_threads;
    let mut ctx = Ctx {
        dev,
        kernels,
        dg,
        state,
        algo,
        tuning,
        census: options.census,
        pagerank,
        thread_threads,
        block_threads,
        inspector_ns: 0.0,
        census_launches: 0,
        degree_census_launches: 0,
    };

    let mut est_ws: u32 = match &warm {
        // A repair's first working set is at most one node per delta edge.
        Some(spec) => (spec.added.len() as u32).clamp(1, n),
        None if matches!(algo, Algo::Cc | Algo::PageRank) => n,
        None => 1,
    };
    let mut est_avg_deg: f64 = dg.avg_outdegree;
    let mut prev_variant: Option<Variant> = None;
    let mut switches = 0u32;
    let mut iterations = 0u32;
    let mut metrics = Metrics::default();
    let mut trace = Vec::new();
    // Start of the pass that ends the traversal: its prep + workset-gen +
    // emptiness check are charged to teardown, not to any iteration.
    let mut teardown_start;

    loop {
        if iterations as u64 >= cap {
            return Err(CoreError::NoConvergence { iterations: cap });
        }
        let iter_start = ctx.dev.elapsed_ns();
        teardown_start = iter_start;
        let inspector_before = ctx.inspector_ns;
        let (est_ws_used, est_deg_used) = (est_ws, est_avg_deg);
        let iter_region = region(&tuning, est_ws, n, est_avg_deg);
        let mut vwarp: Option<u32> = None;
        let mut bottom_up = false;
        let variant = match options.strategy {
            Strategy::Static(v) => v,
            Strategy::Adaptive => decide(&tuning, est_ws, n, est_avg_deg),
            Strategy::VirtualWarp { width, workset } => {
                vwarp = Some(width);
                Variant::new(AlgoOrder::Unordered, Mapping::Thread, workset)
            }
            Strategy::DirectionOptimized { bottom_up_fraction } => {
                if (est_ws as f64) > bottom_up_fraction * n as f64 {
                    // bottom-up step: frontier must be a bitmap
                    bottom_up = true;
                    Variant::new(AlgoOrder::Unordered, Mapping::Thread, WorkSet::Bitmap)
                } else {
                    decide(&tuning, est_ws, n, est_avg_deg)
                }
            }
            Strategy::Hybrid { .. } => unreachable!("dispatched above"),
        };
        let switched = prev_variant.is_some_and(|p| p != variant);
        // Entering bitmap mode from a queue iteration invalidates the size
        // estimate's provenance (queues report exact sizes for free; the
        // bitmap only reports when censused). Force an off-cadence census
        // so the next decisions never run on a pre-switch estimate.
        let force_census = switched
            && variant.workset == WorkSet::Bitmap
            && prev_variant.is_some_and(|p| p.workset != variant.workset);

        let Some((limit, ws_known)) =
            ctx.gen_and_check(variant.workset, iterations + 1, force_census)?
        else {
            break;
        };
        iterations += 1;
        // Counted only once the pass is known to execute: a variant chosen
        // for the terminating (empty-workset) pass never runs a compute
        // kernel, so it is not a switch — keeps `switches` equal to the
        // number of `switched` records in the trace.
        if switched {
            switches += 1;
        }
        if let Some(w) = ws_known {
            est_ws = w;
            // Working-set degree inspector (extension ablation): piggyback
            // on the same sampling cadence as the node census.
            if matches!(options.strategy, Strategy::Adaptive)
                && tuning.degree_mode == DegreeMode::WorkingSet
                && w > 0
                && iterations.is_multiple_of(tuning.sampling_period.max(1))
            {
                let deg_sum = ctx.degree_census(variant.workset, limit)?;
                est_avg_deg = deg_sum as f64 / w as f64;
            }
        }

        if algo == Algo::Sssp && variant.order == AlgoOrder::Ordered {
            ctx.findmin(variant.workset, limit)?;
        }

        if bottom_up {
            // `iterations` is 1-based and BFS is level-synchronous, so the
            // frontier being consumed sits at level `iterations - 1` and
            // newly claimed nodes get level `iterations`.
            ctx.dev.launch(
                &ctx.kernels.bfs_bottom_up,
                Grid::linear(n as u64, ctx.thread_threads),
                &ctx.state.bfs_bottom_up_args(ctx.dg, n, iterations),
            )?;
            metrics.bottom_up_iterations += 1;
        } else {
            match vwarp {
                Some(width) => ctx.compute_vwarp(variant.workset, limit, width)?,
                None => ctx.compute(variant, limit)?,
            }
        }

        let iter_ns = ctx.dev.elapsed_ns() - iter_start;
        metrics.record_iteration(variant, iter_ns);
        if options.record_trace {
            trace.push(IterationRecord {
                iteration: iterations,
                variant,
                region: iter_region,
                ws_size: ws_known,
                est_ws: est_ws_used,
                est_avg_deg: est_deg_used,
                vwarp_width: vwarp,
                on_host: false,
                switched,
                inspector_ns: ctx.inspector_ns - inspector_before,
                iter_ns,
            });
        }
        prev_variant = Some(variant);
    }

    metrics.switches = switches;
    metrics.census_launches = ctx.census_launches;
    metrics.degree_census_launches = ctx.degree_census_launches;
    metrics.inspector_ns_total = ctx.inspector_ns;
    record_race_deltas(&mut metrics, dev, races_before);

    let values = dev.read(state.value); // final D2H, charged
    let end_ns = dev.elapsed_ns();
    let teardown_ns = end_ns - teardown_start;
    let mut total_ns = end_ns - start_ns;
    if options.include_graph_transfer {
        total_ns += transfer_ns(dev.config(), dg.bytes);
    }
    let gpu_stats = subtract_kernel_stats(dev.cumulative_stats(), start_stats);
    let profile = dev.profile().since(&start_profile);
    Ok(RunReport {
        values,
        iterations,
        switches,
        launches: dev.launch_count() - start_launches,
        total_ns,
        setup_ns,
        teardown_ns,
        host_ns: 0.0,
        gpu_stats,
        metrics,
        profile,
        trace,
    })
}

/// Hybrid CPU/GPU execution (extension): iterations whose working set is
/// below `gpu_threshold` run on the host; at each processor switch the
/// value array and update vector cross PCIe (charged). The GPU side uses
/// the adaptive decision maker.
#[allow(clippy::too_many_arguments)]
fn run_hybrid(
    dev: &mut Device,
    kernels: &GpuKernels,
    dg: &DeviceGraph,
    state: &AlgoState,
    algo: Algo,
    src: NodeId,
    options: &RunOptions,
    gpu_threshold: u32,
) -> Result<RunReport, CoreError> {
    let n = dg.n as usize;
    let tuning = options.tuning;
    let cap = if options.max_iterations == 0 {
        4 * n as u64 + 64
    } else {
        options.max_iterations
    };
    let cpu_model = CpuCostModel::default();
    // The host owns the CSR (it uploaded it), so reading it back for the
    // host-side iterations is free.
    let row = dev.debug_read(dg.row)?;
    let col = dev.debug_read(dg.col)?;
    let weights = dg.weights.map(|w| dev.debug_read(w)).transpose()?;

    let start_ns = dev.elapsed_ns();
    let start_launches = dev.launch_count();
    let start_stats = dev.cumulative_stats();
    let start_profile = dev.profile().clone();
    let races_before = race_counts(dev);
    state.reset(dev, src)?;
    let mut setup_ns = dev.elapsed_ns() - start_ns;
    if options.include_graph_transfer {
        setup_ns += transfer_ns(dev.config(), dg.bytes);
    }

    let mut host_values = vec![INF; n];
    let mut host_update = vec![0u32; n];
    host_values[src as usize] = 0;
    host_update[src as usize] = 1;

    let mut on_device = false;
    let mut est_ws: u32 = 1;
    let mut iterations = 0u32;
    let mut switches = 0u32;
    let mut host_ns = 0.0f64;
    let mut metrics = Metrics::default();
    let mut trace = Vec::new();
    let mut teardown_start;

    let block_threads =
        tuning.block_mapping_threads(dg.avg_outdegree, dev.config().max_threads_per_block);
    let thread_threads = tuning.thread_block_threads;

    loop {
        if iterations as u64 >= cap {
            return Err(CoreError::NoConvergence { iterations: cap });
        }
        let iter_start = dev.elapsed_ns() + host_ns;
        teardown_start = iter_start;
        let est_ws_used = est_ws;
        let iter_region = region(&tuning, est_ws, dg.n, dg.avg_outdegree);
        let want_device = est_ws >= gpu_threshold.max(1);
        let switched = want_device != on_device;
        if switched {
            if want_device {
                // host -> device: upload values and update vector.
                dev.write(state.value, &host_values)?;
                dev.write(state.update, &host_update)?;
            } else {
                // device -> host: download values and update vector.
                host_values = dev.read(state.value);
                host_update = dev.read(state.update);
            }
            on_device = want_device;
        }

        let mut iter_inspector_ns = 0.0f64;
        let (variant, ws_known, done) = if on_device {
            let variant = decide(&tuning, est_ws, dg.n, dg.avg_outdegree);
            let mut ctx = Ctx {
                dev,
                kernels,
                dg,
                state,
                algo,
                tuning,
                census: options.census,
                // hybrid execution exists for BFS/SSSP only (validated),
                // so the PageRank parameters are never read
                pagerank: PageRankConfig::default(),
                thread_threads,
                block_threads,
                inspector_ns: 0.0,
                census_launches: 0,
                degree_census_launches: 0,
            };
            let out = match ctx.gen_and_check(variant.workset, iterations + 1, false)? {
                None => (variant, None, true),
                Some((limit, ws_known)) => {
                    ctx.compute(variant, limit)?;
                    if let Some(w) = ws_known {
                        est_ws = w;
                    }
                    (variant, ws_known, false)
                }
            };
            iter_inspector_ns = ctx.inspector_ns;
            metrics.census_launches += ctx.census_launches;
            metrics.degree_census_launches += ctx.degree_census_launches;
            metrics.inspector_ns_total += ctx.inspector_ns;
            out
        } else {
            // One frontier iteration on the host, instrumented like the
            // agg-cpu baselines.
            let frontier: Vec<u32> = (0..n as u32)
                .filter(|&v| host_update[v as usize] != 0)
                .collect();
            if frontier.is_empty() {
                (decide(&tuning, 0, dg.n, dg.avg_outdegree), Some(0), true)
            } else {
                let mut c = agg_cpu::CpuCounters::default();
                for &v in &frontier {
                    host_update[v as usize] = 0;
                }
                for &u in &frontier {
                    c.nodes += 1;
                    c.queue_ops += 1;
                    let du = host_values[u as usize];
                    let (lo, hi) = (row[u as usize] as usize, row[u as usize + 1] as usize);
                    for (e, &dst) in col[lo..hi].iter().enumerate().map(|(i, d)| (lo + i, d)) {
                        c.edges += 1;
                        let m = dst as usize;
                        let cand = match algo {
                            Algo::Bfs => du.saturating_add(1),
                            Algo::Sssp => {
                                du.saturating_add(weights.as_ref().expect("validated weighted")[e])
                            }
                            Algo::Cc | Algo::PageRank => {
                                unreachable!("rejected during validation")
                            }
                        };
                        if cand < host_values[m] {
                            host_values[m] = cand;
                            host_update[m] = 1;
                        }
                    }
                }
                host_ns += cpu_model.modeled_ns(&c);
                let ws = host_update.iter().filter(|&&u| u != 0).count() as u32;
                est_ws = ws;
                (
                    decide(&tuning, est_ws, dg.n, dg.avg_outdegree),
                    Some(ws),
                    false,
                )
            }
        };

        if done {
            break;
        }
        iterations += 1;
        // As in `run`: a migration decided for the terminating pass moved
        // data (and was charged) but ran no iteration, so it is not counted.
        if switched {
            switches += 1;
        }
        let iter_ns = (dev.elapsed_ns() + host_ns) - iter_start;
        metrics.record_iteration(variant, iter_ns);
        if !on_device {
            metrics.host_iterations += 1;
        }
        if options.record_trace {
            trace.push(IterationRecord {
                iteration: iterations,
                variant,
                region: iter_region,
                ws_size: ws_known,
                est_ws: est_ws_used,
                est_avg_deg: dg.avg_outdegree,
                vwarp_width: None,
                on_host: !on_device,
                switched,
                inspector_ns: iter_inspector_ns,
                iter_ns,
            });
        }
    }

    metrics.switches = switches;
    record_race_deltas(&mut metrics, dev, races_before);

    // Final result lives wherever the last iteration ran.
    let values = if on_device {
        dev.read(state.value)
    } else {
        host_values
    };
    let end_ns = dev.elapsed_ns() + host_ns;
    let teardown_ns = end_ns - teardown_start;
    let mut total_ns = end_ns - start_ns;
    if options.include_graph_transfer {
        total_ns += transfer_ns(dev.config(), dg.bytes);
    }
    let gpu_stats = subtract_kernel_stats(dev.cumulative_stats(), start_stats);
    let profile = dev.profile().since(&start_profile);
    Ok(RunReport {
        values,
        iterations,
        switches,
        launches: dev.launch_count() - start_launches,
        total_ns,
        setup_ns,
        teardown_ns,
        host_ns,
        gpu_stats,
        metrics,
        profile,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_graph::{traversal, Dataset, GraphBuilder, Scale};

    fn setup(g: &agg_graph::CsrGraph) -> (Device, GpuKernels, DeviceGraph, AlgoState) {
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let kernels = GpuKernels::build();
        let dg = DeviceGraph::upload(&mut dev, g);
        let st = AlgoState::new(&mut dev, dg.n, 0).unwrap();
        (dev, kernels, dg, st)
    }

    #[test]
    fn adaptive_bfs_matches_reference_on_all_tiny_datasets() {
        for d in Dataset::ALL {
            let g = d.generate(Scale::Tiny, 21);
            let (mut dev, k, dg, st) = setup(&g);
            let r = run(
                &mut dev,
                &k,
                &dg,
                &st,
                Query::Bfs { src: 0 },
                &RunOptions::default(),
            )
            .unwrap();
            assert_eq!(r.values, traversal::bfs_levels(&g, 0), "{}", d.name());
            assert!(r.total_ns > 0.0);
            assert!(r.launches >= 2 * r.iterations as u64);
        }
    }

    #[test]
    fn adaptive_sssp_matches_reference() {
        for d in [Dataset::P2p, Dataset::Amazon] {
            let g = d.generate_weighted(Scale::Tiny, 22, 64);
            let (mut dev, k, dg, st) = setup(&g);
            let r = run(
                &mut dev,
                &k,
                &dg,
                &st,
                Query::Sssp { src: 0 },
                &RunOptions::default(),
            )
            .unwrap();
            assert_eq!(r.values, traversal::dijkstra(&g, 0), "{}", d.name());
        }
    }

    #[test]
    fn static_and_adaptive_agree_on_results() {
        let g = Dataset::Google.generate(Scale::Tiny, 23);
        let (mut dev, k, dg, st) = setup(&g);
        let adaptive = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions::default(),
        )
        .unwrap();
        for v in Variant::ALL {
            let r = run(
                &mut dev,
                &k,
                &dg,
                &st,
                Query::Bfs { src: 0 },
                &RunOptions::static_variant(v),
            )
            .unwrap();
            assert_eq!(r.values, adaptive.values, "{}", v.name());
            assert_eq!(r.switches, 0, "static runs never switch");
        }
    }

    #[test]
    fn trace_records_every_iteration_with_queue_sizes() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 24);
        let (mut dev, k, dg, st) = setup(&g);
        let opts = RunOptions {
            record_trace: true,
            census: CensusMode::Every,
            ..RunOptions::static_variant(Variant::parse("U_T_BM").unwrap())
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.trace.len(), r.iterations as usize);
        assert!(r.trace.iter().all(|t| t.ws_size.is_some()));
        assert_eq!(r.trace[0].ws_size, Some(1));
        assert!(r.trace.iter().all(|t| t.iter_ns > 0.0));
    }

    #[test]
    fn trace_ws_sizes_match_exact_frontier_sizes() {
        // With a census every iteration, the trace's ws_size column must
        // reproduce the exact per-level frontier sizes of the reference
        // BFS: iteration i consumes the frontier at level i-1.
        let g = Dataset::Amazon.generate(Scale::Tiny, 24);
        let levels = traversal::bfs_levels(&g, 0);
        let (mut dev, k, dg, st) = setup(&g);
        let opts = RunOptions {
            record_trace: true,
            census: CensusMode::Every,
            ..RunOptions::static_variant(Variant::parse("U_T_BM").unwrap())
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.trace.len(), r.iterations as usize);
        for t in &r.trace {
            let exact = levels.iter().filter(|&&l| l == t.iteration - 1).count() as u32;
            assert_eq!(
                t.ws_size,
                Some(exact),
                "iteration {} frontier mismatch",
                t.iteration
            );
        }
    }

    #[test]
    fn switching_into_bitmap_forces_an_off_cadence_census() {
        // With an absurd sampling period the census never fires on
        // cadence, so after a queue -> bitmap switch the decision maker
        // would keep consuming the last queue length forever. The engine
        // must force one census at the switch.
        let g = Dataset::Amazon.generate(Scale::Tiny, 26);
        let mut dev = Device::try_new(DeviceConfig::tiny_test_device()).unwrap();
        let kernels = GpuKernels::build();
        let dg = DeviceGraph::upload(&mut dev, &g);
        let st = AlgoState::new(&mut dev, dg.n, 0).unwrap();
        let mut tuning = AdaptiveConfig::for_device(dev.config());
        tuning.t2_ws_size = 192 * 2;
        tuning.sampling_period = 1000;
        let opts = RunOptions {
            strategy: Strategy::Adaptive,
            tuning,
            census: CensusMode::Sampled,
            record_trace: true,
            ..Default::default()
        };
        let r = run(&mut dev, &kernels, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.values, traversal::bfs_levels(&g, 0));
        let first_bitmap = r
            .trace
            .windows(2)
            .find(|w| {
                w[0].variant.workset == WorkSet::Queue && w[1].variant.workset == WorkSet::Bitmap
            })
            .map(|w| w[1])
            .expect("run must switch queue -> bitmap for this test to bite");
        assert!(first_bitmap.switched);
        assert!(
            first_bitmap.ws_size.is_some(),
            "switch into bitmap must census even off-cadence: {first_bitmap:?}"
        );
        assert!(first_bitmap.inspector_ns > 0.0);
        assert!(r.metrics.census_launches >= 1);
        // A later bitmap iteration with no switch stays uncensused (the
        // sampling trade-off is preserved).
        assert!(
            r.trace
                .iter()
                .any(|t| t.variant.workset == WorkSet::Bitmap && t.ws_size.is_none()),
            "off-cadence bitmap iterations should skip the census"
        );
    }

    #[test]
    fn census_off_is_never_forced() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 26);
        let mut dev = Device::try_new(DeviceConfig::tiny_test_device()).unwrap();
        let kernels = GpuKernels::build();
        let dg = DeviceGraph::upload(&mut dev, &g);
        let st = AlgoState::new(&mut dev, dg.n, 0).unwrap();
        let mut tuning = AdaptiveConfig::for_device(dev.config());
        tuning.t2_ws_size = 192 * 2;
        let opts = RunOptions {
            strategy: Strategy::Adaptive,
            tuning,
            census: CensusMode::Off,
            record_trace: true,
            ..Default::default()
        };
        let r = run(&mut dev, &kernels, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.metrics.census_launches, 0);
        assert!(r
            .trace
            .iter()
            .all(|t| t.variant.workset != WorkSet::Bitmap || t.ws_size.is_none()));
    }

    #[test]
    fn time_accounting_identity_holds() {
        // setup + Σ iter + teardown == total, for every execution path.
        let g = Dataset::Amazon.generate_weighted(Scale::Tiny, 29, 64);
        let (mut dev, k, dg, st) = setup(&g);
        for (label, query, opts) in [
            ("adaptive bfs", Query::Bfs { src: 0 }, RunOptions::default()),
            (
                "static sssp",
                Query::Sssp { src: 0 },
                RunOptions::static_variant(Variant::parse("U_B_QU").unwrap()),
            ),
            (
                "no-transfer",
                Query::Bfs { src: 0 },
                RunOptions::builder().include_graph_transfer(false).build(),
            ),
            (
                "hybrid",
                Query::Bfs { src: 0 },
                RunOptions::builder()
                    .strategy(Strategy::Hybrid { gpu_threshold: 64 })
                    .build(),
            ),
        ] {
            let r = run(&mut dev, &k, &dg, &st, query, &opts).unwrap();
            let parts = r.setup_ns + r.metrics.iter_ns_total + r.teardown_ns;
            assert!(
                (parts - r.total_ns).abs() <= 1e-6 * r.total_ns.max(1.0),
                "{label}: {parts} != {}",
                r.total_ns
            );
            assert_eq!(r.metrics.iterations, r.iterations, "{label}");
            assert_eq!(r.metrics.switches, r.switches, "{label}");
            assert_eq!(
                r.metrics.by_variant().iter().map(|(_, c)| *c).sum::<u32>(),
                r.iterations,
                "{label}"
            );
            assert!(r.setup_ns > 0.0, "{label}");
            assert!(r.teardown_ns > 0.0, "{label}");
        }
    }

    #[test]
    fn run_report_profile_covers_this_run_only() {
        let g = Dataset::P2p.generate(Scale::Tiny, 30);
        let (mut dev, k, dg, st) = setup(&g);
        let first = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions::default(),
        )
        .unwrap();
        let second = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions::default(),
        )
        .unwrap();
        // Same work both times: the per-run profiles agree even though the
        // device accumulates across runs (ns fields only up to float
        // rounding, since each run's profile is a snapshot difference).
        let (a, b) = (first.profile.kernels(), second.profile.kernels());
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(b) {
            assert_eq!(pa.kernel, pb.kernel);
            assert_eq!(pa.launches, pb.launches);
            assert_eq!(pa.stats, pb.stats);
            assert!((pa.time_ns - pb.time_ns).abs() <= 1e-6 * pa.time_ns.max(1.0));
        }
        assert_eq!(first.profile.total_launches(), first.launches);
        let workset_gen = first
            .profile
            .kernels()
            .iter()
            .find(|p| p.kernel.contains("gen"))
            .expect("workset generation must appear in the profile");
        assert!(workset_gen.compute_ns > 0.0);
        assert!(workset_gen.occupancy_fraction > 0.0);
        let json = first.to_json().render();
        assert!(json.contains("\"compute_ns\""), "{json}");
        assert!(json.contains("\"coalescing_efficiency\""), "{json}");
    }

    #[test]
    fn trace_json_contains_acceptance_fields() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 31);
        let (mut dev, k, dg, st) = setup(&g);
        let opts = RunOptions {
            record_trace: true,
            census: CensusMode::Every,
            ..Default::default()
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        let json = r.to_json().render();
        for field in [
            "\"variant\"",
            "\"region\"",
            "\"ws_size\"",
            "\"est_ws\"",
            "\"est_avg_deg\"",
            "\"inspector_ns\"",
            "\"iter_ns\"",
            "\"iterations_by_variant\"",
            "\"occupancy_fraction\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn adaptive_starts_with_b_qu_on_small_working_sets() {
        let g = Dataset::Google.generate(Scale::Tiny, 25);
        let (mut dev, k, dg, st) = setup(&g);
        let opts = RunOptions {
            record_trace: true,
            ..Default::default()
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.trace[0].variant.name(), "U_B_QU");
    }

    #[test]
    fn adaptive_switches_on_datasets_with_growing_working_sets() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 26); // 2000 nodes, avg 8.5
        let mut dev = Device::try_new(DeviceConfig::tiny_test_device()).unwrap();
        let kernels = GpuKernels::build();
        let dg = DeviceGraph::upload(&mut dev, &g);
        let st = AlgoState::new(&mut dev, dg.n, 0).unwrap();
        let mut tuning = AdaptiveConfig::for_device(dev.config());
        tuning.t2_ws_size = 192 * 2;
        tuning.sampling_period = 1;
        let opts = RunOptions {
            strategy: Strategy::Adaptive,
            tuning,
            census: CensusMode::Sampled,
            record_trace: true,
            ..Default::default()
        };
        let r = run(&mut dev, &kernels, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.values, traversal::bfs_levels(&g, 0));
        assert!(
            r.switches >= 1,
            "expected at least one switch, trace: {:?}",
            r.trace
        );
    }

    #[test]
    fn connected_components_matches_oracle_on_symmetric_graphs() {
        for d in [Dataset::CoRoad, Dataset::P2p] {
            let g = d.generate(Scale::Tiny, 61);
            let expected = traversal::min_labels(&g);
            let (mut dev, k, dg, st) = setup(&g);
            let r = run(&mut dev, &k, &dg, &st, Query::Cc, &RunOptions::default()).unwrap();
            assert_eq!(r.values, expected, "{} adaptive CC", d.name());
            for v in Variant::UNORDERED {
                let r = run(
                    &mut dev,
                    &k,
                    &dg,
                    &st,
                    Query::Cc,
                    &RunOptions::static_variant(v),
                )
                .unwrap();
                assert_eq!(r.values, expected, "{} CC {}", d.name(), v.name());
            }
        }
    }

    #[test]
    fn cc_rejects_ordered_vwarp_and_hybrid_strategies() {
        let g = Dataset::P2p.generate(Scale::Tiny, 62);
        let (mut dev, k, dg, st) = setup(&g);
        for opts in [
            RunOptions::static_variant(Variant::ALL[0]),
            RunOptions {
                strategy: Strategy::VirtualWarp {
                    width: 8,
                    workset: WorkSet::Queue,
                },
                ..Default::default()
            },
            RunOptions {
                strategy: Strategy::Hybrid { gpu_threshold: 100 },
                ..Default::default()
            },
        ] {
            assert!(matches!(
                run(&mut dev, &k, &dg, &st, Query::Cc, &opts),
                Err(CoreError::Unsupported { .. })
            ));
        }
    }

    #[test]
    fn virtual_warp_matches_reference_for_every_width_and_workset() {
        let g = Dataset::CiteSeer.generate_weighted(Scale::Tiny, 63, 64);
        let expected_bfs = traversal::bfs_levels(&g, 0);
        let expected_sssp = traversal::dijkstra(&g, 0);
        let (mut dev, k, dg, st) = setup(&g);
        for width in [2u32, 4, 8, 16, 32] {
            for ws in [WorkSet::Bitmap, WorkSet::Queue] {
                let opts = RunOptions {
                    strategy: Strategy::VirtualWarp { width, workset: ws },
                    record_trace: true,
                    ..Default::default()
                };
                let b = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
                assert_eq!(b.values, expected_bfs, "vw{width} {ws:?} BFS");
                assert!(b.trace.iter().all(|t| t.vwarp_width == Some(width)));
                let s = run(&mut dev, &k, &dg, &st, Query::Sssp { src: 0 }, &opts).unwrap();
                assert_eq!(s.values, expected_sssp, "vw{width} {ws:?} SSSP");
            }
        }
    }

    #[test]
    fn virtual_warp_rejects_bad_widths() {
        let g = Dataset::P2p.generate(Scale::Tiny, 64);
        let (mut dev, k, dg, st) = setup(&g);
        for width in [0u32, 1, 3, 48, 64] {
            let opts = RunOptions {
                strategy: Strategy::VirtualWarp {
                    width,
                    workset: WorkSet::Queue,
                },
                ..Default::default()
            };
            assert!(
                matches!(
                    run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts),
                    Err(CoreError::Unsupported { .. })
                ),
                "width {width} should be rejected"
            );
        }
    }

    #[test]
    fn virtual_warp_beats_thread_mapping_on_skewed_degrees() {
        let g = Dataset::CiteSeer.generate(Scale::Tiny, 65);
        let (mut dev, k, dg, st) = setup(&g);
        let thread = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions::static_variant(Variant::parse("U_T_QU").unwrap()),
        )
        .unwrap();
        let vw = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions {
                strategy: Strategy::VirtualWarp {
                    width: 8,
                    workset: WorkSet::Queue,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            vw.total_ns < thread.total_ns,
            "virtual warp {:.0} ns should beat thread mapping {:.0} ns",
            vw.total_ns,
            thread.total_ns
        );
    }

    #[test]
    fn hybrid_matches_reference_and_uses_both_processors() {
        for d in [Dataset::CoRoad, Dataset::Amazon] {
            let g = d.generate_weighted(Scale::Tiny, 66, 64);
            let (mut dev, k, dg, st) = setup(&g);
            let opts = RunOptions {
                strategy: Strategy::Hybrid { gpu_threshold: 64 },
                record_trace: true,
                ..Default::default()
            };
            let bfs = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
            assert_eq!(
                bfs.values,
                traversal::bfs_levels(&g, 0),
                "{} hybrid BFS",
                d.name()
            );
            let sssp = run(&mut dev, &k, &dg, &st, Query::Sssp { src: 0 }, &opts).unwrap();
            assert_eq!(
                sssp.values,
                traversal::dijkstra(&g, 0),
                "{} hybrid SSSP",
                d.name()
            );
            // Early iterations (tiny frontier) run on the host.
            assert!(
                sssp.trace[0].on_host,
                "{}: first iteration should be host-side",
                d.name()
            );
            assert!(sssp.host_ns > 0.0);
        }
    }

    #[test]
    fn hybrid_with_huge_threshold_never_launches_compute_kernels() {
        let g = Dataset::P2p.generate(Scale::Tiny, 67);
        let (mut dev, k, dg, st) = setup(&g);
        let opts = RunOptions {
            strategy: Strategy::Hybrid {
                gpu_threshold: u32::MAX,
            },
            record_trace: true,
            ..Default::default()
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.values, traversal::bfs_levels(&g, 0));
        assert!(r.trace.iter().all(|t| t.on_host));
        assert_eq!(r.launches, 0, "all-host run must not launch kernels");
        assert_eq!(r.switches, 0);
    }

    #[test]
    fn hybrid_with_threshold_one_is_all_gpu() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 68);
        let (mut dev, k, dg, st) = setup(&g);
        let opts = RunOptions {
            strategy: Strategy::Hybrid { gpu_threshold: 1 },
            record_trace: true,
            ..Default::default()
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
        assert_eq!(r.values, traversal::bfs_levels(&g, 0));
        assert!(r.trace.iter().all(|t| !t.on_host));
        assert_eq!(r.host_ns, 0.0);
        assert_eq!(r.switches, 1, "one host->device switch at the start");
    }

    #[test]
    fn pagerank_matches_cpu_delta_and_power_iteration() {
        for d in [Dataset::P2p, Dataset::Google] {
            let g = d.generate(Scale::Tiny, 71);
            let (mut dev, k, mut dg, st) = setup(&g);
            dg.upload_reverse(&mut dev, &g);
            let q = Query::PageRank {
                config: PageRankConfig {
                    damping: 0.85,
                    epsilon: 1e-5,
                },
            };
            // adaptive + all four unordered statics
            let mut runs = vec![run(&mut dev, &k, &dg, &st, q, &RunOptions::default()).unwrap()];
            for v in Variant::UNORDERED {
                runs.push(run(&mut dev, &k, &dg, &st, q, &RunOptions::static_variant(v)).unwrap());
            }
            let cpu = agg_cpu::pagerank_delta(&g, 0.85, 1e-5, &CpuCostModel::default());
            let power = agg_cpu::pagerank_power(&g, 0.85, 1e-7, 500);
            for (i, r) in runs.iter().enumerate() {
                let ranks = r.values_as_f32();
                let vs_cpu = ranks
                    .iter()
                    .zip(&cpu.ranks)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                let vs_power = ranks
                    .iter()
                    .zip(&power)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                assert!(
                    vs_cpu < 5e-3,
                    "{} run {i}: max diff vs cpu-delta {vs_cpu}",
                    d.name()
                );
                assert!(
                    vs_power < 5e-3,
                    "{} run {i}: max diff vs power {vs_power}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn pagerank_rejects_ordered_vwarp_and_hybrid() {
        let g = Dataset::P2p.generate(Scale::Tiny, 72);
        let (mut dev, k, dg, st) = setup(&g);
        for opts in [
            RunOptions::static_variant(Variant::ALL[0]),
            RunOptions {
                strategy: Strategy::VirtualWarp {
                    width: 4,
                    workset: WorkSet::Queue,
                },
                ..Default::default()
            },
            RunOptions {
                strategy: Strategy::Hybrid { gpu_threshold: 10 },
                ..Default::default()
            },
        ] {
            assert!(matches!(
                run(&mut dev, &k, &dg, &st, Query::pagerank(), &opts),
                Err(CoreError::Unsupported { .. })
            ));
        }
    }

    #[test]
    fn pagerank_epsilon_trades_accuracy_for_iterations() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 73);
        let (mut dev, k, mut dg, st) = setup(&g);
        dg.upload_reverse(&mut dev, &g);
        let loose = Query::PageRank {
            config: PageRankConfig {
                damping: 0.85,
                epsilon: 1e-2,
            },
        };
        let tight = Query::PageRank {
            config: PageRankConfig {
                damping: 0.85,
                epsilon: 1e-6,
            },
        };
        let rl = run(&mut dev, &k, &dg, &st, loose, &RunOptions::default()).unwrap();
        let rt = run(&mut dev, &k, &dg, &st, tight, &RunOptions::default()).unwrap();
        assert!(
            rt.iterations > rl.iterations,
            "{} vs {}",
            rt.iterations,
            rl.iterations
        );
        let power = agg_cpu::pagerank_power(&g, 0.85, 1e-8, 500);
        let err = |r: &RunReport| {
            r.values_as_f32()
                .iter()
                .zip(&power)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(&rt) < err(&rl), "tight epsilon must be more accurate");
    }

    #[test]
    fn working_set_degree_mode_matches_whole_graph_results() {
        let g = Dataset::CiteSeer.generate_weighted(Scale::Tiny, 74, 64);
        let (mut dev, k, dg, st) = setup(&g);
        let whole = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Sssp { src: 0 },
            &RunOptions::default(),
        )
        .unwrap();
        let tuning = AdaptiveConfig {
            degree_mode: DegreeMode::WorkingSet,
            sampling_period: 1,
            ..Default::default()
        };
        let opts = RunOptions {
            tuning,
            ..Default::default()
        };
        let ws_mode = run(&mut dev, &k, &dg, &st, Query::Sssp { src: 0 }, &opts).unwrap();
        assert_eq!(whole.values, ws_mode.values);
        // The working-set inspector launches extra census kernels.
        assert!(ws_mode.launches > whole.launches);
    }

    #[test]
    fn direction_optimized_bfs_matches_reference_and_runs_bottom_up() {
        for d in [Dataset::Amazon, Dataset::Sns, Dataset::CoRoad] {
            let g = d.generate(Scale::Tiny, 75);
            let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
            let kernels = GpuKernels::build();
            let mut dg = DeviceGraph::upload(&mut dev, &g);
            dg.upload_reverse(&mut dev, &g);
            let st = AlgoState::new(&mut dev, dg.n, 0).unwrap();
            let opts = RunOptions {
                strategy: Strategy::DirectionOptimized {
                    bottom_up_fraction: 0.05,
                },
                record_trace: true,
                ..Default::default()
            };
            let r = run(&mut dev, &kernels, &dg, &st, Query::Bfs { src: 0 }, &opts).unwrap();
            assert_eq!(r.values, traversal::bfs_levels(&g, 0), "{}", d.name());
            if d == Dataset::Amazon {
                // explosive frontier: at least one bottom-up iteration
                // (recorded as U_T_BM with the bitmap frontier)
                assert!(r.iterations >= 3);
            }
        }
    }

    #[test]
    fn direction_optimized_requires_reverse_graph_and_bfs() {
        let g = Dataset::P2p.generate_weighted(Scale::Tiny, 76, 64);
        let (mut dev, k, dg, st) = setup(&g); // no reverse uploaded
        let opts = RunOptions {
            strategy: Strategy::DirectionOptimized {
                bottom_up_fraction: 0.1,
            },
            ..Default::default()
        };
        assert!(matches!(
            run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts),
            Err(CoreError::Unsupported { .. })
        ));
        // SSSP is rejected even with the reverse graph present.
        let mut dg2 = DeviceGraph::upload(&mut dev, &g);
        dg2.upload_reverse(&mut dev, &g);
        assert!(matches!(
            run(&mut dev, &k, &dg2, &st, Query::Sssp { src: 0 }, &opts),
            Err(CoreError::Unsupported { .. })
        ));
    }

    #[test]
    fn bottom_up_saves_edge_work_on_explosive_frontiers() {
        let g = Dataset::Sns.generate(Scale::Tiny, 77);
        let mut dev = Device::try_new(DeviceConfig::tesla_c2070()).unwrap();
        let kernels = GpuKernels::build();
        let mut dg = DeviceGraph::upload(&mut dev, &g);
        dg.upload_reverse(&mut dev, &g);
        let st = AlgoState::new(&mut dev, dg.n, 0).unwrap();
        // influencer source: frontier explodes after one hop
        let src = (0..g.node_count() as u32)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap();
        let top_down = run(
            &mut dev,
            &kernels,
            &dg,
            &st,
            Query::Bfs { src },
            &RunOptions::default(),
        )
        .unwrap();
        let opts = RunOptions {
            strategy: Strategy::DirectionOptimized {
                bottom_up_fraction: 0.05,
            },
            ..Default::default()
        };
        let dir_opt = run(&mut dev, &kernels, &dg, &st, Query::Bfs { src }, &opts).unwrap();
        assert_eq!(top_down.values, dir_opt.values);
        assert!(
            dir_opt.gpu_stats.totals.atomics < top_down.gpu_stats.totals.atomics,
            "bottom-up iterations are atomic-free: {} vs {}",
            dir_opt.gpu_stats.totals.atomics,
            top_down.gpu_stats.totals.atomics
        );
    }

    #[test]
    fn sssp_on_unweighted_graph_is_rejected() {
        let g = Dataset::P2p.generate(Scale::Tiny, 27);
        let (mut dev, k, dg, st) = setup(&g);
        let r = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Sssp { src: 0 },
            &RunOptions::default(),
        );
        assert!(matches!(r, Err(CoreError::InvalidQuery { .. })), "{r:?}");
        assert!(r.unwrap_err().to_string().contains("weighted"));
    }

    #[test]
    fn out_of_range_source_is_rejected_not_panicked() {
        let g = Dataset::P2p.generate_weighted(Scale::Tiny, 27, 64);
        let n = g.node_count() as u32;
        let (mut dev, k, dg, st) = setup(&g);
        for query in [
            Query::Bfs { src: n },
            Query::Bfs { src: u32::MAX },
            Query::Sssp { src: n + 7 },
        ] {
            let r = run(&mut dev, &k, &dg, &st, query, &RunOptions::default());
            let err = r.expect_err("out-of-range source must be an Err");
            assert!(
                matches!(&err, CoreError::InvalidQuery { .. }),
                "{query:?}: {err}"
            );
            assert!(err.to_string().contains("out of range"), "{err}");
        }
    }

    #[test]
    fn bad_pagerank_parameters_are_rejected() {
        let g = Dataset::P2p.generate(Scale::Tiny, 27);
        let (mut dev, k, dg, st) = setup(&g);
        for config in [
            PageRankConfig {
                damping: 0.0,
                epsilon: 1e-4,
            },
            PageRankConfig {
                damping: 1.0,
                epsilon: 1e-4,
            },
            PageRankConfig {
                damping: f32::NAN,
                epsilon: 1e-4,
            },
            PageRankConfig {
                damping: 0.85,
                epsilon: 0.0,
            },
            PageRankConfig {
                damping: 0.85,
                epsilon: f32::NAN,
            },
        ] {
            let r = run(
                &mut dev,
                &k,
                &dg,
                &st,
                Query::PageRank { config },
                &RunOptions::default(),
            );
            assert!(
                matches!(r, Err(CoreError::InvalidQuery { .. })),
                "{config:?}: {r:?}"
            );
        }
    }

    #[test]
    fn run_options_builder_composes() {
        let v = Variant::parse("U_T_BM").unwrap();
        let opts = RunOptions::builder()
            .static_variant(v)
            .census(CensusMode::Every)
            .trace()
            .max_iterations(7)
            .include_graph_transfer(false)
            .build();
        assert_eq!(opts.strategy, Strategy::Static(v));
        assert_eq!(opts.census, CensusMode::Every);
        assert!(opts.record_trace);
        assert_eq!(opts.max_iterations, 7);
        assert!(!opts.include_graph_transfer);
        // `static_variant` quiets the census unless explicitly re-enabled.
        assert_eq!(RunOptions::static_variant(v).census, CensusMode::Off);
        // `adaptive()` seeds the defaults.
        assert_eq!(RunOptions::adaptive().build(), RunOptions::default());
    }

    #[test]
    fn query_accessors_expose_algo_source_and_parameters() {
        let cfg = PageRankConfig {
            damping: 0.5,
            epsilon: 1e-3,
        };
        assert_eq!(Query::Bfs { src: 3 }.algo(), Algo::Bfs);
        assert_eq!(Query::Bfs { src: 3 }.source(), 3);
        assert_eq!(Query::Sssp { src: 9 }.source(), 9);
        assert_eq!(Query::Cc.source(), 0);
        assert_eq!(Query::PageRank { config: cfg }.pagerank_config(), cfg);
        assert_eq!(
            Query::pagerank().pagerank_config(),
            PageRankConfig::default()
        );
        assert_eq!(Query::Cc.name(), "cc");
        let json = Query::Sssp { src: 4 }.to_json().render();
        assert!(
            json.contains("\"algo\":\"sssp\"") && json.contains("\"src\":4"),
            "{json}"
        );
    }

    #[test]
    fn empty_graph_returns_empty_report() {
        let g = agg_graph::CsrGraph::empty(0);
        let (mut dev, k, dg, st) = setup(&g);
        let r = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions::default(),
        )
        .unwrap();
        assert!(r.values.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_cap_triggers_no_convergence() {
        let g = GraphBuilder::from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let (mut dev, k, dg, st) = setup(&g);
        let opts = RunOptions {
            max_iterations: 2,
            ..Default::default()
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts);
        assert!(matches!(r, Err(CoreError::NoConvergence { iterations: 2 })));
        // The hybrid path honors the cap too.
        let opts = RunOptions {
            strategy: Strategy::Hybrid {
                gpu_threshold: u32::MAX,
            },
            max_iterations: 2,
            ..Default::default()
        };
        let r = run(&mut dev, &k, &dg, &st, Query::Bfs { src: 0 }, &opts);
        assert!(matches!(r, Err(CoreError::NoConvergence { iterations: 2 })));
    }

    #[test]
    fn graph_transfer_inclusion_is_configurable() {
        let g = Dataset::P2p.generate(Scale::Tiny, 28);
        let (mut dev, k, dg, st) = setup(&g);
        let with = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions::default(),
        )
        .unwrap();
        let without = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions {
                include_graph_transfer: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.total_ns > without.total_ns);
    }

    #[test]
    fn hybrid_beats_pure_gpu_on_the_road_network() {
        // The whole point of hybrid execution: high-diameter graphs spend
        // hundreds of iterations with tiny frontiers where kernel-launch
        // overhead dominates; running those on the host wins.
        let g = Dataset::CoRoad.generate(Scale::Tiny, 69);
        let (mut dev, k, dg, st) = setup(&g);
        let gpu = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions::default(),
        )
        .unwrap();
        let hybrid = run(
            &mut dev,
            &k,
            &dg,
            &st,
            Query::Bfs { src: 0 },
            &RunOptions {
                strategy: Strategy::Hybrid {
                    gpu_threshold: 2688,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(gpu.values, hybrid.values);
        assert!(
            hybrid.total_ns < gpu.total_ns,
            "hybrid {:.0} ns should beat pure GPU {:.0} ns on the road grid",
            hybrid.total_ns,
            gpu.total_ns
        );
    }

    #[test]
    fn cache_keys_are_canonical_and_collision_free() {
        let queries = [
            Query::Bfs { src: 0 },
            Query::Bfs { src: 1 },
            Query::Sssp { src: 0 },
            Query::Sssp { src: 1 },
            Query::Cc,
            Query::pagerank(),
            Query::PageRank {
                config: PageRankConfig {
                    damping: 0.85,
                    epsilon: 1e-5,
                },
            },
            Query::PageRank {
                config: PageRankConfig {
                    // One ULP away from the default damping: a distinct
                    // computation, so a distinct key.
                    damping: f32::from_bits(0.85f32.to_bits() + 1),
                    epsilon: 1e-4,
                },
            },
        ];
        let keys: Vec<String> = queries.iter().map(Query::cache_key).collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(a == b, i == j, "{a} vs {b}");
            }
        }
        // Keys are stable identities, not Debug output: same query, same
        // key, every time.
        assert_eq!(Query::Bfs { src: 7 }.cache_key(), "bfs:7");
        assert_eq!(Query::pagerank().cache_key(), Query::pagerank().cache_key());
    }

    #[test]
    fn typed_errors_render_their_context() {
        let e = CoreError::InvalidConfig {
            detail: "parallel session needs at least one worker".into(),
        };
        assert!(e.to_string().contains("invalid configuration"));
        let e = CoreError::WorkerPanic {
            worker: 2,
            query_index: 5,
            detail: "boom".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("worker 2"), "{msg}");
        assert!(msg.contains("query #5"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }
}
