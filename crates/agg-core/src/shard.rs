//! Multi-device sharded execution: one simulated device per graph shard,
//! BSP supersteps with boundary (ghost) exchange over a modeled
//! interconnect.
//!
//! # Execution model
//!
//! The graph is split by [`agg_graph::partition()`] into `k` vertex
//! ranges; each shard's forward CSR (owned rows + empty ghost rows)
//! lives on its own [`Device`]. Every superstep is a *single* fan-out
//! window — one host thread per shard (the devices are independent, so
//! the per-shard work parallelizes exactly like [`crate::Session`]'s
//! multi-query batches), one barrier per superstep. Inside the window
//! each picked shard runs, in device program order:
//!
//! 1. **Deliver** — the pairs routed to it at the end of the *previous*
//!    superstep are uploaded and applied (`scatter_min` /
//!    `scatter_store`; PageRank then gathers the accumulated pushes and
//!    clears the push buffer). Delivery-then-generate is dataflow
//!    identical to a serialized deliver-at-end-of-step schedule — the
//!    pairs land before any kernel of this superstep reads state.
//! 2. **Generate** — a *split* workset generation partitions the
//!    frontier into **boundary** vertices (at least one cut out-edge,
//!    compacted into a dedicated queue) and **interior** vertices (the
//!    variant's bitmap or queue). The kernel's thread 0 also resets the
//!    *next* superstep's meta header and the outgoing pair count —
//!    meta buffers ping-pong between supersteps, so no separate prep
//!    launch exists. One prefix read of the 4-word header returns the
//!    active census, both queue lengths, and — for ordered SSSP, fused
//!    into the generation kernel — the local findmin candidate. The
//!    variant was picked per [`crate::decision::decide`] before the
//!    window (its signals — last census, resident shape — are
//!    host-known).
//! 3. **Boundary + emit** — if the boundary queue is non-empty, the
//!    compute kernel runs over it, then `emit_ghost` (`collect_pairs`
//!    for PageRank) compacts `(ghost lid, value)` pairs — count in word
//!    0 — fetched with a single speculative read. Interior vertices
//!    have no cut out-edges, so every ghost update of the superstep has
//!    now been captured and the pairs can hit the wire.
//! 4. **Interior** — the interior pass runs *while the modeled
//!    interconnect moves the boundary pairs* (see the cost model
//!    below). The host routes the fetched pairs to their owners as the
//!    window drains; they are delivered at the top of the next window.
//!
//! Ordered SSSP is the one case that needs a mid-superstep barrier: the
//! shards must agree on the global minimum before boundary compute, so
//! a superstep with any ordered shard splits into deliver+generate,
//! a host min-agreement (a 4-byte write only to shards whose local
//! candidate differs), then boundary+interior.
//!
//! Idle shards — empty working set and no incoming pairs — skip the
//! window entirely: zero kernel launches, zero PCIe round trips. The
//! traversal terminates when every shard is idle, which is a global
//! fixpoint (delivered pairs that improved nothing set no flags).
//!
//! # Determinism
//!
//! BFS/SSSP/CC converge to the unique min-fixpoint (levels, distances,
//! min labels), so the merged result is bit-identical to a single-device
//! run no matter how supersteps interleave. PageRank uses the
//! deterministic claim → gather pair (see `agg-kernels`' pagerank
//! module): each shard's reverse CSR rows list in-neighbors in canonical
//! *global* edge order and cross-shard push values arrive bit-exact via
//! `scatter_store`, so every per-destination f32 accumulation chain is
//! identical to the single-device gather, superstep by superstep. Host
//! threading cannot perturb any of this: each worker owns its device,
//! results are joined in shard order, and routed pairs are sorted before
//! application — [`ShardedGraph::set_sequential`] exists so tests can
//! prove the threaded schedule bit-identical to the sequential one.
//!
//! # Time accounting
//!
//! `total_ns == setup_ns + compute_ns + exchange_ns + teardown_ns`
//! *exactly*. Setup and teardown are the max over per-shard device
//! slices. Each superstep adds the busiest shard's device-clock delta
//! over the whole window to `compute_ns` (two deltas when ordered SSSP
//! splits the window) — shards run concurrently, so the superstep
//! barrier waits for the slowest, and nothing else fragments the
//! timeline. The exchange round overlaps the interior segment: of the
//! modeled all-to-all cost `W = L + B` (fixed latency + busiest-port
//! byte time), `min(B, tI)` hides behind the slowest interior pass
//! (`tI`) and is reported as `overlap_saved_ns`; only `W - min(B, tI)`
//! lands in `exchange_ns`. PCIe staging of the pair buffers is charged
//! on the shard device clocks and therefore lands inside `compute_ns`.

use crate::config::AdaptiveConfig;
use crate::decision::decide;
use crate::engine::{Algo, CoreError, Query, RunOptions, Strategy};
use agg_gpu_sim::json::Json;
use agg_gpu_sim::prelude::*;
use agg_graph::{partition, CsrGraph, GraphError, Partition, PartitionStrategy, INF};
use agg_kernels::exchange::{META_COUNT, META_MIN, META_QB, META_QLEN, META_WORDS};
use agg_kernels::{AlgoOrder, AlgoState, DeviceGraph, GpuKernels, Mapping, Variant, WorkSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

fn part_err(e: GraphError) -> CoreError {
    CoreError::InvalidQuery {
        detail: e.to_string(),
    }
}

/// Per-shard runtime: a device, the resident local CSR, algorithm state,
/// and the staging buffers of the exchange protocol.
struct ShardRt {
    dev: Device,
    dg: DeviceGraph,
    state: AlgoState,
    /// Ping-pong pair of 4-word scratch headers (findmin cell, active
    /// census, boundary/interior queue lengths) — see
    /// `agg_kernels::exchange`'s `META_*` constants. Setup preps
    /// `metas[0]`; each split generation consumes `metas[parity]` and
    /// resets the partner for the following superstep in-kernel, so the
    /// steady state needs no prep launch or host write. `state.min_out`
    /// is re-aliased onto the current header every generation so the
    /// ordered SSSP kernels read the fused findmin result unchanged.
    metas: [DevicePtr; 2],
    /// Which of `metas` the next generation consumes.
    parity: usize,
    /// Boundary mask over owned lids (1 = has at least one cut
    /// out-edge); the split generation kernels read it to route each
    /// active vertex to the boundary queue or the interior working set.
    mask: DevicePtr,
    /// Boundary working-set queue (capacity = boundary-source count).
    bqueue: DevicePtr,
    /// Outgoing pair staging: word 0 is the pair count, pair `i` lives
    /// at words `[1 + 2i, 2 + 2i]`.
    out_pairs: DevicePtr,
    /// Allocated words of `out_pairs` (speculative-read bound).
    out_cap: usize,
    /// Incoming pair staging: `2 * max(owned, ghosts, 1)`.
    in_pairs: DevicePtr,
    /// For each boundary source lid: the `(dest shard, ghost lid there)`
    /// slots its push value must reach (destinations of its cut
    /// out-edges).
    push_routes: HashMap<u32, Vec<(usize, u32)>>,
    owned: u32,
    ghosts: u32,
    ext: u32,
    local_edges: u32,
    avg_deg: f64,
}

/// Per-shard telemetry slice of a [`ShardReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSlice {
    /// Shard index.
    pub shard: usize,
    /// Owned nodes.
    pub owned: u32,
    /// Ghost (halo) nodes.
    pub ghosts: u32,
    /// Edges resident on this shard (all out-edges of owned nodes).
    pub local_edges: u32,
    /// Out-edges whose destination another shard owns.
    pub cut_out_edges: usize,
    /// In-edges whose source another shard owns.
    pub cut_in_edges: usize,
    /// This shard's device-clock advance over the run (kernels + PCIe
    /// staging), ns.
    pub device_ns: f64,
    /// Kernel launches this run issued on this shard's device (zero for
    /// a shard that stayed idle throughout).
    pub launches: u64,
    /// Boundary pairs this shard emitted over the interconnect.
    pub pairs_sent: u64,
    /// Bytes those pairs occupied on the wire (8 bytes per pair).
    pub bytes_sent: u64,
    /// Times this shard's inspector changed variant mid-run.
    pub switches: u32,
}

impl ShardSlice {
    /// This slice as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard", self.shard.into()),
            ("owned", self.owned.into()),
            ("ghosts", self.ghosts.into()),
            ("local_edges", self.local_edges.into()),
            ("cut_out_edges", self.cut_out_edges.into()),
            ("cut_in_edges", self.cut_in_edges.into()),
            ("device_ns", self.device_ns.into()),
            ("launches", self.launches.into()),
            ("pairs_sent", self.pairs_sent.into()),
            ("bytes_sent", self.bytes_sent.into()),
            ("switches", self.switches.into()),
        ])
    }
}

/// The result of a sharded run: merged values, superstep count, the
/// exchange ledger, and per-shard slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard (device) count.
    pub shards: usize,
    /// Partitioning strategy name (`"contiguous"` / `"degree"` /
    /// `"clustered"`).
    pub partition_strategy: String,
    /// Final per-node values merged from the owned ranges (global node
    /// order) — bit-identical to a single-device run.
    pub values: Vec<u32>,
    /// BSP supersteps that ran a compute kernel on at least one shard
    /// (the terminating all-empty round is excluded, like the engine's
    /// `iterations`).
    pub supersteps: u32,
    /// Total modeled time, ns. Equals `setup_ns + compute_ns +
    /// exchange_ns + teardown_ns` exactly.
    pub total_ns: f64,
    /// State reset before the first superstep (max over shards), ns.
    pub setup_ns: f64,
    /// Sum over superstep windows of the slowest shard's device delta
    /// (kernels, PCIe pair staging, meta reads), ns.
    pub compute_ns: f64,
    /// *Visible* interconnect time across every exchange round — the
    /// modeled all-to-all cost minus what the interior passes hid, ns.
    pub exchange_ns: f64,
    /// Interconnect time hidden behind interior compute by the
    /// boundary-first superstep split, ns. A serialized schedule would
    /// have paid `exchange_ns + overlap_saved_ns` on the wire.
    pub overlap_saved_ns: f64,
    /// Final owned-range D2H reads (max over shards), ns.
    pub teardown_ns: f64,
    /// Bytes moved over the interconnect (8 per boundary pair).
    pub exchange_bytes: u64,
    /// Supersteps that moved at least one pair between shards.
    pub exchange_rounds: u32,
    /// Edges crossing shard boundaries.
    pub cut_edges: usize,
    /// `cut_edges / m` (0 for an edgeless graph).
    pub cut_fraction: f64,
    /// Per-shard telemetry.
    pub per_shard: Vec<ShardSlice>,
}

impl ShardReport {
    /// Total modeled time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Reinterprets the merged value array as f32 (PageRank ranks).
    pub fn values_as_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&b| f32::from_bits(b)).collect()
    }

    /// `|total - (setup + compute + exchange + teardown)|` — zero by
    /// construction; exposed so tests and the differential harness can
    /// assert the identity rather than trust it.
    pub fn accounting_gap(&self) -> f64 {
        (self.total_ns - (self.setup_ns + self.compute_ns + self.exchange_ns + self.teardown_ns))
            .abs()
    }

    /// The telemetry payload as JSON (values omitted — data, not
    /// telemetry).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shards", self.shards.into()),
            ("partition_strategy", self.partition_strategy.clone().into()),
            ("nodes", self.values.len().into()),
            ("supersteps", self.supersteps.into()),
            ("total_ns", self.total_ns.into()),
            ("setup_ns", self.setup_ns.into()),
            ("compute_ns", self.compute_ns.into()),
            ("exchange_ns", self.exchange_ns.into()),
            ("overlap_saved_ns", self.overlap_saved_ns.into()),
            ("teardown_ns", self.teardown_ns.into()),
            ("exchange_bytes", self.exchange_bytes.into()),
            ("exchange_rounds", self.exchange_rounds.into()),
            ("cut_edges", self.cut_edges.into()),
            ("cut_fraction", self.cut_fraction.into()),
            (
                "per_shard",
                Json::arr(self.per_shard.iter().map(ShardSlice::to_json)),
            ),
        ])
    }
}

/// One shard's superstep plan, fixed by phase A: the chosen variant and
/// the split working-set shape.
#[derive(Clone, Copy)]
struct StepPlan {
    variant: Variant,
    /// Boundary-queue length (phase B is skipped when zero).
    qb: u32,
    /// Interior active count (the interior pass is skipped when zero).
    interior_count: u32,
    /// Guard limit of the interior pass: `owned` for bitmap working
    /// sets, the interior queue length for queues.
    interior_limit: u32,
}

/// What one shard's split generation (meta read) returns.
struct GenOut {
    variant: Variant,
    total: u32,
    qb: u32,
    qlen: u32,
    local_min: u32,
}

/// What one shard's superstep window hands back for host bookkeeping.
struct StepOut {
    /// Active census of the generated frontier (0 = nothing ran past
    /// delivery and generation).
    total: u32,
    /// Boundary pairs fetched from the staging buffer (empty when the
    /// boundary queue was).
    emitted: Vec<(u32, u32)>,
    /// Device time of the interior segment — the window the wire
    /// transfer hides behind.
    interior_ns: f64,
}

/// A graph resident across `k` simulated devices, ready to answer
/// [`Query`]s with BSP supersteps and modeled frontier exchange.
///
/// ```
/// use agg_core::{Query, RunOptions, ShardedGraph};
/// use agg_graph::{Dataset, Scale};
///
/// let g = Dataset::P2p.generate(Scale::Tiny, 7);
/// let mut sharded = ShardedGraph::new(&g, 4).unwrap();
/// let r = sharded
///     .run(Query::Bfs { src: 0 }, &RunOptions::default())
///     .unwrap();
/// assert_eq!(r.values.len(), g.node_count());
/// assert_eq!(r.accounting_gap(), 0.0);
/// ```
pub struct ShardedGraph {
    part: Partition,
    kernels: GpuKernels,
    interconnect: Interconnect,
    shards: Vec<ShardRt>,
    weighted: bool,
    sequential: bool,
}

impl ShardedGraph {
    /// Partitions `g` into `shards` contiguous ranges and uploads each to
    /// its own default device (simulated Tesla C2070), linked by a
    /// PCIe-class interconnect.
    pub fn new(g: &CsrGraph, shards: usize) -> Result<ShardedGraph, CoreError> {
        ShardedGraph::with_config(
            g,
            shards,
            PartitionStrategy::Contiguous1D,
            DeviceConfig::tesla_c2070(),
            Interconnect::pcie(),
        )
    }

    /// Full-control constructor: partitioning strategy, per-device
    /// configuration, and interconnect model.
    pub fn with_config(
        g: &CsrGraph,
        shards: usize,
        strategy: PartitionStrategy,
        device: DeviceConfig,
        interconnect: Interconnect,
    ) -> Result<ShardedGraph, CoreError> {
        let part = partition(g, shards, strategy).map_err(part_err)?;
        let kernels = GpuKernels::build();
        let k = part.shard_count();
        let mut rts = Vec::with_capacity(k);
        for plan in &part.shards {
            let mut dev = Device::try_new(device.clone())?;
            let mut dg = DeviceGraph::upload(&mut dev, &plan.local);
            let owned = plan.owned_count() as u32;
            let ghosts = plan.ghost_count() as u32;
            let ext = plan.ext_count() as u32;
            let local_edges = plan.local.edge_count() as u32;
            // Ghost rows are empty, so the resident edge mass belongs to
            // the owned range: the local inspector's density signal is
            // m_local / owned, not m_local / ext.
            let avg_deg = if owned == 0 {
                0.0
            } else {
                local_edges as f64 / owned as f64
            };
            dg.avg_outdegree = avg_deg;
            let mut state = AlgoState::new(&mut dev, ext, 0)?;
            let metas = [
                dev.alloc("shard.meta_a", META_WORDS),
                dev.alloc("shard.meta_b", META_WORDS),
            ];
            // The ordered SSSP kernels bind `min_out` as their findmin
            // cell; aliasing it onto the current meta header lets the
            // fused split-generation reduction feed them with no extra
            // copy (re-aliased each generation as the buffers ping-pong).
            state.min_out = metas[0];
            let bsrc_len = plan.boundary_sources.len() as u32;
            let mut mask = vec![0u32; ext.max(1) as usize];
            for &b in &plan.boundary_sources {
                mask[b as usize] = 1;
            }
            let mask = dev.alloc_from_slice("shard.mask", &mask);
            let bqueue = dev.alloc("shard.bqueue", bsrc_len.max(1) as usize);
            let out_cap = 1 + 2 * (ghosts.max(bsrc_len).max(1)) as usize;
            let in_cap = 2 * (owned.max(ghosts).max(1)) as usize;
            let out_pairs = dev.alloc("shard.out_pairs", out_cap);
            let in_pairs = dev.alloc("shard.in_pairs", in_cap);
            // Push routing table: boundary source lid -> every (shard,
            // ghost lid) slot that gathers its push value (one entry per
            // destination shard of its cut out-edges).
            let mut push_routes: HashMap<u32, Vec<(usize, u32)>> = HashMap::new();
            let row = plan.local.row_offsets();
            let col = plan.local.col_indices();
            for &u in &plan.boundary_sources {
                let mut dests: Vec<(usize, u32)> = Vec::new();
                for &v in &col[row[u as usize] as usize..row[u as usize + 1] as usize] {
                    if v >= owned {
                        let v_gid = plan.ghosts[(v - owned) as usize];
                        let d = part.owner_of(v_gid);
                        let gl = part.shards[d]
                            .to_local(plan.to_global(u))
                            .expect("boundary source is a ghost of every shard it feeds");
                        if !dests.contains(&(d, gl)) {
                            dests.push((d, gl));
                        }
                    }
                }
                push_routes.insert(u, dests);
            }
            rts.push(ShardRt {
                dev,
                dg,
                state,
                metas,
                parity: 0,
                mask,
                bqueue,
                out_pairs,
                out_cap,
                in_pairs,
                push_routes,
                owned,
                ghosts,
                ext,
                local_edges,
                avg_deg,
            });
        }
        Ok(ShardedGraph {
            part,
            kernels,
            interconnect,
            shards: rts,
            weighted: g.is_weighted(),
            sequential: false,
        })
    }

    /// The partition driving this runtime.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Shard (device) count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Forces per-shard phase work onto the calling thread instead of
    /// one worker thread per shard. The two schedules are bit-identical
    /// (each worker owns its device; joins and routing are
    /// deterministic) — this switch exists so tests can prove it.
    pub fn set_sequential(&mut self, sequential: bool) {
        self.sequential = sequential;
    }

    /// Race-detector counters summed over every shard device (all zeros
    /// unless the [`DeviceConfig`] passed to [`ShardedGraph::with_config`]
    /// enabled detection). Harmful exemplars are concatenated in shard
    /// order so a finding still names the kernel and buffer it hit.
    pub fn race_summary(&self) -> RaceSummary {
        let mut total = RaceSummary::default();
        for rt in &self.shards {
            let s = rt.dev.race_summary();
            total.launches_checked += s.launches_checked;
            total.benign_words += s.benign_words;
            total.harmful_words += s.harmful_words;
            total.harmful.extend(s.harmful.iter().cloned());
        }
        total
    }

    /// Per-shard kernel launch profiles (one JSON array of
    /// [`LaunchProfile`] objects per shard, in shard order), cumulative
    /// since construction. Diagnostic only — lets benchmarks attribute
    /// a shard's `device_ns` to individual kernels the same way
    /// [`Device::profile`] does for a single device.
    pub fn kernel_profiles(&self) -> Vec<Json> {
        self.shards
            .iter()
            .map(|rt| rt.dev.profile().to_json())
            .collect()
    }

    /// Runs one typed query across every shard. Sharded execution
    /// supports [`Strategy::Adaptive`] (per-shard local decisions) and
    /// [`Strategy::Static`]; the single-device-only strategies are
    /// rejected with [`CoreError::Unsupported`]. The census policy in
    /// `options` is ignored: the split workset generation returns the
    /// exact census in its meta header for free, so every shard's
    /// decision always sees the true local working-set size. Graph
    /// upload is a construction-time cost and is not charged to the
    /// report.
    pub fn run(&mut self, query: Query, options: &RunOptions) -> Result<ShardReport, CoreError> {
        self.validate(query, options)?;
        let n = self.part.n as u32;
        if n == 0 {
            return Ok(self.empty_report());
        }
        let algo = query.algo();
        let pagerank = query.pagerank_config();
        let sequential = self.sequential;
        let part = &self.part;
        let kernels = &self.kernels;
        let interconnect = &self.interconnect;
        let shards = &mut self.shards;
        let k = shards.len();
        // The partition may relabel vertices (ClusteredContiguous); all
        // shard-local state speaks the partition id space and only the
        // run boundary translates.
        let psrc = part.to_partition_id(query.source().min(n - 1));
        if algo == Algo::PageRank {
            // The gather walks the transpose; upload each shard's
            // canonical reverse CSR once on first use (construction-class
            // cost: before the run clock starts).
            for (rt, plan) in shards.iter_mut().zip(&part.shards) {
                rt.dg.upload_reverse_graph(&mut rt.dev, &plan.reverse);
            }
        }
        let tuning = &options.tuning;
        let tt = tuning.thread_block_threads;
        let cap = if options.max_iterations == 0 {
            4 * n as u64 + 64
        } else {
            options.max_iterations
        };

        let run_start: Vec<f64> = shards.iter().map(|rt| rt.dev.elapsed_ns()).collect();
        let launch_start: Vec<u64> = shards.iter().map(|rt| rt.dev.launch_count()).collect();

        // ---- setup: per-shard state reset ------------------------------
        for (i, rt) in shards.iter_mut().enumerate() {
            // Restart the ping-pong cycle: one host write preps
            // `metas[0]` for the first generation; every generation
            // after that preps its successor in-kernel. (A transfer,
            // not a launch — shards that never activate stay at zero
            // launches.)
            rt.parity = 0;
            rt.state.min_out = rt.metas[0];
            if rt.ext == 0 {
                continue;
            }
            rt.dev.write(rt.metas[0], &[u32::MAX, 0, 0, 0])?;
            match algo {
                Algo::Bfs | Algo::Sssp => {
                    // Like `AlgoState::reset`, but only the owning shard
                    // marks the source.
                    rt.dev.fill(rt.state.value, INF)?;
                    rt.dev.fill(rt.state.update, 0)?;
                    rt.dev.fill(rt.state.bitmap, 0)?;
                    rt.dev.write_word(rt.state.queue_len, 0, 0)?;
                    rt.dev.write_word(rt.state.flag, 0, 0)?;
                    if part.shards[i].owns(psrc) {
                        let lid = (psrc - part.shards[i].start) as usize;
                        rt.dev.write_word(rt.state.value, lid, 0)?;
                        rt.dev.write_word(rt.state.update, lid, 1)?;
                    }
                }
                Algo::Cc => {
                    rt.state.reset_cc(&mut rt.dev, rt.ext)?;
                    // Labels must be *original* global ids (reset_cc
                    // wrote local iota) so the min-label fixpoint matches
                    // the single-device run even under a relabeling
                    // partition, and only owned nodes start in the
                    // working set — ghosts activate via incoming pairs.
                    let plan = &part.shards[i];
                    let labels: Vec<u32> = (0..rt.ext)
                        .map(|l| part.to_original_id(plan.to_global(l)))
                        .collect();
                    rt.dev.write(rt.state.value, &labels)?;
                    let mut flags = vec![1u32; rt.ext as usize];
                    for f in flags.iter_mut().skip(rt.owned as usize) {
                        *f = 0;
                    }
                    rt.dev.write(rt.state.update, &flags)?;
                }
                Algo::PageRank => {
                    rt.state.reset_pagerank(&mut rt.dev, pagerank.damping)?;
                    // Only owned nodes seed the working set; ghost
                    // residual/rank slots exist but are never claimed.
                    let mut flags = vec![1u32; rt.ext as usize];
                    for f in flags.iter_mut().skip(rt.owned as usize) {
                        *f = 0;
                    }
                    rt.dev.write(rt.state.update, &flags)?;
                }
            }
        }
        let setup_ns = max_delta(shards, &run_start);

        // ---- superstep loop --------------------------------------------
        let mut est_ws: Vec<u32> = shards
            .iter()
            .enumerate()
            .map(|(i, rt)| match algo {
                Algo::Cc | Algo::PageRank => rt.ext,
                _ => u32::from(part.shards[i].owns(psrc)),
            })
            .collect();
        let mut active: Vec<bool> = shards
            .iter()
            .enumerate()
            .map(|(i, rt)| {
                rt.ext > 0
                    && match algo {
                        Algo::Cc | Algo::PageRank => rt.owned > 0,
                        _ => part.shards[i].owns(psrc),
                    }
            })
            .collect();
        let mut prev_variant: Vec<Option<Variant>> = vec![None; k];
        let mut switches = vec![0u32; k];
        let mut pairs_sent = vec![0u64; k];
        let mut supersteps = 0u32;
        let mut compute_ns = 0.0f64;
        let mut exchange_ns = 0.0f64;
        let mut overlap_saved_ns = 0.0f64;
        let mut exchange_bytes = 0u64;
        let mut exchange_rounds = 0u32;
        let mut inbox: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
        let mut first_window = true;

        loop {
            if supersteps as u64 >= cap {
                return Err(CoreError::NoConvergence { iterations: cap });
            }
            // Variant decisions happen host-side before fan-out (the
            // inspector's signals — last census, resident shape — are
            // host-known), so each shard launches the right generation
            // kernel immediately and an ordered round is recognized
            // before the window opens. The estimate must count the
            // inbox: when the frontier wave reaches a shard from its
            // neighbours, the shard's own last generation was near
            // empty, and deciding on that stale signal alone picks a
            // small-frontier variant for what is about to be the
            // explosive level (every delivered pair that wins its
            // min-merge joins the next working set). The router knows
            // the exact pair count, so the correction is free.
            let variants: Vec<Option<Variant>> = (0..k)
                .map(|s| {
                    if !active[s] {
                        return None;
                    }
                    let est = est_ws[s].saturating_add(inbox[s].len() as u32);
                    Some(match options.strategy {
                        Strategy::Static(v) => v,
                        // The decision domain is the *owned* range: ghosts
                        // never enter a generated working set (generation
                        // scans `0..owned`), so sizing T3 by `ext` would
                        // let the ghost population push real explosive
                        // levels back into the queue band.
                        _ => decide(tuning, est, shards[s].owned, shards[s].avg_deg),
                    })
                })
                .collect();
            let ordered_round = algo == Algo::Sssp
                && variants
                    .iter()
                    .flatten()
                    .any(|v| v.order == AlgoOrder::Ordered);
            let t0: Vec<f64> = snapshot(shards);
            let inbox_ref = &inbox;
            let variants_ref = &variants;

            let outs: Vec<Option<StepOut>> = if ordered_round {
                // Ordered SSSP must agree on the global minimum before
                // any boundary relaxation, so the superstep splits into
                // two windows around the host min-agreement. The fused
                // reduction already left each local candidate in the
                // meta header; only dissenting shards pay a 4-byte
                // write.
                let gen = for_each_shard(shards, &active, sequential, |i, rt| {
                    deliver_inbox(rt, kernels, algo, tt, &inbox_ref[i])?;
                    let v = variants_ref[i].expect("picked shards have a variant");
                    gen_split(rt, kernels, v, v.order == AlgoOrder::Ordered, tt)
                })?;
                let mut plans: Vec<Option<StepPlan>> = vec![None; k];
                for (s, g) in gen.iter().enumerate() {
                    let Some(g) = g else { continue };
                    if g.total == 0 {
                        continue;
                    }
                    let (interior_count, interior_limit) = match g.variant.workset {
                        WorkSet::Bitmap => (g.total - g.qb, self_owned(shards, s)),
                        WorkSet::Queue => (g.qlen, g.qlen),
                    };
                    plans[s] = Some(StepPlan {
                        variant: g.variant,
                        qb: g.qb,
                        interior_count,
                        interior_limit,
                    });
                }
                let ordered: Vec<usize> = (0..k)
                    .filter(|&s| plans[s].is_some_and(|p| p.variant.order == AlgoOrder::Ordered))
                    .collect();
                let global_min = ordered
                    .iter()
                    .filter_map(|&s| gen[s].as_ref().map(|g| g.local_min))
                    .min()
                    .unwrap_or(u32::MAX);
                for &s in &ordered {
                    if gen[s].as_ref().is_some_and(|g| g.local_min != global_min) {
                        let rt = &mut shards[s];
                        rt.dev.write_word(rt.state.min_out, 0, global_min)?;
                    }
                }
                let pick2: Vec<bool> = plans.iter().map(Option::is_some).collect();
                let plans_ref = &plans;
                let mut w2 = for_each_shard(shards, &pick2, sequential, |i, rt| {
                    let p = plans_ref[i].expect("picked shards have a plan");
                    let emitted = if p.qb > 0 {
                        boundary_pass(rt, kernels, algo, tuning, p.variant, p.qb, tt, 0.0)?
                    } else {
                        Vec::new()
                    };
                    let c0 = rt.dev.elapsed_ns();
                    if p.interior_count > 0 {
                        interior_pass(
                            rt,
                            kernels,
                            algo,
                            tuning,
                            p.variant,
                            p.interior_limit,
                            tt,
                            0.0,
                        )?;
                    }
                    Ok((emitted, rt.dev.elapsed_ns() - c0))
                })?;
                gen.into_iter()
                    .zip(w2.iter_mut())
                    .map(|(g, w)| {
                        g.map(|g| {
                            let (emitted, interior_ns) = w.take().unwrap_or_default();
                            StepOut {
                                total: g.total,
                                emitted,
                                interior_ns,
                            }
                        })
                    })
                    .collect()
            } else {
                for_each_shard(shards, &active, sequential, |i, rt| {
                    let v = variants_ref[i].expect("picked shards have a variant");
                    deliver_inbox(rt, kernels, algo, tt, &inbox_ref[i])?;
                    if algo == Algo::PageRank && !first_window {
                        // Gather the previous superstep's pushes (own
                        // claims + the remote pushes just delivered),
                        // then clear the push buffer for this step's
                        // claims.
                        rt.dev.launch(
                            &kernels.pagerank_gather,
                            Grid::linear(rt.ext as u64, tt),
                            &rt.state
                                .pagerank_gather_args(&rt.dg, rt.ext, pagerank.epsilon),
                        )?;
                        rt.dev.fill(rt.state.aux2, 0)?;
                    }
                    let g = gen_split(rt, kernels, v, false, tt)?;
                    if g.total == 0 {
                        return Ok(StepOut {
                            total: 0,
                            emitted: Vec::new(),
                            interior_ns: 0.0,
                        });
                    }
                    let emitted = if g.qb > 0 {
                        boundary_pass(rt, kernels, algo, tuning, v, g.qb, tt, pagerank.damping)?
                    } else {
                        Vec::new()
                    };
                    let (interior_count, interior_limit) = match v.workset {
                        WorkSet::Bitmap => (g.total - g.qb, rt.owned),
                        WorkSet::Queue => (g.qlen, g.qlen),
                    };
                    let c0 = rt.dev.elapsed_ns();
                    if interior_count > 0 {
                        interior_pass(
                            rt,
                            kernels,
                            algo,
                            tuning,
                            v,
                            interior_limit,
                            tt,
                            pagerank.damping,
                        )?;
                    }
                    Ok(StepOut {
                        total: g.total,
                        emitted,
                        interior_ns: rt.dev.elapsed_ns() - c0,
                    })
                })?
            };
            compute_ns += max_delta(shards, &t0);

            for (s, o) in outs.iter().enumerate() {
                let Some(o) = o else { continue };
                est_ws[s] = o.total;
                if o.total > 0 {
                    let v = variants[s].expect("shards with work have a variant");
                    if prev_variant[s].is_some_and(|p| p != v) {
                        switches[s] += 1;
                    }
                    prev_variant[s] = Some(v);
                }
            }
            if outs.iter().flatten().all(|o| o.total == 0) {
                break; // global fixpoint: the final deliveries moved nothing
            }

            // ---- route (host): map pairs to owners, min-merge ----------
            let mut bytes = vec![vec![0usize; k]; k];
            for ib in inbox.iter_mut() {
                ib.clear();
            }
            for (s, o) in outs.iter().enumerate() {
                let Some(o) = o else { continue };
                if algo == Algo::PageRank {
                    for &(lid, push_bits) in &o.emitted {
                        let routes = shards[s].push_routes.get(&lid);
                        for &(d, gl) in routes.into_iter().flatten() {
                            bytes[s][d] += 8;
                            pairs_sent[s] += 1;
                            inbox[d].push((gl, push_bits));
                        }
                    }
                } else {
                    pairs_sent[s] += o.emitted.len() as u64;
                    for &(ghost_lid, val) in &o.emitted {
                        let gid = part.shards[s].ghosts[(ghost_lid - shards[s].owned) as usize];
                        let d = part.owner_of(gid);
                        let dest_lid = gid - part.shards[d].start;
                        bytes[s][d] += 8;
                        inbox[d].push((dest_lid, val));
                    }
                }
            }
            for ib in inbox.iter_mut() {
                ib.sort_unstable();
                if algo != Algo::PageRank {
                    ib.dedup_by_key(|p| p.0); // keep min value per node
                }
            }

            // ---- exchange ledger: overlap with the interior segment ----
            let t_interior = outs
                .iter()
                .flatten()
                .map(|o| o.interior_ns)
                .fold(0.0f64, f64::max);
            let round_bytes: usize = bytes.iter().flatten().sum();
            if round_bytes > 0 {
                let wire = interconnect.all_to_all_ns(&bytes);
                // The fixed latency is the post-overlap handshake; only
                // the byte-time part can hide behind interior compute.
                let hidden = (wire - interconnect.latency_ns()).min(t_interior).max(0.0);
                exchange_ns += wire - hidden;
                overlap_saved_ns += hidden;
                exchange_bytes += round_bytes as u64;
                exchange_rounds += 1;
            }

            // A shard stays in the superstep cycle while it computed this
            // round (its kernels may have set fresh update flags) or
            // received pairs; everything else goes idle at zero cost.
            for s in 0..k {
                active[s] = outs[s].as_ref().is_some_and(|o| o.total > 0) || !inbox[s].is_empty();
            }
            supersteps += 1;
            first_window = false;
        }

        // ---- teardown: merge owned ranges ------------------------------
        let t_mark: Vec<f64> = snapshot(shards);
        let mut values = vec![0u32; n as usize];
        for (i, rt) in shards.iter_mut().enumerate() {
            if rt.owned == 0 {
                continue;
            }
            let owned = rt.dev.read_prefix(rt.state.value, rt.owned as usize)?;
            let start = part.shards[i].start;
            for (lid, &v) in owned.iter().enumerate() {
                values[part.to_original_id(start + lid as u32) as usize] = v;
            }
        }
        let teardown_ns = max_delta(shards, &t_mark);

        let per_shard: Vec<ShardSlice> = shards
            .iter()
            .enumerate()
            .map(|(i, rt)| ShardSlice {
                shard: i,
                owned: rt.owned,
                ghosts: rt.ghosts,
                local_edges: rt.local_edges,
                cut_out_edges: part.shards[i].cut_out_edges,
                cut_in_edges: part.shards[i].cut_in_edges,
                device_ns: rt.dev.elapsed_ns() - run_start[i],
                launches: rt.dev.launch_count() - launch_start[i],
                pairs_sent: pairs_sent[i],
                bytes_sent: pairs_sent[i] * 8,
                switches: switches[i],
            })
            .collect();

        Ok(ShardReport {
            shards: k,
            partition_strategy: part.strategy.name().to_string(),
            values,
            supersteps,
            total_ns: setup_ns + compute_ns + exchange_ns + teardown_ns,
            setup_ns,
            compute_ns,
            exchange_ns,
            overlap_saved_ns,
            teardown_ns,
            exchange_bytes,
            exchange_rounds,
            cut_edges: part.cut_edges,
            cut_fraction: part.cut_fraction(),
            per_shard,
        })
    }

    fn validate(&self, query: Query, options: &RunOptions) -> Result<(), CoreError> {
        match options.strategy {
            Strategy::Adaptive | Strategy::Static(_) => {}
            Strategy::VirtualWarp { .. } => {
                return Err(CoreError::Unsupported {
                    detail: "sharded execution supports Adaptive and Static strategies \
                             (virtual-warp kernels are single-device)"
                        .into(),
                })
            }
            Strategy::DirectionOptimized { .. } => {
                return Err(CoreError::Unsupported {
                    detail: "sharded execution supports Adaptive and Static strategies \
                             (direction-optimized BFS is single-device)"
                        .into(),
                })
            }
            Strategy::Hybrid { .. } => {
                return Err(CoreError::Unsupported {
                    detail: "sharded execution supports Adaptive and Static strategies \
                             (hybrid CPU/GPU alternation is single-device)"
                        .into(),
                })
            }
        }
        let algo = query.algo();
        if algo == Algo::Sssp && !self.weighted {
            return Err(CoreError::InvalidQuery {
                detail: "SSSP requires a weighted graph (use generate_weighted / with_weights)"
                    .into(),
            });
        }
        let n = self.part.n as u32;
        if matches!(query, Query::Bfs { .. } | Query::Sssp { .. }) && n > 0 {
            let src = query.source();
            if src >= n {
                return Err(CoreError::InvalidQuery {
                    detail: format!("source {src} out of range (graph has {n} nodes)"),
                });
            }
        }
        if let Query::PageRank { config } = query {
            if !(config.damping > 0.0 && config.damping < 1.0) {
                return Err(CoreError::InvalidQuery {
                    detail: format!("PageRank damping {} must be in (0, 1)", config.damping),
                });
            }
            if config.epsilon.is_nan() || config.epsilon <= 0.0 {
                return Err(CoreError::InvalidQuery {
                    detail: format!("PageRank epsilon {} must be positive", config.epsilon),
                });
            }
        }
        if let Strategy::Static(v) = options.strategy {
            if matches!(algo, Algo::Cc | Algo::PageRank) && v.order == AlgoOrder::Ordered {
                return Err(CoreError::Unsupported {
                    detail: format!("{algo:?} has no ordered formulation"),
                });
            }
        }
        Ok(())
    }

    fn empty_report(&self) -> ShardReport {
        ShardReport {
            shards: self.shards.len(),
            partition_strategy: self.part.strategy.name().to_string(),
            values: Vec::new(),
            supersteps: 0,
            total_ns: 0.0,
            setup_ns: 0.0,
            compute_ns: 0.0,
            exchange_ns: 0.0,
            overlap_saved_ns: 0.0,
            teardown_ns: 0.0,
            exchange_bytes: 0,
            exchange_rounds: 0,
            cut_edges: 0,
            cut_fraction: 0.0,
            per_shard: Vec::new(),
        }
    }
}

/// Per-shard device-clock snapshot (devices are idle while the host
/// routes pairs, so snapshots at phase barriers delimit phase windows).
fn snapshot(shards: &[ShardRt]) -> Vec<f64> {
    shards.iter().map(|rt| rt.dev.elapsed_ns()).collect()
}

/// Busiest shard's clock advance since `marks` — the phase barrier cost.
fn max_delta(shards: &[ShardRt], marks: &[f64]) -> f64 {
    shards
        .iter()
        .zip(marks)
        .map(|(rt, &s)| rt.dev.elapsed_ns() - s)
        .fold(0.0f64, f64::max)
}

/// `shards[s].owned` via an immutable re-borrow (keeps the plan-building
/// loop free of a long-lived `&mut`).
fn self_owned(shards: &[ShardRt], s: usize) -> u32 {
    shards[s].owned
}

/// Runs `f` once per selected shard — on scoped worker threads by
/// default (each shard owns its device, so the fan-out is safe and the
/// join order deterministic), or inline when `sequential`. Returns
/// per-shard results in shard order, `None` for unselected shards.
fn for_each_shard<R, F>(
    shards: &mut [ShardRt],
    pick: &[bool],
    sequential: bool,
    f: F,
) -> Result<Vec<Option<R>>, CoreError>
where
    R: Send,
    F: Fn(usize, &mut ShardRt) -> Result<R, CoreError> + Sync,
{
    let k = shards.len();
    if sequential {
        let mut out = Vec::with_capacity(k);
        for (i, rt) in shards.iter_mut().enumerate() {
            out.push(if pick[i] { Some(f(i, rt)?) } else { None });
        }
        return Ok(out);
    }
    let mut slots: Vec<Option<Result<R, CoreError>>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (i, rt) in shards.iter_mut().enumerate() {
            if !pick[i] {
                continue;
            }
            let f = &f;
            handles.push((i, scope.spawn(move || f(i, rt))));
        }
        for (i, h) in handles {
            let r = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            slots[i] = Some(r);
        }
    });
    slots.into_iter().map(Option::transpose).collect()
}

/// The compute grid of a variant, mirroring the engine: thread mapping
/// gets `limit` lanes, block mapping one block per working-set element
/// with the degree-tuned block width.
fn compute_grid(rt: &ShardRt, tuning: &AdaptiveConfig, v: Variant, limit: u32, tt: u32) -> Grid {
    match v.mapping {
        Mapping::Thread => Grid::linear(limit as u64, tt),
        Mapping::Block => Grid::new(
            limit,
            tuning.block_mapping_threads(rt.avg_deg, rt.dev.config().max_threads_per_block),
        ),
    }
}

/// Applies the pairs routed to a shard at the end of the previous
/// superstep (`scatter_min` for the min-fixpoint algorithms,
/// `scatter_store` for PageRank pushes). No-op on an empty inbox.
fn deliver_inbox(
    rt: &mut ShardRt,
    kernels: &GpuKernels,
    algo: Algo,
    tt: u32,
    ib: &[(u32, u32)],
) -> Result<(), CoreError> {
    if ib.is_empty() {
        return Ok(());
    }
    let (kernel, bufs) = if algo == Algo::PageRank {
        (&kernels.scatter_store, vec![rt.in_pairs, rt.state.aux2])
    } else {
        (
            &kernels.scatter_min,
            vec![rt.in_pairs, rt.state.value, rt.state.update],
        )
    };
    deliver_pairs(rt, kernel, tt, ib, bufs)
}

/// Runs the split workset generation on a shard's current meta header
/// and reads the census back. The kernel resets the partner header (and
/// the outgoing pair count) in-kernel, so flipping `parity` here is the
/// whole prep for the next superstep; `min_out` is re-aliased onto the
/// current header so the ordered SSSP kernels see the fused findmin.
fn gen_split(
    rt: &mut ShardRt,
    kernels: &GpuKernels,
    v: Variant,
    want_min: bool,
    tt: u32,
) -> Result<GenOut, CoreError> {
    let cur = rt.metas[rt.parity];
    let next = rt.metas[1 - rt.parity];
    rt.parity = 1 - rt.parity;
    rt.state.min_out = cur;
    let gk = match (v.workset, want_min) {
        (WorkSet::Bitmap, false) => &kernels.gen_bitmap_split,
        (WorkSet::Bitmap, true) => &kernels.gen_bitmap_split_min,
        (WorkSet::Queue, false) => &kernels.gen_queue_split,
        (WorkSet::Queue, true) => &kernels.gen_queue_split_min,
    };
    let interior_ws = rt.state.ws_buf(v.workset);
    rt.dev.launch(
        gk,
        Grid::linear(rt.owned as u64, tt),
        &LaunchArgs::new()
            .bufs([
                rt.state.update,
                rt.mask,
                interior_ws,
                rt.bqueue,
                cur,
                rt.state.value,
                next,
                rt.out_pairs,
            ])
            .scalars([rt.owned]),
    )?;
    let m = rt.dev.read_prefix(cur, META_WORDS)?;
    let (total, qlen) = match v.workset {
        WorkSet::Bitmap => (m[META_COUNT], 0),
        WorkSet::Queue => (m[META_QB] + m[META_QLEN], m[META_QLEN]),
    };
    Ok(GenOut {
        variant: v,
        total,
        qb: m[META_QB],
        qlen,
        local_min: m[META_MIN],
    })
}

/// Boundary segment: the compute kernel over the boundary queue, pair
/// emission (`emit_ghost` / `collect_pairs`), and the staged read-back.
#[allow(clippy::too_many_arguments)]
fn boundary_pass(
    rt: &mut ShardRt,
    kernels: &GpuKernels,
    algo: Algo,
    tuning: &AdaptiveConfig,
    v: Variant,
    qb: u32,
    tt: u32,
    damping: f32,
) -> Result<Vec<(u32, u32)>, CoreError> {
    let bv = Variant {
        order: v.order,
        mapping: v.mapping,
        workset: WorkSet::Queue,
    };
    let grid = compute_grid(rt, tuning, bv, qb, tt);
    if algo == Algo::PageRank {
        rt.dev.launch(
            kernels.pagerank_kernel(bv),
            grid,
            &rt.state
                .pagerank_claim_args_over(&rt.dg, rt.bqueue, qb, damping),
        )?;
        rt.dev.launch(
            &kernels.collect_pairs,
            Grid::linear(qb as u64, tt),
            &LaunchArgs::new()
                .bufs([rt.bqueue, rt.state.aux2, rt.out_pairs])
                .scalars([qb]),
        )?;
        return read_emitted(rt);
    }
    let (kernel, args) = match algo {
        Algo::Bfs => (
            kernels.bfs_kernel(bv),
            rt.state.bfs_args_over(&rt.dg, rt.bqueue, qb),
        ),
        Algo::Sssp => (
            kernels.sssp_kernel(bv),
            rt.state.sssp_args_over(&rt.dg, bv, rt.bqueue, qb),
        ),
        Algo::Cc => (
            kernels.cc_kernel(bv),
            rt.state.cc_args_over(&rt.dg, rt.bqueue, qb),
        ),
        Algo::PageRank => unreachable!("PageRank emits through collect_pairs above"),
    };
    rt.dev.launch(kernel, grid, &args)?;
    if rt.ghosts == 0 {
        return Ok(Vec::new());
    }
    rt.dev.launch(
        &kernels.emit_ghost,
        Grid::linear(rt.ghosts as u64, tt),
        &LaunchArgs::new()
            .bufs([rt.state.update, rt.state.value, rt.out_pairs])
            .scalars([rt.owned, rt.ghosts]),
    )?;
    read_emitted(rt)
}

/// Interior segment: the compute kernel over the interior working set
/// (cut-free by construction, so it overlaps the wire transfer).
#[allow(clippy::too_many_arguments)]
fn interior_pass(
    rt: &mut ShardRt,
    kernels: &GpuKernels,
    algo: Algo,
    tuning: &AdaptiveConfig,
    v: Variant,
    limit: u32,
    tt: u32,
    damping: f32,
) -> Result<(), CoreError> {
    let grid = compute_grid(rt, tuning, v, limit, tt);
    match algo {
        Algo::Bfs => rt.dev.launch(
            kernels.bfs_kernel(v),
            grid,
            &rt.state.bfs_args(&rt.dg, v, limit),
        )?,
        Algo::Sssp => rt.dev.launch(
            kernels.sssp_kernel(v),
            grid,
            &rt.state.sssp_args(&rt.dg, v, limit),
        )?,
        Algo::Cc => rt.dev.launch(
            kernels.cc_kernel(v),
            grid,
            &rt.state.cc_args(&rt.dg, v, limit),
        )?,
        Algo::PageRank => rt.dev.launch(
            kernels.pagerank_kernel(v),
            grid,
            &rt.state.pagerank_claim_args(&rt.dg, v, limit, damping),
        )?,
    };
    Ok(())
}

/// Pair buffers at or below this size are fetched with one speculative
/// full-capacity read: the count lives in word 0, and at PCIe latency a
/// second round trip costs more than the extra bytes of a small buffer.
const SPECULATIVE_READ_WORDS: usize = 1 + 2 * 2048;

/// Reads a shard's outgoing pair buffer (count in word 0, pair `i` at
/// words `[1 + 2i, 2 + 2i]`), charged to the shard's device clock.
fn read_emitted(rt: &mut ShardRt) -> Result<Vec<(u32, u32)>, CoreError> {
    let flat = if rt.out_cap <= SPECULATIVE_READ_WORDS {
        rt.dev.read_prefix(rt.out_pairs, rt.out_cap)?
    } else {
        let count = rt.dev.read_word(rt.out_pairs, 0)? as usize;
        if count == 0 {
            return Ok(Vec::new());
        }
        rt.dev.read_prefix(rt.out_pairs, 1 + 2 * count)?
    };
    let count = flat[0] as usize;
    Ok(flat[1..1 + 2 * count]
        .chunks_exact(2)
        .map(|c| (c[0], c[1]))
        .collect())
}

/// Apply phase: upload an inbox (PCIe) and run the given scatter kernel
/// over it with the caller-selected buffer binding.
fn deliver_pairs(
    rt: &mut ShardRt,
    kernel: &Kernel,
    tt: u32,
    pairs: &[(u32, u32)],
    bufs: Vec<DevicePtr>,
) -> Result<(), CoreError> {
    let mut flat = Vec::with_capacity(pairs.len() * 2);
    for &(lid, val) in pairs {
        flat.push(lid);
        flat.push(val);
    }
    rt.dev.write_prefix(rt.in_pairs, &flat)?;
    let count = pairs.len() as u32;
    rt.dev.launch(
        kernel,
        Grid::linear(count as u64, tt),
        &LaunchArgs::new().bufs(bufs).scalars([count]),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::GpuGraph;
    use crate::engine::PageRankConfig;
    use agg_graph::{Dataset, GraphBuilder, Scale};
    use agg_kernels::Variant;

    fn single_device(g: &CsrGraph, query: Query, options: &RunOptions) -> Vec<u32> {
        GpuGraph::new(g)
            .unwrap()
            .run(query, options)
            .unwrap()
            .values
    }

    fn queries(weighted: bool) -> Vec<Query> {
        let mut q = vec![Query::Bfs { src: 1 }, Query::Cc, Query::pagerank()];
        if weighted {
            q.push(Query::Sssp { src: 1 });
        }
        q
    }

    #[test]
    fn sharded_matches_single_device_for_every_algorithm_and_shard_count() {
        let g = Dataset::Amazon.generate_weighted(Scale::Tiny, 42, 64);
        let opts = RunOptions::default();
        for query in queries(true) {
            let expected = single_device(&g, query, &opts);
            for k in 1..=8usize {
                let mut sharded = ShardedGraph::new(&g, k).unwrap();
                let r = sharded.run(query, &opts).unwrap();
                assert_eq!(
                    r.values,
                    expected,
                    "{} diverged from single-device at {k} shards",
                    query.name()
                );
                assert_eq!(r.accounting_gap(), 0.0);
            }
        }
    }

    #[test]
    fn degree_balanced_partitioning_is_also_bit_identical() {
        let g = Dataset::Google.generate_weighted(Scale::Tiny, 9, 32);
        let opts = RunOptions::default();
        for query in queries(true) {
            let expected = single_device(&g, query, &opts);
            for k in [2usize, 5] {
                let mut sharded = ShardedGraph::with_config(
                    &g,
                    k,
                    PartitionStrategy::DegreeBalanced,
                    DeviceConfig::tesla_c2070(),
                    Interconnect::pcie(),
                )
                .unwrap();
                let r = sharded.run(query, &opts).unwrap();
                assert_eq!(
                    r.values,
                    expected,
                    "{} diverged under degree-balanced partitioning at {k} shards",
                    query.name()
                );
            }
        }
    }

    #[test]
    fn clustered_partitioning_is_bit_identical_and_cuts_fewer_edges() {
        let g = Dataset::CiteSeer.generate_weighted(Scale::Tiny, 13, 32);
        let opts = RunOptions::default();
        let run_with = |strategy: PartitionStrategy| {
            ShardedGraph::with_config(
                &g,
                4,
                strategy,
                DeviceConfig::tesla_c2070(),
                Interconnect::pcie(),
            )
            .unwrap()
        };
        for query in queries(true) {
            let expected = single_device(&g, query, &opts);
            let mut sharded = run_with(PartitionStrategy::ClusteredContiguous);
            let r = sharded.run(query, &opts).unwrap();
            assert_eq!(
                r.values,
                expected,
                "{} diverged under clustered partitioning (values must come back \
                 in original id order)",
                query.name()
            );
            assert_eq!(r.accounting_gap(), 0.0);
        }
        // The clustering exists to shrink the cut: on a community-rich
        // powerlaw graph it must not lose to the blind contiguous split.
        let clustered = run_with(PartitionStrategy::ClusteredContiguous);
        let contiguous = run_with(PartitionStrategy::Contiguous1D);
        assert!(
            clustered.partition().cut_edges <= contiguous.partition().cut_edges,
            "clustering increased the cut: {} > {}",
            clustered.partition().cut_edges,
            contiguous.partition().cut_edges
        );
    }

    #[test]
    fn threaded_phases_are_bit_identical_to_sequential() {
        // The S3 property: for every algorithm × shard count × strategy,
        // the threaded phase fan-out produces exactly the values AND the
        // modeled timeline of the sequential reference schedule.
        let g = Dataset::CiteSeer.generate_weighted(Scale::Tiny, 77, 32);
        for strategy in [
            PartitionStrategy::Contiguous1D,
            PartitionStrategy::DegreeBalanced,
            PartitionStrategy::ClusteredContiguous,
        ] {
            for query in queries(true) {
                for k in [2usize, 4] {
                    let run = |sequential: bool| {
                        let mut sg = ShardedGraph::with_config(
                            &g,
                            k,
                            strategy,
                            DeviceConfig::tesla_c2070(),
                            Interconnect::pcie(),
                        )
                        .unwrap();
                        sg.set_sequential(sequential);
                        sg.run(query, &RunOptions::default()).unwrap()
                    };
                    let par = run(false);
                    let seq = run(true);
                    assert_eq!(
                        par.values,
                        seq.values,
                        "threaded {} diverged from sequential at {k} shards ({})",
                        query.name(),
                        strategy.name()
                    );
                    assert_eq!(
                        par.total_ns, seq.total_ns,
                        "modeled time must not depend on host threading"
                    );
                    assert_eq!(par.accounting_gap(), 0.0);
                    assert_eq!(seq.accounting_gap(), 0.0);
                    assert!(par.overlap_saved_ns >= 0.0);
                }
            }
        }
    }

    #[test]
    fn static_variants_match_too_including_ordered_sssp() {
        let g = Dataset::P2p.generate_weighted(Scale::Tiny, 5, 64);
        for v in [
            Variant::parse("O_T_BM").unwrap(),
            Variant::parse("U_B_QU").unwrap(),
        ] {
            let opts = RunOptions::static_variant(v);
            let expected = single_device(&g, Query::Sssp { src: 0 }, &opts);
            let mut sharded = ShardedGraph::new(&g, 3).unwrap();
            let r = sharded.run(Query::Sssp { src: 0 }, &opts).unwrap();
            assert_eq!(
                r.values,
                expected,
                "static {} diverged across shards",
                v.name()
            );
        }
    }

    #[test]
    fn repeated_runs_on_one_sharded_graph_are_reproducible() {
        let g = Dataset::P2p.generate(Scale::Tiny, 11);
        let mut sharded = ShardedGraph::new(&g, 4).unwrap();
        let opts = RunOptions::default();
        let a = sharded.run(Query::Bfs { src: 3 }, &opts).unwrap();
        let pr = sharded.run(Query::pagerank(), &opts).unwrap();
        let b = sharded.run(Query::Bfs { src: 3 }, &opts).unwrap();
        assert_eq!(a.values, b.values, "state reset between queries leaked");
        assert_eq!(pr.values.len(), g.node_count());
    }

    #[test]
    fn time_accounting_identity_and_ledger_consistency() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 3);
        let mut sharded = ShardedGraph::new(&g, 4).unwrap();
        let r = sharded
            .run(Query::Bfs { src: 0 }, &RunOptions::default())
            .unwrap();
        assert_eq!(r.accounting_gap(), 0.0);
        assert!(r.setup_ns > 0.0 && r.compute_ns > 0.0 && r.teardown_ns > 0.0);
        // A multi-shard BFS on a connected-ish graph must cross
        // boundaries: the ledger and the per-shard slices agree.
        assert!(r.exchange_bytes > 0, "no boundary traffic on 4 shards");
        assert!(r.exchange_ns > 0.0);
        assert!(r.overlap_saved_ns >= 0.0);
        assert!(r.exchange_rounds > 0 && r.exchange_rounds <= r.supersteps + 1);
        let sent: u64 = r.per_shard.iter().map(|s| s.bytes_sent).sum();
        assert_eq!(sent, r.exchange_bytes);
        assert_eq!(r.cut_edges, sharded.partition().cut_edges);
        for s in &r.per_shard {
            assert!(s.device_ns > 0.0);
            assert!(s.launches > 0, "every shard computes on this graph");
        }
    }

    #[test]
    fn idle_shards_launch_no_kernels() {
        // Shard 1's vertices are unreachable from the BFS source and no
        // edge crosses the shard boundary: shard 1 must stay idle for
        // the entire run — zero kernel launches (setup fills are
        // transfers, not launches).
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2)]).unwrap();
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        let r = sharded
            .run(Query::Bfs { src: 0 }, &RunOptions::default())
            .unwrap();
        assert_eq!(sharded.partition().cut_edges, 0);
        assert!(r.per_shard[0].launches > 0);
        assert_eq!(
            r.per_shard[1].launches, 0,
            "idle shard launched kernels: {:?}",
            r.per_shard[1]
        );
        assert_eq!(&r.values[..3], &[0, 1, 2]);
        assert_eq!(&r.values[3..], &[INF, INF, INF]);
    }

    #[test]
    fn faster_interconnect_shrinks_only_exchange_time() {
        let g = Dataset::Google.generate(Scale::Tiny, 21);
        let opts = RunOptions::default();
        let run_with = |icx: Interconnect| {
            let mut sharded = ShardedGraph::with_config(
                &g,
                4,
                PartitionStrategy::Contiguous1D,
                DeviceConfig::tesla_c2070(),
                icx,
            )
            .unwrap();
            sharded.run(Query::Bfs { src: 0 }, &opts).unwrap()
        };
        let pcie = run_with(Interconnect::pcie());
        let nvlink = run_with(Interconnect::nvlink());
        assert_eq!(pcie.values, nvlink.values);
        assert_eq!(pcie.exchange_bytes, nvlink.exchange_bytes);
        assert!(nvlink.exchange_ns < pcie.exchange_ns);
        assert_eq!(pcie.compute_ns, nvlink.compute_ns);
    }

    #[test]
    fn single_device_strategies_are_rejected() {
        let g = Dataset::P2p.generate(Scale::Tiny, 2);
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        for strategy in [
            Strategy::VirtualWarp {
                width: 8,
                workset: WorkSet::Queue,
            },
            Strategy::DirectionOptimized {
                bottom_up_fraction: 0.1,
            },
            Strategy::Hybrid { gpu_threshold: 64 },
        ] {
            let opts = RunOptions::builder().strategy(strategy).build();
            assert!(
                matches!(
                    sharded.run(Query::Bfs { src: 0 }, &opts),
                    Err(CoreError::Unsupported { .. })
                ),
                "{strategy:?} should be rejected"
            );
        }
    }

    #[test]
    fn malformed_queries_are_rejected_before_any_superstep() {
        let g = Dataset::P2p.generate(Scale::Tiny, 2); // unweighted
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        let opts = RunOptions::default();
        assert!(matches!(
            sharded.run(Query::Sssp { src: 0 }, &opts),
            Err(CoreError::InvalidQuery { .. })
        ));
        let n = g.node_count() as u32;
        assert!(matches!(
            sharded.run(Query::Bfs { src: n }, &opts),
            Err(CoreError::InvalidQuery { .. })
        ));
        assert!(matches!(
            sharded.run(
                Query::PageRank {
                    config: PageRankConfig {
                        damping: 1.5,
                        epsilon: 1e-4
                    }
                },
                &opts
            ),
            Err(CoreError::InvalidQuery { .. })
        ));
        assert!(matches!(
            sharded.run(
                Query::Cc,
                &RunOptions::static_variant(Variant::parse("O_T_BM").unwrap())
            ),
            Err(CoreError::Unsupported { .. })
        ));
    }

    #[test]
    fn report_json_carries_the_exchange_ledger() {
        let g = Dataset::P2p.generate(Scale::Tiny, 4);
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        let r = sharded.run(Query::Cc, &RunOptions::default()).unwrap();
        let json = r.to_json().render();
        for key in [
            "\"shards\"",
            "\"partition_strategy\"",
            "\"supersteps\"",
            "\"exchange_ns\"",
            "\"overlap_saved_ns\"",
            "\"exchange_bytes\"",
            "\"cut_fraction\"",
            "\"launches\"",
            "\"per_shard\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn more_shards_than_nodes_still_works() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let expected = single_device(&g, Query::Bfs { src: 0 }, &RunOptions::default());
        let mut sharded = ShardedGraph::new(&g, 8).unwrap();
        let r = sharded
            .run(Query::Bfs { src: 0 }, &RunOptions::default())
            .unwrap();
        assert_eq!(r.values, expected);
    }

    #[test]
    fn empty_graph_yields_empty_report() {
        let g = GraphBuilder::from_edges(0, &[]).unwrap();
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        let r = sharded
            .run(Query::Bfs { src: 0 }, &RunOptions::default())
            .unwrap();
        assert!(r.values.is_empty());
        assert_eq!(r.total_ns, 0.0);
    }
}
