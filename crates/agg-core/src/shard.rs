//! Multi-device sharded execution: one simulated device per graph shard,
//! BSP supersteps with boundary (ghost) exchange over a modeled
//! interconnect.
//!
//! # Execution model
//!
//! The graph is split by [`agg_graph::partition()`] into `k` contiguous
//! vertex ranges; each shard's forward CSR (owned rows + empty ghost
//! rows) lives on its own [`Device`]. Every superstep runs the same BSP
//! round on all shards:
//!
//! 1. **Emit** — `gen_ghost` scans the shard's ghost range for update
//!    flags and compacts `(ghost lid, value)` pairs into a staging
//!    buffer, clearing the ghost flags. The pair count and the pairs are
//!    read back over PCIe (charged to the shard's device clock).
//! 2. **Route** — the host maps each ghost to its owning shard and
//!    min-merges duplicates per destination node (two shards relaxing
//!    the same remote node in one superstep). The all-to-all is charged
//!    once per superstep to the [`Interconnect`] ledger.
//! 3. **Apply** — destination shards upload their inbox (PCIe) and run
//!    `scatter_min`, which keeps improving values and marks them in the
//!    update vector; stale pairs are ignored.
//! 4. **Select & generate** — each shard's inspector sees only *local*
//!    state (working-set size, local average outdegree) and picks its
//!    own variant per [`crate::decision::decide`], then runs `prep` +
//!    `workset_gen` exactly like the single-device engine.
//! 5. **Compute** — the chosen kernel runs on the local working set.
//!    Ordered SSSP shards additionally agree on a *global* minimum
//!    candidate distance (per-shard `findmin`, 4-byte D2H reads, host
//!    reduce, 4-byte H2D writes) so the settle wave matches the
//!    single-device schedule.
//!
//! The traversal terminates when every shard's working set is empty —
//! delivered pairs that improved nothing set no flags, so an all-empty
//! round is a global fixpoint.
//!
//! # Determinism
//!
//! BFS/SSSP/CC converge to the unique min-fixpoint (levels, distances,
//! min labels), so the merged result is bit-identical to a single-device
//! run no matter how supersteps interleave. PageRank uses the
//! deterministic claim → gather pair (see `agg-kernels`' pagerank
//! module): each shard's reverse CSR rows list in-neighbors in canonical
//! *global* edge order and cross-shard push values arrive bit-exact via
//! `scatter_store`, so every per-destination f32 accumulation chain is
//! identical to the single-device gather, superstep by superstep.
//!
//! # Time accounting
//!
//! `total_ns == setup_ns + compute_ns + exchange_ns + teardown_ns`
//! *exactly*: setup and teardown are the max over per-shard device
//! slices, each superstep contributes the max per-shard device delta
//! (shards run concurrently; the round barrier waits for the slowest),
//! and the interconnect ledger accumulates the modeled all-to-all cost
//! of every exchange round. PCIe staging of the pair buffers is charged
//! on the shard device clocks and therefore lands inside `compute_ns`.

use crate::config::AdaptiveConfig;
use crate::decision::decide;
use crate::engine::{Algo, CoreError, PageRankConfig, Query, RunOptions, Strategy};
use agg_gpu_sim::json::Json;
use agg_gpu_sim::prelude::*;
use agg_graph::{partition, CsrGraph, GraphError, Partition, PartitionStrategy, INF};
use agg_kernels::{AlgoOrder, AlgoState, DeviceGraph, GpuKernels, Mapping, Variant, WorkSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

fn part_err(e: GraphError) -> CoreError {
    CoreError::InvalidQuery {
        detail: e.to_string(),
    }
}

/// Per-shard runtime: a device, the resident local CSR, algorithm state,
/// and the staging buffers of the exchange protocol.
struct ShardRt {
    dev: Device,
    dg: DeviceGraph,
    state: AlgoState,
    /// Outgoing pair staging: `2 * max(ghosts, boundary_sources, 1)`.
    out_pairs: DevicePtr,
    /// Pair counter for `gen_ghost` / `collect_list` (1 word).
    out_len: DevicePtr,
    /// Incoming pair staging: `2 * max(owned, ghosts, 1)`.
    in_pairs: DevicePtr,
    /// Device-resident boundary-source list (PageRank `collect_list`).
    bsrc: DevicePtr,
    bsrc_len: u32,
    /// For each boundary source lid: the `(dest shard, ghost lid there)`
    /// slots its push value must reach (destinations of its cut
    /// out-edges).
    push_routes: HashMap<u32, Vec<(usize, u32)>>,
    owned: u32,
    ghosts: u32,
    ext: u32,
    local_edges: u32,
    avg_deg: f64,
}

/// Per-shard telemetry slice of a [`ShardReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSlice {
    /// Shard index.
    pub shard: usize,
    /// Owned nodes.
    pub owned: u32,
    /// Ghost (halo) nodes.
    pub ghosts: u32,
    /// Edges resident on this shard (all out-edges of owned nodes).
    pub local_edges: u32,
    /// Out-edges whose destination another shard owns.
    pub cut_out_edges: usize,
    /// In-edges whose source another shard owns.
    pub cut_in_edges: usize,
    /// This shard's device-clock advance over the run (kernels + PCIe
    /// staging), ns.
    pub device_ns: f64,
    /// Boundary pairs this shard emitted over the interconnect.
    pub pairs_sent: u64,
    /// Bytes those pairs occupied on the wire (8 bytes per pair).
    pub bytes_sent: u64,
    /// Times this shard's inspector changed variant mid-run.
    pub switches: u32,
}

impl ShardSlice {
    /// This slice as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard", self.shard.into()),
            ("owned", self.owned.into()),
            ("ghosts", self.ghosts.into()),
            ("local_edges", self.local_edges.into()),
            ("cut_out_edges", self.cut_out_edges.into()),
            ("cut_in_edges", self.cut_in_edges.into()),
            ("device_ns", self.device_ns.into()),
            ("pairs_sent", self.pairs_sent.into()),
            ("bytes_sent", self.bytes_sent.into()),
            ("switches", self.switches.into()),
        ])
    }
}

/// The result of a sharded run: merged values, superstep count, the
/// exchange ledger, and per-shard slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard (device) count.
    pub shards: usize,
    /// Partitioning strategy name (`"contiguous"` / `"degree"`).
    pub partition_strategy: String,
    /// Final per-node values merged from the owned ranges (global node
    /// order) — bit-identical to a single-device run.
    pub values: Vec<u32>,
    /// BSP supersteps that ran a compute kernel on at least one shard
    /// (the terminating all-empty round is excluded, like the engine's
    /// `iterations`).
    pub supersteps: u32,
    /// Total modeled time, ns. Equals `setup_ns + compute_ns +
    /// exchange_ns + teardown_ns` exactly.
    pub total_ns: f64,
    /// State reset before the first superstep (max over shards), ns.
    pub setup_ns: f64,
    /// Sum over supersteps of the slowest shard's device delta (kernels,
    /// PCIe pair staging, census reads), ns.
    pub compute_ns: f64,
    /// Modeled interconnect all-to-all time across every exchange round,
    /// ns.
    pub exchange_ns: f64,
    /// Final owned-range D2H reads (max over shards), ns.
    pub teardown_ns: f64,
    /// Bytes moved over the interconnect (8 per boundary pair).
    pub exchange_bytes: u64,
    /// Supersteps that moved at least one pair between shards.
    pub exchange_rounds: u32,
    /// Edges crossing shard boundaries.
    pub cut_edges: usize,
    /// `cut_edges / m` (0 for an edgeless graph).
    pub cut_fraction: f64,
    /// Per-shard telemetry.
    pub per_shard: Vec<ShardSlice>,
}

impl ShardReport {
    /// Total modeled time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Reinterprets the merged value array as f32 (PageRank ranks).
    pub fn values_as_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&b| f32::from_bits(b)).collect()
    }

    /// `|total - (setup + compute + exchange + teardown)|` — zero by
    /// construction; exposed so tests and the differential harness can
    /// assert the identity rather than trust it.
    pub fn accounting_gap(&self) -> f64 {
        (self.total_ns - (self.setup_ns + self.compute_ns + self.exchange_ns + self.teardown_ns))
            .abs()
    }

    /// The telemetry payload as JSON (values omitted — data, not
    /// telemetry).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shards", self.shards.into()),
            ("partition_strategy", self.partition_strategy.clone().into()),
            ("nodes", self.values.len().into()),
            ("supersteps", self.supersteps.into()),
            ("total_ns", self.total_ns.into()),
            ("setup_ns", self.setup_ns.into()),
            ("compute_ns", self.compute_ns.into()),
            ("exchange_ns", self.exchange_ns.into()),
            ("teardown_ns", self.teardown_ns.into()),
            ("exchange_bytes", self.exchange_bytes.into()),
            ("exchange_rounds", self.exchange_rounds.into()),
            ("cut_edges", self.cut_edges.into()),
            ("cut_fraction", self.cut_fraction.into()),
            (
                "per_shard",
                Json::arr(self.per_shard.iter().map(ShardSlice::to_json)),
            ),
        ])
    }
}

/// A graph resident across `k` simulated devices, ready to answer
/// [`Query`]s with BSP supersteps and modeled frontier exchange.
///
/// ```
/// use agg_core::{Query, RunOptions, ShardedGraph};
/// use agg_graph::{Dataset, Scale};
///
/// let g = Dataset::P2p.generate(Scale::Tiny, 7);
/// let mut sharded = ShardedGraph::new(&g, 4).unwrap();
/// let r = sharded
///     .run(Query::Bfs { src: 0 }, &RunOptions::default())
///     .unwrap();
/// assert_eq!(r.values.len(), g.node_count());
/// assert_eq!(r.accounting_gap(), 0.0);
/// ```
pub struct ShardedGraph {
    part: Partition,
    kernels: GpuKernels,
    interconnect: Interconnect,
    shards: Vec<ShardRt>,
    weighted: bool,
}

impl ShardedGraph {
    /// Partitions `g` into `shards` contiguous ranges and uploads each to
    /// its own default device (simulated Tesla C2070), linked by a
    /// PCIe-class interconnect.
    pub fn new(g: &CsrGraph, shards: usize) -> Result<ShardedGraph, CoreError> {
        ShardedGraph::with_config(
            g,
            shards,
            PartitionStrategy::Contiguous1D,
            DeviceConfig::tesla_c2070(),
            Interconnect::pcie(),
        )
    }

    /// Full-control constructor: partitioning strategy, per-device
    /// configuration, and interconnect model.
    pub fn with_config(
        g: &CsrGraph,
        shards: usize,
        strategy: PartitionStrategy,
        device: DeviceConfig,
        interconnect: Interconnect,
    ) -> Result<ShardedGraph, CoreError> {
        let part = partition(g, shards, strategy).map_err(part_err)?;
        let kernels = GpuKernels::build();
        let k = part.shard_count();
        let mut rts = Vec::with_capacity(k);
        for plan in &part.shards {
            let mut dev = Device::new(device.clone());
            let mut dg = DeviceGraph::upload(&mut dev, &plan.local);
            let owned = plan.owned_count() as u32;
            let ghosts = plan.ghost_count() as u32;
            let ext = plan.ext_count() as u32;
            let local_edges = plan.local.edge_count() as u32;
            // Ghost rows are empty, so the resident edge mass belongs to
            // the owned range: the local inspector's density signal is
            // m_local / owned, not m_local / ext.
            let avg_deg = if owned == 0 {
                0.0
            } else {
                local_edges as f64 / owned as f64
            };
            dg.avg_outdegree = avg_deg;
            let state = AlgoState::new(&mut dev, ext, 0)?;
            let bsrc_len = plan.boundary_sources.len() as u32;
            let bsrc = dev.alloc_from_slice("shard.boundary_sources", &plan.boundary_sources);
            let out_cap = 2 * (ghosts.max(bsrc_len).max(1)) as usize;
            let in_cap = 2 * (owned.max(ghosts).max(1)) as usize;
            let out_pairs = dev.alloc("shard.out_pairs", out_cap);
            let out_len = dev.alloc("shard.out_len", 1);
            let in_pairs = dev.alloc("shard.in_pairs", in_cap);
            // Push routing table: boundary source lid -> every (shard,
            // ghost lid) slot that gathers its push value (one entry per
            // destination shard of its cut out-edges).
            let mut push_routes: HashMap<u32, Vec<(usize, u32)>> = HashMap::new();
            let row = plan.local.row_offsets();
            let col = plan.local.col_indices();
            for &u in &plan.boundary_sources {
                let mut dests: Vec<(usize, u32)> = Vec::new();
                for &v in &col[row[u as usize] as usize..row[u as usize + 1] as usize] {
                    if v >= owned {
                        let v_gid = plan.ghosts[(v - owned) as usize];
                        let d = part.owner_of(v_gid);
                        let gl = part.shards[d]
                            .to_local(plan.to_global(u))
                            .expect("boundary source is a ghost of every shard it feeds");
                        if !dests.contains(&(d, gl)) {
                            dests.push((d, gl));
                        }
                    }
                }
                push_routes.insert(u, dests);
            }
            rts.push(ShardRt {
                dev,
                dg,
                state,
                out_pairs,
                out_len,
                in_pairs,
                bsrc,
                bsrc_len,
                push_routes,
                owned,
                ghosts,
                ext,
                local_edges,
                avg_deg,
            });
        }
        Ok(ShardedGraph {
            part,
            kernels,
            interconnect,
            shards: rts,
            weighted: g.is_weighted(),
        })
    }

    /// The partition driving this runtime.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Shard (device) count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Race-detector counters summed over every shard device (all zeros
    /// unless the [`DeviceConfig`] passed to [`ShardedGraph::with_config`]
    /// enabled detection). Harmful exemplars are concatenated in shard
    /// order so a finding still names the kernel and buffer it hit.
    pub fn race_summary(&self) -> RaceSummary {
        let mut total = RaceSummary::default();
        for rt in &self.shards {
            let s = rt.dev.race_summary();
            total.launches_checked += s.launches_checked;
            total.benign_words += s.benign_words;
            total.harmful_words += s.harmful_words;
            total.harmful.extend(s.harmful.iter().cloned());
        }
        total
    }

    /// Runs one typed query across every shard. Sharded execution
    /// supports [`Strategy::Adaptive`] (per-shard local decisions) and
    /// [`Strategy::Static`]; the single-device-only strategies are
    /// rejected with [`CoreError::Unsupported`]. The census policy in
    /// `options` is ignored: adaptive bitmap supersteps always census
    /// (each shard's decision feeds the next round's variant choice).
    /// Graph upload is a construction-time cost and is not charged to the
    /// report.
    pub fn run(&mut self, query: Query, options: &RunOptions) -> Result<ShardReport, CoreError> {
        self.validate(query, options)?;
        let n = self.part.n as u32;
        if n == 0 {
            return Ok(self.empty_report());
        }
        let algo = query.algo();
        let src = query.source();
        let pagerank = query.pagerank_config();
        let k = self.shards.len();
        if algo == Algo::PageRank {
            // The gather walks the transpose; upload each shard's
            // canonical reverse CSR once on first use (construction-class
            // cost: before the run clock starts).
            for i in 0..k {
                let rt = &mut self.shards[i];
                rt.dg
                    .upload_reverse_graph(&mut rt.dev, &self.part.shards[i].reverse);
            }
        }
        let tuning = options.tuning;
        let tt = tuning.thread_block_threads;
        let cap = if options.max_iterations == 0 {
            4 * n as u64 + 64
        } else {
            options.max_iterations
        };

        let run_start: Vec<f64> = self.shards.iter().map(|rt| rt.dev.elapsed_ns()).collect();

        // ---- setup: per-shard state reset ------------------------------
        for (i, rt) in self.shards.iter_mut().enumerate() {
            if rt.ext == 0 {
                continue;
            }
            match algo {
                Algo::Bfs | Algo::Sssp => {
                    // Like `AlgoState::reset`, but only the owning shard
                    // marks the source.
                    rt.dev.fill(rt.state.value, INF)?;
                    rt.dev.fill(rt.state.update, 0)?;
                    rt.dev.fill(rt.state.bitmap, 0)?;
                    rt.dev.write_word(rt.state.queue_len, 0, 0)?;
                    rt.dev.write_word(rt.state.flag, 0, 0)?;
                    rt.dev.write_word(rt.state.min_out, 0, u32::MAX)?;
                    if self.part.shards[i].owns(src) {
                        let lid = (src - self.part.shards[i].start) as usize;
                        rt.dev.write_word(rt.state.value, lid, 0)?;
                        rt.dev.write_word(rt.state.update, lid, 1)?;
                    }
                }
                Algo::Cc => {
                    rt.state.reset_cc(&mut rt.dev, rt.ext)?;
                    // Labels must be *global* ids (reset_cc wrote local
                    // iota), and only owned nodes start in the working
                    // set — ghosts activate via incoming pairs.
                    let plan = &self.part.shards[i];
                    let labels: Vec<u32> = (0..rt.ext).map(|l| plan.to_global(l)).collect();
                    rt.dev.write(rt.state.value, &labels)?;
                    let mut flags = vec![1u32; rt.ext as usize];
                    for f in flags.iter_mut().skip(rt.owned as usize) {
                        *f = 0;
                    }
                    rt.dev.write(rt.state.update, &flags)?;
                }
                Algo::PageRank => {
                    rt.state.reset_pagerank(&mut rt.dev, pagerank.damping)?;
                    // Only owned nodes seed the working set; ghost
                    // residual/rank slots exist but are never claimed.
                    let mut flags = vec![1u32; rt.ext as usize];
                    for f in flags.iter_mut().skip(rt.owned as usize) {
                        *f = 0;
                    }
                    rt.dev.write(rt.state.update, &flags)?;
                }
            }
        }
        let setup_ns = self
            .shards
            .iter()
            .zip(&run_start)
            .map(|(rt, &s)| rt.dev.elapsed_ns() - s)
            .fold(0.0f64, f64::max);

        // ---- superstep loop --------------------------------------------
        let mut est_ws: Vec<u32> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, rt)| match algo {
                Algo::Cc | Algo::PageRank => rt.ext,
                _ => u32::from(self.part.shards[i].owns(src)),
            })
            .collect();
        let mut prev_variant: Vec<Option<Variant>> = vec![None; k];
        let mut switches = vec![0u32; k];
        let mut pairs_sent = vec![0u64; k];
        let mut supersteps = 0u32;
        let mut compute_ns = 0.0f64;
        let mut exchange_ns = 0.0f64;
        let mut exchange_bytes = 0u64;
        let mut exchange_rounds = 0u32;
        let mut inbox: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];

        loop {
            if supersteps as u64 >= cap {
                return Err(CoreError::NoConvergence { iterations: cap });
            }
            let mark: Vec<f64> = self.shards.iter().map(|rt| rt.dev.elapsed_ns()).collect();
            let mut bytes = vec![vec![0usize; k]; k];
            for ib in inbox.iter_mut() {
                ib.clear();
            }

            let any_ran = if algo == Algo::PageRank {
                self.superstep_pagerank(
                    options,
                    pagerank,
                    tt,
                    &mut est_ws,
                    &mut prev_variant,
                    &mut switches,
                    &mut inbox,
                    &mut bytes,
                    &mut pairs_sent,
                )?
            } else {
                self.superstep_traversal(
                    algo,
                    options,
                    tt,
                    &mut est_ws,
                    &mut prev_variant,
                    &mut switches,
                    &mut inbox,
                    &mut bytes,
                    &mut pairs_sent,
                )?
            };

            let round_bytes: usize = bytes.iter().flatten().sum();
            if round_bytes > 0 {
                exchange_ns += self.interconnect.all_to_all_ns(&bytes);
                exchange_bytes += round_bytes as u64;
                exchange_rounds += 1;
            }
            compute_ns += self
                .shards
                .iter()
                .zip(&mark)
                .map(|(rt, &s)| rt.dev.elapsed_ns() - s)
                .fold(0.0f64, f64::max);
            if !any_ran {
                break;
            }
            supersteps += 1;
        }

        // ---- teardown: merge owned ranges ------------------------------
        let t_mark: Vec<f64> = self.shards.iter().map(|rt| rt.dev.elapsed_ns()).collect();
        let mut values = vec![0u32; n as usize];
        for (i, rt) in self.shards.iter_mut().enumerate() {
            if rt.owned == 0 {
                continue;
            }
            let owned = rt.dev.read_prefix(rt.state.value, rt.owned as usize)?;
            let start = self.part.shards[i].start as usize;
            values[start..start + owned.len()].copy_from_slice(&owned);
        }
        let teardown_ns = self
            .shards
            .iter()
            .zip(&t_mark)
            .map(|(rt, &s)| rt.dev.elapsed_ns() - s)
            .fold(0.0f64, f64::max);

        let per_shard: Vec<ShardSlice> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, rt)| ShardSlice {
                shard: i,
                owned: rt.owned,
                ghosts: rt.ghosts,
                local_edges: rt.local_edges,
                cut_out_edges: self.part.shards[i].cut_out_edges,
                cut_in_edges: self.part.shards[i].cut_in_edges,
                device_ns: rt.dev.elapsed_ns() - run_start[i],
                pairs_sent: pairs_sent[i],
                bytes_sent: pairs_sent[i] * 8,
                switches: switches[i],
            })
            .collect();

        Ok(ShardReport {
            shards: k,
            partition_strategy: self.part.strategy.name().to_string(),
            values,
            supersteps,
            total_ns: setup_ns + compute_ns + exchange_ns + teardown_ns,
            setup_ns,
            compute_ns,
            exchange_ns,
            teardown_ns,
            exchange_bytes,
            exchange_rounds,
            cut_edges: self.part.cut_edges,
            cut_fraction: self.part.cut_fraction(),
            per_shard,
        })
    }

    /// One BFS/SSSP/CC superstep: emit + route + apply the ghost-update
    /// exchange, then per-shard select/generate/compute. Returns whether
    /// any shard ran a compute kernel (false = global fixpoint).
    #[allow(clippy::too_many_arguments)]
    fn superstep_traversal(
        &mut self,
        algo: Algo,
        options: &RunOptions,
        tt: u32,
        est_ws: &mut [u32],
        prev_variant: &mut [Option<Variant>],
        switches: &mut [u32],
        inbox: &mut [Vec<(u32, u32)>],
        bytes: &mut [Vec<usize>],
        pairs_sent: &mut [u64],
    ) -> Result<bool, CoreError> {
        let k = self.shards.len();
        // 1-2. emit ghost updates, route to owners.
        for s in 0..k {
            let emitted = emit_pairs_ghost(&mut self.shards[s], &self.kernels, tt)?;
            pairs_sent[s] += emitted.len() as u64;
            for (ghost_lid, val) in emitted {
                let gid =
                    self.part.shards[s].ghosts[(ghost_lid - self.shards[s].owned) as usize];
                let d = self.part.owner_of(gid);
                let dest_lid = gid - self.part.shards[d].start;
                bytes[s][d] += 8;
                inbox[d].push((dest_lid, val));
            }
        }
        // 3. apply: min-merge duplicates, upload, scatter_min.
        for (d, ib) in inbox.iter_mut().enumerate() {
            if ib.is_empty() {
                continue;
            }
            ib.sort_unstable();
            ib.dedup_by_key(|p| p.0); // keep min value per node
            let rt = &mut self.shards[d];
            let bufs = vec![rt.in_pairs, rt.state.value, rt.state.update];
            deliver_pairs(rt, &self.kernels.scatter_min, tt, ib, bufs)?;
        }
        // 4. select + generate per shard.
        let mut plans: Vec<Option<(Variant, u32)>> = vec![None; k];
        for s in 0..k {
            let rt = &mut self.shards[s];
            if rt.ext == 0 {
                continue;
            }
            let variant = match options.strategy {
                Strategy::Static(v) => v,
                _ => decide(&options.tuning, est_ws[s], rt.ext, rt.avg_deg),
            };
            let census = matches!(options.strategy, Strategy::Adaptive);
            let Some((limit, ws)) = gen_workset(rt, &self.kernels, variant, tt, &options.tuning, census)?
            else {
                continue;
            };
            if let Some(w) = ws {
                est_ws[s] = w;
            }
            if prev_variant[s].is_some_and(|p| p != variant) {
                switches[s] += 1;
            }
            prev_variant[s] = Some(variant);
            plans[s] = Some((variant, limit));
        }
        if plans.iter().all(Option::is_none) {
            return Ok(false);
        }
        // 5. ordered SSSP: agree on the global minimum candidate.
        if algo == Algo::Sssp {
            let mut global_min = u32::MAX;
            let mut ordered: Vec<usize> = Vec::new();
            for (s, plan) in plans.iter().enumerate() {
                let Some((v, limit)) = plan else { continue };
                if v.order != AlgoOrder::Ordered {
                    continue;
                }
                let rt = &mut self.shards[s];
                let fk = match v.workset {
                    WorkSet::Bitmap => &self.kernels.findmin_bitmap,
                    WorkSet::Queue => &self.kernels.findmin_queue,
                };
                rt.dev.launch(
                    fk,
                    Grid::linear(*limit as u64, tt),
                    &rt.state.findmin_args(v.workset, *limit),
                )?;
                global_min = global_min.min(rt.dev.read_word(rt.state.min_out, 0)?);
                ordered.push(s);
            }
            for s in ordered {
                let rt = &mut self.shards[s];
                rt.dev.write_word(rt.state.min_out, 0, global_min)?;
            }
        }
        // 6. compute.
        for (s, plan) in plans.iter().enumerate() {
            let Some((v, limit)) = plan else { continue };
            let rt = &mut self.shards[s];
            let grid = compute_grid(rt, &options.tuning, *v, *limit, tt);
            let (kernel, args) = match algo {
                Algo::Bfs => (
                    self.kernels.bfs_kernel(*v),
                    rt.state.bfs_args(&rt.dg, *v, *limit),
                ),
                Algo::Sssp => (
                    self.kernels.sssp_kernel(*v),
                    rt.state.sssp_args(&rt.dg, *v, *limit),
                ),
                Algo::Cc => (
                    self.kernels.cc_kernel(*v),
                    rt.state.cc_args(&rt.dg, *v, *limit),
                ),
                Algo::PageRank => unreachable!("PageRank has its own superstep"),
            };
            rt.dev.launch(kernel, grid, &args)?;
        }
        Ok(true)
    }

    /// One PageRank superstep: per-shard select/generate, claim, collect
    /// + route + scatter the cross-shard push values, gather, clear.
    ///
    /// Returns whether any shard claimed (false = global fixpoint).
    #[allow(clippy::too_many_arguments)]
    fn superstep_pagerank(
        &mut self,
        options: &RunOptions,
        pagerank: PageRankConfig,
        tt: u32,
        est_ws: &mut [u32],
        prev_variant: &mut [Option<Variant>],
        switches: &mut [u32],
        inbox: &mut [Vec<(u32, u32)>],
        bytes: &mut [Vec<usize>],
        pairs_sent: &mut [u64],
    ) -> Result<bool, CoreError> {
        let k = self.shards.len();
        // 1. select + generate per shard.
        let mut plans: Vec<Option<(Variant, u32)>> = vec![None; k];
        for s in 0..k {
            let rt = &mut self.shards[s];
            if rt.ext == 0 {
                continue;
            }
            let variant = match options.strategy {
                Strategy::Static(v) => v,
                _ => decide(&options.tuning, est_ws[s], rt.ext, rt.avg_deg),
            };
            let census = matches!(options.strategy, Strategy::Adaptive);
            let Some((limit, ws)) = gen_workset(rt, &self.kernels, variant, tt, &options.tuning, census)?
            else {
                continue;
            };
            if let Some(w) = ws {
                est_ws[s] = w;
            }
            if prev_variant[s].is_some_and(|p| p != variant) {
                switches[s] += 1;
            }
            prev_variant[s] = Some(variant);
            plans[s] = Some((variant, limit));
        }
        if plans.iter().all(Option::is_none) {
            return Ok(false);
        }
        // 2. claim: fold residuals into ranks, publish push values.
        for (s, plan) in plans.iter().enumerate() {
            let Some((v, limit)) = plan else { continue };
            let rt = &mut self.shards[s];
            let grid = compute_grid(rt, &options.tuning, *v, *limit, tt);
            rt.dev.launch(
                self.kernels.pagerank_kernel(*v),
                grid,
                &rt.state
                    .pagerank_claim_args(&rt.dg, *v, *limit, pagerank.damping),
            )?;
        }
        // 3. collect boundary push values, route to consuming shards.
        for (s, plan) in plans.iter().enumerate() {
            if plan.is_none() || self.shards[s].bsrc_len == 0 {
                continue;
            }
            let emitted = emit_pairs_list(&mut self.shards[s], &self.kernels, tt)?;
            for (lid, push_bits) in emitted {
                let routes = self.shards[s].push_routes.get(&lid).cloned().unwrap_or_default();
                for (d, gl) in routes {
                    bytes[s][d] += 8;
                    pairs_sent[s] += 1;
                    inbox[d].push((gl, push_bits));
                }
            }
        }
        // 4. apply: each ghost slot has exactly one owner, plain stores.
        let mut received = vec![false; k];
        for (d, ib) in inbox.iter_mut().enumerate() {
            if ib.is_empty() {
                continue;
            }
            ib.sort_unstable();
            let rt = &mut self.shards[d];
            let bufs = vec![rt.in_pairs, rt.state.aux2];
            deliver_pairs(rt, &self.kernels.scatter_store, tt, ib, bufs)?;
            received[d] = true;
        }
        // 5. gather + clear on every shard that has fresh push values.
        for s in 0..k {
            if plans[s].is_none() && !received[s] {
                continue;
            }
            let rt = &mut self.shards[s];
            rt.dev.launch(
                &self.kernels.pagerank_gather,
                Grid::linear(rt.ext as u64, tt),
                &rt.state
                    .pagerank_gather_args(&rt.dg, rt.ext, pagerank.epsilon),
            )?;
            rt.dev.fill(rt.state.aux2, 0)?;
        }
        Ok(true)
    }

    fn validate(&self, query: Query, options: &RunOptions) -> Result<(), CoreError> {
        match options.strategy {
            Strategy::Adaptive | Strategy::Static(_) => {}
            Strategy::VirtualWarp { .. } => {
                return Err(CoreError::Unsupported {
                    detail: "sharded execution supports Adaptive and Static strategies \
                             (virtual-warp kernels are single-device)"
                        .into(),
                })
            }
            Strategy::DirectionOptimized { .. } => {
                return Err(CoreError::Unsupported {
                    detail: "sharded execution supports Adaptive and Static strategies \
                             (direction-optimized BFS is single-device)"
                        .into(),
                })
            }
            Strategy::Hybrid { .. } => {
                return Err(CoreError::Unsupported {
                    detail: "sharded execution supports Adaptive and Static strategies \
                             (hybrid CPU/GPU alternation is single-device)"
                        .into(),
                })
            }
        }
        let algo = query.algo();
        if algo == Algo::Sssp && !self.weighted {
            return Err(CoreError::InvalidQuery {
                detail: "SSSP requires a weighted graph (use generate_weighted / with_weights)"
                    .into(),
            });
        }
        let n = self.part.n as u32;
        if matches!(query, Query::Bfs { .. } | Query::Sssp { .. }) && n > 0 {
            let src = query.source();
            if src >= n {
                return Err(CoreError::InvalidQuery {
                    detail: format!("source {src} out of range (graph has {n} nodes)"),
                });
            }
        }
        if let Query::PageRank { config } = query {
            if !(config.damping > 0.0 && config.damping < 1.0) {
                return Err(CoreError::InvalidQuery {
                    detail: format!("PageRank damping {} must be in (0, 1)", config.damping),
                });
            }
            if config.epsilon.is_nan() || config.epsilon <= 0.0 {
                return Err(CoreError::InvalidQuery {
                    detail: format!("PageRank epsilon {} must be positive", config.epsilon),
                });
            }
        }
        if let Strategy::Static(v) = options.strategy {
            if matches!(algo, Algo::Cc | Algo::PageRank) && v.order == AlgoOrder::Ordered {
                return Err(CoreError::Unsupported {
                    detail: format!("{algo:?} has no ordered formulation"),
                });
            }
        }
        Ok(())
    }

    fn empty_report(&self) -> ShardReport {
        ShardReport {
            shards: self.shards.len(),
            partition_strategy: self.part.strategy.name().to_string(),
            values: Vec::new(),
            supersteps: 0,
            total_ns: 0.0,
            setup_ns: 0.0,
            compute_ns: 0.0,
            exchange_ns: 0.0,
            teardown_ns: 0.0,
            exchange_bytes: 0,
            exchange_rounds: 0,
            cut_edges: 0,
            cut_fraction: 0.0,
            per_shard: Vec::new(),
        }
    }
}

/// The compute grid of a variant, mirroring the engine: thread mapping
/// gets `limit` lanes, block mapping one block per working-set element
/// with the degree-tuned block width.
fn compute_grid(rt: &ShardRt, tuning: &AdaptiveConfig, v: Variant, limit: u32, tt: u32) -> Grid {
    match v.mapping {
        Mapping::Thread => Grid::linear(limit as u64, tt),
        Mapping::Block => Grid::new(
            limit,
            tuning.block_mapping_threads(rt.avg_deg, rt.dev.config().max_threads_per_block),
        ),
    }
}

/// `prep` + `workset_gen` + emptiness check (+ census when adaptive
/// bitmap) for one shard — the sharded mirror of `Ctx::gen_and_check`.
/// Returns `None` when the shard's working set is empty, else `(limit,
/// exact size when known)`.
fn gen_workset(
    rt: &mut ShardRt,
    kernels: &GpuKernels,
    v: Variant,
    tt: u32,
    tuning: &AdaptiveConfig,
    census: bool,
) -> Result<Option<(u32, Option<u32>)>, CoreError> {
    let n = rt.ext;
    rt.dev
        .launch(&kernels.prep, Grid::new(1, 32), &rt.state.prep_args())?;
    match v.workset {
        WorkSet::Bitmap => {
            rt.dev.launch(
                &kernels.gen_bitmap,
                Grid::linear(n as u64, tt),
                &rt.state.gen_bitmap_args(n),
            )?;
            if rt.dev.read_word(rt.state.flag, 0)? == 0 {
                return Ok(None);
            }
            let ws = if census {
                rt.dev.launch(
                    &kernels.count_bitmap,
                    Grid::linear(n as u64, tt),
                    &rt.state.count_args(n),
                )?;
                Some(rt.dev.read_word(rt.state.count, 0)?)
            } else {
                None
            };
            Ok(Some((n, ws)))
        }
        WorkSet::Queue => {
            let gen = if tuning.scan_queue_gen {
                &kernels.gen_queue_scan
            } else {
                &kernels.gen_queue
            };
            rt.dev.launch(
                gen,
                Grid::linear(n as u64, tt),
                &rt.state.gen_queue_args(n),
            )?;
            let len = rt.dev.read_word(rt.state.queue_len, 0)?;
            if len == 0 {
                return Ok(None);
            }
            Ok(Some((len, Some(len))))
        }
    }
}

/// Emit phase of the BFS/SSSP/CC exchange: `gen_ghost` over the ghost
/// range, then the 4-byte count read and the pair read-back (both PCIe,
/// charged to this shard's clock). Ghost update flags are cleared by the
/// kernel; owned flags stay for the local workset generation.
fn emit_pairs_ghost(
    rt: &mut ShardRt,
    kernels: &GpuKernels,
    tt: u32,
) -> Result<Vec<(u32, u32)>, CoreError> {
    if rt.ghosts == 0 {
        return Ok(Vec::new());
    }
    rt.dev.fill(rt.out_len, 0)?;
    rt.dev.launch(
        &kernels.gen_ghost,
        Grid::linear(rt.ghosts as u64, tt),
        &LaunchArgs::new()
            .bufs([rt.state.update, rt.state.value, rt.out_pairs, rt.out_len])
            .scalars([rt.owned, rt.ghosts]),
    )?;
    read_pairs(rt)
}

/// Emit phase of the PageRank exchange: `collect_list` over the
/// boundary-source list picks up nonzero push values.
fn emit_pairs_list(
    rt: &mut ShardRt,
    kernels: &GpuKernels,
    tt: u32,
) -> Result<Vec<(u32, u32)>, CoreError> {
    rt.dev.fill(rt.out_len, 0)?;
    rt.dev.launch(
        &kernels.collect_list,
        Grid::linear(rt.bsrc_len as u64, tt),
        &LaunchArgs::new()
            .bufs([rt.bsrc, rt.state.aux2, rt.out_pairs, rt.out_len])
            .scalars([rt.bsrc_len]),
    )?;
    read_pairs(rt)
}

fn read_pairs(rt: &mut ShardRt) -> Result<Vec<(u32, u32)>, CoreError> {
    let count = rt.dev.read_word(rt.out_len, 0)?;
    if count == 0 {
        return Ok(Vec::new());
    }
    let flat = rt.dev.read_prefix(rt.out_pairs, 2 * count as usize)?;
    Ok(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
}

/// Apply phase: upload an inbox (PCIe) and run the given scatter kernel
/// over it with the caller-selected buffer binding.
fn deliver_pairs(
    rt: &mut ShardRt,
    kernel: &Kernel,
    tt: u32,
    pairs: &[(u32, u32)],
    bufs: Vec<DevicePtr>,
) -> Result<(), CoreError> {
    let mut flat = Vec::with_capacity(pairs.len() * 2);
    for &(lid, val) in pairs {
        flat.push(lid);
        flat.push(val);
    }
    rt.dev.write_prefix(rt.in_pairs, &flat)?;
    let count = pairs.len() as u32;
    rt.dev.launch(
        kernel,
        Grid::linear(count as u64, tt),
        &LaunchArgs::new().bufs(bufs).scalars([count]),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::GpuGraph;
    use agg_graph::{Dataset, GraphBuilder, Scale};
    use agg_kernels::Variant;

    fn single_device(g: &CsrGraph, query: Query, options: &RunOptions) -> Vec<u32> {
        GpuGraph::new(g)
            .unwrap()
            .run(query, options)
            .unwrap()
            .values
    }

    fn queries(weighted: bool) -> Vec<Query> {
        let mut q = vec![Query::Bfs { src: 1 }, Query::Cc, Query::pagerank()];
        if weighted {
            q.push(Query::Sssp { src: 1 });
        }
        q
    }

    #[test]
    fn sharded_matches_single_device_for_every_algorithm_and_shard_count() {
        let g = Dataset::Amazon.generate_weighted(Scale::Tiny, 42, 64);
        let opts = RunOptions::default();
        for query in queries(true) {
            let expected = single_device(&g, query, &opts);
            for k in 1..=8usize {
                let mut sharded = ShardedGraph::new(&g, k).unwrap();
                let r = sharded.run(query, &opts).unwrap();
                assert_eq!(
                    r.values, expected,
                    "{} diverged from single-device at {k} shards",
                    query.name()
                );
                assert_eq!(r.accounting_gap(), 0.0);
            }
        }
    }

    #[test]
    fn degree_balanced_partitioning_is_also_bit_identical() {
        let g = Dataset::Google.generate_weighted(Scale::Tiny, 9, 32);
        let opts = RunOptions::default();
        for query in queries(true) {
            let expected = single_device(&g, query, &opts);
            for k in [2usize, 5] {
                let mut sharded = ShardedGraph::with_config(
                    &g,
                    k,
                    PartitionStrategy::DegreeBalanced,
                    DeviceConfig::tesla_c2070(),
                    Interconnect::pcie(),
                )
                .unwrap();
                let r = sharded.run(query, &opts).unwrap();
                assert_eq!(
                    r.values, expected,
                    "{} diverged under degree-balanced partitioning at {k} shards",
                    query.name()
                );
            }
        }
    }

    #[test]
    fn static_variants_match_too_including_ordered_sssp() {
        let g = Dataset::P2p.generate_weighted(Scale::Tiny, 5, 64);
        for v in [
            Variant::parse("O_T_BM").unwrap(),
            Variant::parse("U_B_QU").unwrap(),
        ] {
            let opts = RunOptions::static_variant(v);
            let expected = single_device(&g, Query::Sssp { src: 0 }, &opts);
            let mut sharded = ShardedGraph::new(&g, 3).unwrap();
            let r = sharded.run(Query::Sssp { src: 0 }, &opts).unwrap();
            assert_eq!(
                r.values,
                expected,
                "static {} diverged across shards",
                v.name()
            );
        }
    }

    #[test]
    fn repeated_runs_on_one_sharded_graph_are_reproducible() {
        let g = Dataset::P2p.generate(Scale::Tiny, 11);
        let mut sharded = ShardedGraph::new(&g, 4).unwrap();
        let opts = RunOptions::default();
        let a = sharded.run(Query::Bfs { src: 3 }, &opts).unwrap();
        let pr = sharded.run(Query::pagerank(), &opts).unwrap();
        let b = sharded.run(Query::Bfs { src: 3 }, &opts).unwrap();
        assert_eq!(a.values, b.values, "state reset between queries leaked");
        assert_eq!(pr.values.len(), g.node_count());
    }

    #[test]
    fn time_accounting_identity_and_ledger_consistency() {
        let g = Dataset::Amazon.generate(Scale::Tiny, 3);
        let mut sharded = ShardedGraph::new(&g, 4).unwrap();
        let r = sharded.run(Query::Bfs { src: 0 }, &RunOptions::default()).unwrap();
        assert_eq!(r.accounting_gap(), 0.0);
        assert!(r.setup_ns > 0.0 && r.compute_ns > 0.0 && r.teardown_ns > 0.0);
        // A multi-shard BFS on a connected-ish graph must cross
        // boundaries: the ledger and the per-shard slices agree.
        assert!(r.exchange_bytes > 0, "no boundary traffic on 4 shards");
        assert!(r.exchange_ns > 0.0);
        assert!(r.exchange_rounds > 0 && r.exchange_rounds <= r.supersteps + 1);
        let sent: u64 = r.per_shard.iter().map(|s| s.bytes_sent).sum();
        assert_eq!(sent, r.exchange_bytes);
        assert_eq!(r.cut_edges, sharded.partition().cut_edges);
        for s in &r.per_shard {
            assert!(s.device_ns > 0.0);
        }
    }

    #[test]
    fn faster_interconnect_shrinks_only_exchange_time() {
        let g = Dataset::Google.generate(Scale::Tiny, 21);
        let opts = RunOptions::default();
        let run_with = |icx: Interconnect| {
            let mut sharded = ShardedGraph::with_config(
                &g,
                4,
                PartitionStrategy::Contiguous1D,
                DeviceConfig::tesla_c2070(),
                icx,
            )
            .unwrap();
            sharded.run(Query::Bfs { src: 0 }, &opts).unwrap()
        };
        let pcie = run_with(Interconnect::pcie());
        let nvlink = run_with(Interconnect::nvlink());
        assert_eq!(pcie.values, nvlink.values);
        assert_eq!(pcie.exchange_bytes, nvlink.exchange_bytes);
        assert!(nvlink.exchange_ns < pcie.exchange_ns);
        assert_eq!(pcie.compute_ns, nvlink.compute_ns);
    }

    #[test]
    fn single_device_strategies_are_rejected() {
        let g = Dataset::P2p.generate(Scale::Tiny, 2);
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        for strategy in [
            Strategy::VirtualWarp {
                width: 8,
                workset: WorkSet::Queue,
            },
            Strategy::DirectionOptimized {
                bottom_up_fraction: 0.1,
            },
            Strategy::Hybrid { gpu_threshold: 64 },
        ] {
            let opts = RunOptions::builder().strategy(strategy).build();
            assert!(
                matches!(
                    sharded.run(Query::Bfs { src: 0 }, &opts),
                    Err(CoreError::Unsupported { .. })
                ),
                "{strategy:?} should be rejected"
            );
        }
    }

    #[test]
    fn malformed_queries_are_rejected_before_any_superstep() {
        let g = Dataset::P2p.generate(Scale::Tiny, 2); // unweighted
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        let opts = RunOptions::default();
        assert!(matches!(
            sharded.run(Query::Sssp { src: 0 }, &opts),
            Err(CoreError::InvalidQuery { .. })
        ));
        let n = g.node_count() as u32;
        assert!(matches!(
            sharded.run(Query::Bfs { src: n }, &opts),
            Err(CoreError::InvalidQuery { .. })
        ));
        assert!(matches!(
            sharded.run(
                Query::PageRank {
                    config: PageRankConfig {
                        damping: 1.5,
                        epsilon: 1e-4
                    }
                },
                &opts
            ),
            Err(CoreError::InvalidQuery { .. })
        ));
        assert!(matches!(
            sharded.run(
                Query::Cc,
                &RunOptions::static_variant(Variant::parse("O_T_BM").unwrap())
            ),
            Err(CoreError::Unsupported { .. })
        ));
    }

    #[test]
    fn report_json_carries_the_exchange_ledger() {
        let g = Dataset::P2p.generate(Scale::Tiny, 4);
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        let r = sharded.run(Query::Cc, &RunOptions::default()).unwrap();
        let json = r.to_json().render();
        for key in [
            "\"shards\"",
            "\"partition_strategy\"",
            "\"supersteps\"",
            "\"exchange_ns\"",
            "\"exchange_bytes\"",
            "\"cut_fraction\"",
            "\"per_shard\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn more_shards_than_nodes_still_works() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let expected = single_device(&g, Query::Bfs { src: 0 }, &RunOptions::default());
        let mut sharded = ShardedGraph::new(&g, 8).unwrap();
        let r = sharded
            .run(Query::Bfs { src: 0 }, &RunOptions::default())
            .unwrap();
        assert_eq!(r.values, expected);
    }

    #[test]
    fn empty_graph_yields_empty_report() {
        let g = GraphBuilder::from_edges(0, &[]).unwrap();
        let mut sharded = ShardedGraph::new(&g, 2).unwrap();
        let r = sharded
            .run(Query::Bfs { src: 0 }, &RunOptions::default())
            .unwrap();
        assert!(r.values.is_empty());
        assert_eq!(r.total_ns, 0.0);
    }
}
