//! Adaptive-runtime configuration: the T1/T2/T3 thresholds of the paper's
//! Figure 11 and the inspector's sampling rate (Section VI.E).

use agg_gpu_sim::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Which average outdegree the decision maker consumes (Section VI.E:
/// the paper uses the whole-graph value to keep inspector overhead low;
/// the working-set value is the precise-but-expensive alternative this
/// implementation can ablate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegreeMode {
    /// One value computed at upload time; zero per-iteration cost.
    WholeGraph,
    /// Degree census over the current working set, at the sampling
    /// cadence (an extra kernel + 4-byte read per sample).
    WorkingSet,
}

/// Thresholds and tuning knobs of the decision maker and graph inspector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// T1: average outdegree below which thread mapping beats block
    /// mapping for large working sets. The paper fixes it at the warp
    /// size: a block cannot usefully be smaller than one warp.
    pub t1_avg_outdegree: f64,
    /// T2: working-set size below which block mapping is always chosen
    /// (too few elements to occupy the SMs with 192-thread blocks). The
    /// paper derives `192 × num_SMs = 2688` for the C2070.
    pub t2_ws_size: u32,
    /// T3: working-set size above which a bitmap beats a queue, expressed
    /// as a fraction of the node count (the x-axis of Figure 13).
    pub t3_fraction: f64,
    /// Inspector sampling period: the ws-size census kernel runs every
    /// this many iterations while in bitmap mode (1 = every iteration).
    pub sampling_period: u32,
    /// Threads per block for thread-mapping kernels (the paper found 192
    /// best via the occupancy calculator).
    pub thread_block_threads: u32,
    /// Use the scan-based queue generation (Merrill-style ablation)
    /// instead of atomic index allocation.
    pub scan_queue_gen: bool,
    /// Degree statistic fed to the decision maker.
    pub degree_mode: DegreeMode,
}

impl AdaptiveConfig {
    /// Paper-tuned thresholds for a given device: T1 = warp size,
    /// T2 = `thread_block_threads × num_sms`, T3 = 6% of nodes (the middle
    /// of the stable region our Figure 13 sweep finds; see EXPERIMENTS.md).
    pub fn for_device(cfg: &DeviceConfig) -> AdaptiveConfig {
        AdaptiveConfig {
            t1_avg_outdegree: cfg.warp_size as f64,
            t2_ws_size: 192 * cfg.num_sms,
            t3_fraction: 0.06,
            sampling_period: 4,
            thread_block_threads: 192,
            scan_queue_gen: false,
            degree_mode: DegreeMode::WholeGraph,
        }
    }

    /// T3 in absolute nodes for a graph of `n` nodes.
    pub fn t3_ws_size(&self, n: u32) -> u32 {
        ((n as f64 * self.t3_fraction).round() as u64).min(u32::MAX as u64) as u32
    }

    /// Threads per block for block-mapping kernels: the multiple of 32
    /// closest to the graph's average outdegree, clamped to one warp
    /// minimum (the paper's Section VII.A rule).
    pub fn block_mapping_threads(&self, avg_outdegree: f64, max_threads: u32) -> u32 {
        let rounded = ((avg_outdegree / 32.0).round() as u32).max(1) * 32;
        rounded.clamp(32, max_threads)
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::for_device(&DeviceConfig::tesla_c2070())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_for_c2070() {
        let c = AdaptiveConfig::for_device(&DeviceConfig::tesla_c2070());
        assert_eq!(c.t1_avg_outdegree, 32.0);
        assert_eq!(c.t2_ws_size, 2688); // 192 * 14, the paper's number
        assert_eq!(c.thread_block_threads, 192);
    }

    #[test]
    fn t3_scales_with_node_count() {
        let c = AdaptiveConfig::default();
        assert_eq!(c.t3_ws_size(100_000), 6_000);
        assert_eq!(c.t3_ws_size(0), 0);
    }

    #[test]
    fn block_mapping_threads_rounds_to_warp_multiples() {
        let c = AdaptiveConfig::default();
        assert_eq!(c.block_mapping_threads(2.5, 1024), 32); // road-like
        assert_eq!(c.block_mapping_threads(8.5, 1024), 32); // amazon-like
        assert_eq!(c.block_mapping_threads(73.9, 1024), 64); // citeseer-like
        assert_eq!(c.block_mapping_threads(100.0, 1024), 96);
        assert_eq!(c.block_mapping_threads(5000.0, 1024), 1024); // clamped
    }
}
